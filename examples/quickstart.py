#!/usr/bin/env python3
"""Quickstart: a hybrid-memory computer with process persistence.

Mirrors the paper's Listing 1: allocate one page in NVM and one in
DRAM via the extended mmap, store to both, then crash the machine and
show that the NVM data (and the process itself) survive while DRAM
contents are lost.
"""

from repro import MAP_NVM, PROT_READ, PROT_WRITE, HybridSystem
from repro.common.units import PAGE_SIZE


def main() -> None:
    system = HybridSystem(scheme="persistent", checkpoint_interval_ms=10.0)
    system.boot()

    # -- Table I: the simulated platform -------------------------------
    cfg = system.machine.config
    print("gem5-style memory configuration (Table I):")
    print(f"  DRAM interface   : {cfg.dram.name}")
    print(f"  NVM interface    : {cfg.nvm.name}")
    print(f"  NVM write buffer : {cfg.nvm_buffers.write_buffer_entries}")
    print(f"  NVM read buffer  : {cfg.nvm_buffers.read_buffer_entries}")
    print(
        f"  Memory capacity  : {cfg.layout.dram_bytes >> 30}GB DRAM + "
        f"{cfg.layout.nvm_bytes >> 30}GB NVM"
    )
    for entry in system.machine.layout.e820_map():
        print(f"  e820: base={entry.base:#x} len={entry.length:#x} {entry.kind.name}")

    # -- Listing 1 ------------------------------------------------------
    proc = system.spawn("listing1")
    kernel = system.kernel
    ptr1 = kernel.sys_mmap(proc, None, PAGE_SIZE, PROT_WRITE | PROT_READ, MAP_NVM)
    ptr2 = kernel.sys_mmap(proc, None, PAGE_SIZE, PROT_WRITE | PROT_READ, 0)
    system.machine.store(ptr1, b"A")  # store to NVM
    system.machine.store(ptr2, b"B")  # store to DRAM
    print(f"\nmmap(MAP_NVM) -> {ptr1:#x} (NVM), mmap(0) -> {ptr2:#x} (DRAM)")

    system.checkpoint()
    print(f"checkpoint taken at {system.elapsed_ms:.3f} simulated ms")

    system.crash()
    print("power failure!")

    (recovered,) = system.boot()
    system.kernel.switch_to(recovered)
    nvm_byte = system.machine.load(ptr1, 1)
    dram_byte = system.machine.load(ptr2, 1)
    print(f"after recovery: NVM byte = {nvm_byte!r} (survived)")
    print(f"after recovery: DRAM byte = {dram_byte!r} (lost, refaulted to zero)")
    assert nvm_byte == b"A" and dram_byte == b"\x00"
    print("quickstart OK")


if __name__ == "__main__":
    main()
