#!/usr/bin/env python3
"""Hot/cold page tiering (the third prototype; after Ramos et al.).

An OS daemon promotes hot NVM pages into DRAM and demotes pages that
stay cold, using LLC-miss counts collected in the TLB — exclusive
placement, unlike HSCC's DRAM-as-cache.  Shows the page movements and
the end-to-end benefit for a zipf-skewed workload.
"""

from repro.common.config import CacheConfig, MachineConfig, small_machine_config
from repro.common.units import KiB, PAGE_SIZE
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.mem.hybrid import MemType
from repro.platform import HybridSystem
from repro.tiering.daemon import TieringDaemon

RW = PROT_READ | PROT_WRITE

# Small caches so the access stream actually misses (see DESIGN.md on
# footprint/LLC ratio scaling).
CONFIG = MachineConfig(
    l1=CacheConfig("L1", 8 * KiB, 8, 4),
    l2=CacheConfig("L2", 32 * KiB, 8, 14),
    llc=CacheConfig("LLC", 128 * KiB, 16, 40),
    layout=small_machine_config().layout,
)

HOT_PAGES = 16
COLD_PAGES = 1024
ROUNDS = 300


def run(with_tiering: bool):
    system = HybridSystem(config=CONFIG, persistence=False)
    system.boot()
    proc = system.spawn("app")
    k = system.kernel
    hot = k.sys_mmap(proc, None, HOT_PAGES * PAGE_SIZE, RW, MAP_NVM, name="hot")
    cold = k.sys_mmap(proc, None, COLD_PAGES * PAGE_SIZE, RW, MAP_NVM, name="cold")
    daemon = (
        TieringDaemon(k, proc, epoch_ms=0.25, hot_threshold=8)
        if with_tiering
        else None
    )
    cursor = 0
    start = system.machine.clock
    for round_index in range(ROUNDS):
        for page in range(HOT_PAGES):
            system.machine.access(
                hot + page * PAGE_SIZE + (round_index % 64) * 64, 8, False
            )
        for _ in range(64):
            system.machine.access(
                cold + (cursor * 64 * 17) % (COLD_PAGES * PAGE_SIZE), 8, False
            )
            cursor += 1
    elapsed = system.machine.clock - start
    in_dram = sum(
        1
        for _vpn, pte in proc.page_table.iter_leaves()
        if system.machine.layout.mem_type_of_pfn(pte.pfn) is MemType.DRAM
    )
    stats = {
        "elapsed": elapsed,
        "dram_pages": in_dram,
        "promotions": daemon.promotions if daemon else 0,
        "demotions": daemon.demotions if daemon else 0,
    }
    if daemon:
        daemon.disarm()
    system.shutdown()
    return stats


def main() -> None:
    base = run(with_tiering=False)
    tiered = run(with_tiering=True)
    print(f"all-NVM placement : {base['elapsed'] / 3e6:.3f} ms")
    print(
        f"with tiering      : {tiered['elapsed'] / 3e6:.3f} ms "
        f"({base['elapsed'] / tiered['elapsed']:.2f}x speedup)"
    )
    print(
        f"promotions={tiered['promotions']} demotions={tiered['demotions']} "
        f"pages now in DRAM={tiered['dram_pages']}"
    )
    assert tiered["elapsed"] < base["elapsed"]
    print("tiering example OK")


if __name__ == "__main__":
    main()
