#!/usr/bin/env python3
"""Multiprogramming: two replayed workloads sharing the machine.

Demonstrates the full-system effects Kindle surfaces that user-level
simulators miss (Section III-C): quantum-based context switching,
per-category OS time attribution, and cache interference between
processes — each workload runs slower together than alone.
"""

from repro.gemos.scheduler import RoundRobinScheduler, run_multiprogrammed
from repro.platform import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.workloads import generate_pagerank, generate_ycsb


def run_alone(image) -> int:
    system = HybridSystem(persistence=False)
    system.boot()
    proc = system.spawn(image.name)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
    program.install(system.kernel, proc)
    start = system.machine.clock
    program.run(system.kernel, proc)
    return system.machine.clock - start


def main() -> None:
    images = [
        generate_ycsb(total_ops=20_000, records=32768),
        generate_pagerank(total_ops=20_000, nodes=16384),
    ]
    solo = {img.name: run_alone(img) for img in images}

    system = HybridSystem(persistence=False)
    system.boot()
    kernel = system.kernel
    scheduler = RoundRobinScheduler(kernel, quantum_ms=0.1)
    programs = {}
    for image in images:
        proc = kernel.create_process(image.name)
        kernel.switch_to(proc)
        program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
        program.install(kernel, proc)
        programs[proc] = program
        scheduler.add(proc)
    scheduler.start()
    start = system.machine.clock
    executed = run_multiprogrammed(kernel, scheduler, programs, batch_ops=128)
    shared = system.machine.clock - start
    scheduler.stop()

    print(f"executed {executed} ops across {len(images)} processes")
    print(f"context switches: {scheduler.switches}")
    print(
        f"switch overhead: "
        f"{system.stats['cycles.os.context_switch'] / 3e3:.1f} us OS time"
    )
    solo_sum = sum(solo.values())
    print(f"solo sum : {solo_sum / 3e6:.3f} ms simulated")
    print(f"shared   : {shared / 3e6:.3f} ms simulated")
    print(f"interference slowdown: {shared / solo_sum:.3f}x")
    assert shared > solo_sum  # switches + cache interference cost time
    print("multiprogramming example OK")


if __name__ == "__main__":
    main()
