#!/usr/bin/env python3
"""HSCC: DRAM-as-cache page migration and its OS-side cost.

Runs YCSB under HSCC migration at the paper's fetch thresholds and
prints the Fig. 6 / Table V / Table VI quantities: pages migrated, the
normalized execution time with OS activity charged vs hardware-only
migration, and the page-selection vs page-copy split.

Uses the cache-scaled HSCC study platform (see
``repro.harness.experiments.hscc_study_config``) so the scaled trace's
footprint-to-LLC ratio matches the paper's GB-scale workloads.
"""

from repro.harness.experiments import hscc_study_config
from repro.hscc.manager import HsccManager
from repro.platform import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.workloads import generate_ycsb

PASSES = 24


def run(image, threshold, charge_os):
    system = HybridSystem(config=hscc_study_config(), persistence=False)
    system.boot()
    proc = system.spawn(image.name)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
    program.install(system.kernel, proc)
    manager = HsccManager(
        system.kernel,
        proc,
        fetch_threshold=threshold,
        migration_interval_ms=4.0,  # time-compressed (see DESIGN.md)
        pool_pages=512,
        charge_os=charge_os,
    )
    start = system.machine.clock
    for _ in range(PASSES):
        proc.registers["pc"] = 0
        program.run(system.kernel, proc)
    cycles = system.machine.clock - start
    selection, copy = manager.migration_cycle_split()
    stats = {
        "cycles": cycles,
        "migrated": manager.pages_migrated,
        "selection": selection,
        "copy": copy,
        "dirty_copybacks": manager.dirty_copybacks,
    }
    manager.disarm()
    system.shutdown()
    return stats


def main() -> None:
    image = generate_ycsb(total_ops=40_000)
    print(f"{'Th':>4} {'migrated':>9} {'norm time':>10} {'sel %':>7} {'copy %':>7}")
    for threshold in (5, 25, 50):
        charged = run(image, threshold, charge_os=True)
        hw_only = run(image, threshold, charge_os=False)
        os_total = charged["selection"] + charged["copy"]
        sel_pct = 100 * charged["selection"] / os_total if os_total else 0.0
        print(
            f"{threshold:>4} {charged['migrated']:>9} "
            f"{charged['cycles'] / hw_only['cycles']:>10.3f} "
            f"{sel_pct:>7.2f} {100 - sel_pct if os_total else 0:>7.2f}"
            f"   (dirty copy-backs: {charged['dirty_copybacks']})"
        )
    print("hscc example OK")


if __name__ == "__main__":
    main()
