#!/usr/bin/env python3
"""Shadow sub-paging: memory consistency cost vs consistency interval.

Wraps a YCSB replay in a failure-atomic section (checkpoint_start /
checkpoint_end) and sweeps the consistency interval, reproducing the
Fig. 5 insight: a wider interval means fewer metadata inspections and
fewer clwb writebacks, so the consistency overhead shrinks.
"""

from repro import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.ssp.manager import SspManager
from repro.workloads import generate_ycsb


def run(image, interval_ms=None) -> int:
    system = HybridSystem(persistence=False)
    system.boot()
    proc = system.spawn(image.name)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
    program.install(system.kernel, proc)
    ssp = None
    if interval_ms is not None:
        ssp = SspManager(system.kernel, proc, consistency_interval_ms=interval_ms)
        lo = min(v.start for v in proc.address_space)
        hi = max(v.end for v in proc.address_space)
        ssp.checkpoint_start(lo, hi)
    start = system.machine.clock
    for _ in range(4):
        proc.registers["pc"] = 0
        program.run(system.kernel, proc)
    if ssp is not None:
        ssp.checkpoint_end()
    cycles = system.machine.clock - start
    stats = system.stats.snapshot()
    system.shutdown()
    return cycles, stats


def main() -> None:
    image = generate_ycsb(total_ops=40_000, records=16384)
    baseline, _ = run(image)
    print(f"no consistency: {baseline} cycles")
    for interval in (1.0, 5.0, 10.0):
        cycles, stats = run(image, interval)
        print(
            f"SSP @ {interval:>4} ms: normalized time "
            f"{cycles / baseline:.3f}  "
            f"(intervals={stats.get('ssp.intervals', 0)}, "
            f"clwb={stats.get('clwb.issued', 0)}, "
            f"shadow pages={stats.get('ssp.shadow_pages', 0)}, "
            f"consolidations={stats.get('ssp.consolidations', 0)})"
        )
    print("ssp example OK")


if __name__ == "__main__":
    main()
