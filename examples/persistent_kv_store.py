#!/usr/bin/env python3
"""A crash-proof key-value store on the persistent heap.

Application-level NVM persistence (the paper's "persistent object
store" usage, after HeapO [15]): a linked list of records lives inside
a ``PersistentHeap`` whose metadata and data are real bytes in
simulated NVM.  The store survives repeated power failures — after
each reboot it reattaches via the heap's persistent root pointer and
walks the records straight out of NVM.
"""

import struct

from repro import HybridSystem
from repro.pheap import PersistentHeap

KEY_BYTES = 16
VALUE_BYTES = 32
#: record := [next_off u64][key 16B][value 32B]
RECORD_BYTES = 8 + KEY_BYTES + VALUE_BYTES


class PersistentKv:
    """Singly-linked persistent records; head hangs off the heap root."""

    def __init__(self, heap: PersistentHeap) -> None:
        self.heap = heap

    def put(self, key: str, value: str) -> None:
        record = self.heap.alloc(RECORD_BYTES)
        head = self.heap.get_root() or 0
        payload = (
            struct.pack("<Q", head)
            + key.encode().ljust(KEY_BYTES, b"\x00")
            + value.encode().ljust(VALUE_BYTES, b"\x00")
        )
        self.heap.write(record, payload)  # persisted before linking
        self.heap.set_root(record)  # atomic publish

    def get(self, key: str) -> str:
        wanted = key.encode().ljust(KEY_BYTES, b"\x00")
        addr = self.heap.get_root()
        while addr:
            raw = self.heap.read(addr, RECORD_BYTES)
            if raw[8 : 8 + KEY_BYTES] == wanted:
                return raw[8 + KEY_BYTES :].rstrip(b"\x00").decode()
            addr = struct.unpack("<Q", raw[:8])[0]
        raise KeyError(key)

    def keys(self):
        addr = self.heap.get_root()
        while addr:
            raw = self.heap.read(addr, RECORD_BYTES)
            yield raw[8 : 8 + KEY_BYTES].rstrip(b"\x00").decode()
            addr = struct.unpack("<Q", raw[:8])[0]


def main() -> None:
    system = HybridSystem(scheme="persistent", checkpoint_interval_ms=1.0)
    system.boot()
    proc = system.spawn("kvstore")
    heap = PersistentHeap.create(system.kernel, proc, size=256 * 1024)
    base = heap.base
    kv = PersistentKv(heap)

    entries = {}
    for generation in range(3):
        key, value = f"key{generation}", f"value-{generation}"
        kv.put(key, value)
        entries[key] = value
        print(f"put {key}={value}; crash + reboot ...")
        system.checkpoint()
        system.crash()
        (proc,) = system.boot()
        system.kernel.switch_to(proc)
        heap = PersistentHeap.attach(system.kernel, proc, base)
        kv = PersistentKv(heap)
        for k, v in entries.items():
            assert kv.get(k) == v, (k, v)
        print(f"  recovered {sorted(kv.keys())} intact")

    print("persistent kv example OK")


if __name__ == "__main__":
    main()
