#!/usr/bin/env python3
"""Memory-system energy: the hybrid-memory motivation, quantified.

Runs the YCSB workload with its data placed (a) all in DRAM, (b) all
in NVM, and prices each run with the energy model: DRAM burns
refresh/standby power all the time, NVM costs more per access —
the classic capacity-energy trade the paper's introduction cites.
"""

from repro.mem.energy import EnergyModel
from repro.platform import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.workloads import generate_ycsb


def run(placement: PlacementPolicy):
    system = HybridSystem(persistence=False)
    system.boot()
    proc = system.spawn("ycsb")
    image = generate_ycsb(total_ops=50_000, records=32768)
    program = ReplayProgram(image, placement)
    program.install(system.kernel, proc)
    for _ in range(3):
        proc.registers["pc"] = 0
        program.run(system.kernel, proc)
    layout = system.machine.config.layout
    report = EnergyModel().report(
        system.stats, system.machine.clock, layout.dram_bytes, layout.nvm_bytes
    )
    elapsed_ms = system.elapsed_ms
    system.shutdown()
    return elapsed_ms, report


def main() -> None:
    for placement in (PlacementPolicy.ALL_DRAM, PlacementPolicy.ALL_NVM):
        elapsed_ms, report = run(placement)
        print(f"\n=== placement: {placement.value} ===")
        print(f"execution time : {elapsed_ms:.2f} simulated ms")
        print(report.render())
        print(
            f"dynamic {report.dynamic_mj:.4f} mJ / "
            f"background {report.background_mj:.4f} mJ"
        )
    print("\nNote: at this (scaled) capacity and runtime, DRAM background")
    print("power is the constant drain NVM avoids; NVM pays per access.")
    print("energy example OK")


if __name__ == "__main__":
    main()
