#!/usr/bin/env python3
"""The full Kindle preparation pipeline, end to end (Fig. 3).

1. run an application under the tracing runtime (the Pin substitute),
2. snapshot its address-space layout (the /proc/pid/maps substitute),
3. generate the disk image of (period, offset, op, size, area) tuples,
4. emit the template gemOS C source the code generator would produce,
5. replay the image on the simulated gemOS/gem5 stack.
"""

import tempfile
from pathlib import Path

from repro import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram, render_c_template
from repro.prep.imagegen import generate_image, load_image, save_image
from repro.prep.trace import save_trace
from repro.prep.tracer import TracedProcess


def trace_application() -> TracedProcess:
    """A small "application": builds a table, then scans it."""
    tp = TracedProcess("demo")
    table = tp.alloc_heap("table", 64 * 1024)
    stack = tp.stacks.register_thread(0)
    stack.push_frame(slots=4)
    for i in range(0, 8192, 8):
        table.store(i)  # build
        stack.local_store(0)
    for i in range(0, 8192, 8):
        table.load(i)  # scan
    stack.pop_frame()
    return tp


def main() -> None:
    # 1-2: trace + layout
    tp = trace_application()
    print(f"traced {tp.total_ops} ops; layout:")
    print(tp.layout.render())

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "demo.trace"
        image_path = Path(tmp) / "demo.img"
        save_trace(tp.trace, trace_path)
        print(f"\ntrace saved: {trace_path.name} ({trace_path.stat().st_size} bytes)")

        # 3: disk image
        image = generate_image("demo", tp.trace, tp.layout)
        save_image(image, image_path)
        image = load_image(image_path)
        reads, writes = image.mix()
        print(f"image: {image.total_ops} tuples, mix {reads}/{writes}")

        # 4: template gemOS code
        print("\ngenerated template gemOS code:")
        print(render_c_template(image, PlacementPolicy.ALL_NVM))

        # 5: replay on the simulated stack
        system = HybridSystem(persistence=False)
        system.boot()
        proc = system.spawn(image.name)
        program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
        program.install(system.kernel, proc)
        program.run(system.kernel, proc)
        assert program.is_finished(proc)
        print(
            f"replayed {image.total_ops} ops in "
            f"{system.elapsed_ms:.3f} simulated ms "
            f"(NVM reads={system.stats['nvm.reads']}, "
            f"NVM writes={system.stats['nvm.writes']})"
        )
    print("pipeline OK")


if __name__ == "__main__":
    main()
