#!/usr/bin/env python3
"""Full process persistence: crash a running workload, resume it.

Runs the YCSB workload as a trace replay under periodic checkpointing,
kills the power mid-run, reboots, and shows that the recovered process
resumes from its last consistent checkpoint (the replay position lives
in the checkpointed ``pc`` register) and runs to completion.

Compares both page-table schemes: *rebuild* reconstructs the page
table from the v2p mapping list, *persistent* just reattaches the
NVM-resident table root (one PTBR write).
"""

from repro import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.workloads import generate_ycsb


def run_with_crash(scheme: str) -> None:
    print(f"\n=== scheme: {scheme} ===")
    image = generate_ycsb(total_ops=30_000, records=4096)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)

    # A short interval so several checkpoints land inside this small
    # replay (the paper's 10 ms default assumes multi-second runs).
    system = HybridSystem(scheme=scheme, checkpoint_interval_ms=0.25)
    system.boot()
    proc = system.spawn(image.name)
    program.install(system.kernel, proc)

    # Run two thirds of the trace, then pull the plug.
    program.run(system.kernel, proc, max_ops=20_000)
    pc_before = proc.registers["pc"]
    print(f"crash at pc={pc_before} ({system.elapsed_ms:.2f} sim ms)")
    system.crash()

    (recovered,) = system.boot()
    pc_after = recovered.registers["pc"]
    print(
        f"recovered pid={recovered.pid} pc={pc_after} "
        f"(rolled back {pc_before - pc_after} ops to the last checkpoint)"
    )
    assert 0 < pc_after <= pc_before

    executed = program.run(system.kernel, recovered)
    assert program.is_finished(recovered)
    print(f"resumed and finished: {executed} ops replayed after recovery")
    ckpts = system.stats["checkpoint.taken"]
    print(f"total checkpoints this boot: {ckpts}")
    rebuilt = system.stats["recovery.rebuilt_mappings"]
    ptbr = system.stats["recovery.ptbr_sets"]
    print(f"recovery: rebuilt_mappings={rebuilt} ptbr_sets={ptbr}")


def main() -> None:
    for scheme in ("rebuild", "persistent"):
        run_with_crash(scheme)
    print("\nprocess persistence OK")


if __name__ == "__main__":
    main()
