"""The crash explorer: every crash point of a scenario, exhaustively.

A :class:`CrashScenario` is a deterministic workload over a fresh
:class:`~repro.platform.HybridSystem`.  The explorer runs it once in
counting mode to number its crash points, then re-runs it from scratch
once per point with the injector armed to kill there, crashes the
system, reboots it from the surviving NVM image, and checks the
recovery invariants (:mod:`repro.faults.invariants`).  Determinism of
the whole stack (bump/LIFO allocators, seeded RNG, timer wheel) is what
makes the per-point re-runs valid: point *k* is the same event in every
run.

Golden snapshots are captured by a commit listener on the persistence
manager at the exact instant each checkpoint commits, so the set of
admissible recovery targets is precise even when the kill lands between
the commit flip and the next line of scenario code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import small_machine_config
from repro.common.errors import KindleError
from repro.exec import SweepEngine, Task
from repro.faults.injector import CrashInjector, CrashPoint, CrashPointReached
from repro.faults.invariants import (
    Golden,
    PointResult,
    Violation,
    check_nvm_image,
    check_recovery,
)
from repro.gemos.process import Process
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.platform import HybridSystem


class CrashScenario:
    """One deterministic workload for the explorer to crash repeatedly."""

    name = "abstract"
    scheme = "rebuild"
    #: Kept long so the periodic timer stays out of the way and the
    #: scenario controls checkpoint placement explicitly.
    checkpoint_interval_ms = 1000.0

    def run(self, ctx: "ScenarioContext") -> None:
        """The workload; raises CrashPointReached when the kill fires."""
        raise NotImplementedError

    def at_kill(
        self, ctx: "ScenarioContext", injector: CrashInjector, violations: List[Violation]
    ) -> None:
        """Scenario-specific checks at the crash instant (pre-reboot)."""

    def after_crash(self, ctx: "ScenarioContext") -> None:
        """Cleanup of volatile scenario state before the reboot."""


class ScenarioContext:
    """One fresh system plus the golden/durable-data bookkeeping."""

    def __init__(self, scenario: CrashScenario) -> None:
        self.scenario = scenario
        self.system = HybridSystem(
            config=small_machine_config(),
            scheme=scenario.scheme,
            checkpoint_interval_ms=scenario.checkpoint_interval_ms,
        )
        self.system.boot()
        assert self.system.manager is not None
        self.system.manager.on_commit.append(self._capture_golden)
        #: pid -> goldens in commit order.
        self.goldens: Dict[int, List[Golden]] = {}
        #: pid -> vaddr -> bytes made durable with an explicit flush+fence.
        self.durable_data: Dict[int, Dict[int, bytes]] = {}
        #: Scenario-private storage (e.g. the SSP manager).
        self.scratch: Dict[str, object] = {}

    def _capture_golden(self, process: Process, saved) -> None:
        self.goldens.setdefault(saved.pid, []).append(Golden.capture(saved))

    # ------------------------------------------------------------------
    # workload helpers
    # ------------------------------------------------------------------

    def mmap_nvm(
        self,
        process: Process,
        length: int,
        addr: Optional[int] = None,
        writable: bool = True,
        name: str = "anon",
    ) -> int:
        assert self.system.kernel is not None
        prot = PROT_READ | (PROT_WRITE if writable else 0)
        return self.system.kernel.sys_mmap(
            process, addr, length, prot, MAP_NVM, name
        )

    def write_durable(self, process: Process, vaddr: int, data: bytes) -> None:
        """Store + clwb + fence; recorded only once actually durable."""
        machine = self.system.machine
        machine.store(vaddr, data)
        machine.clwb_virtual(vaddr, len(data))
        machine.persist_barrier()
        self.durable_data.setdefault(process.pid, {})[vaddr] = bytes(data)


@dataclass
class ExplorationReport:
    """Aggregate outcome of exploring one scenario."""

    scenario: str
    scheme: str
    total_points: int
    explored: int = 0
    recoveries: int = 0
    results: List[PointResult] = field(default_factory=list)
    label_points: Dict[str, int] = field(default_factory=dict)

    @property
    def violations(self) -> List[Violation]:
        return [v for r in self.results for v in r.violations]

    def summary(self) -> str:
        status = "OK" if not self.violations else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{self.scenario:<24} scheme={self.scheme:<10} "
            f"points={self.total_points:<4} explored={self.explored:<4} "
            f"recovered={self.recoveries:<4} {status}"
        )


class CrashExplorer:
    """Enumerate, kill, recover, check — for one scenario."""

    def __init__(
        self,
        scenario: CrashScenario,
        fault_models: Iterable = (),
        record_journal: bool = False,
    ) -> None:
        self.scenario = scenario
        self.fault_models = list(fault_models)
        self.record_journal = record_journal
        #: Journal of the most recent counting pass (ordering tests).
        self.last_journal: List[CrashPoint] = []

    # ------------------------------------------------------------------
    # passes
    # ------------------------------------------------------------------

    def count_points(self) -> Tuple[int, Dict[str, int]]:
        """Run the scenario to completion, numbering every crash point."""
        ctx = ScenarioContext(self.scenario)
        injector = CrashInjector(record_journal=True)
        injector.attach(ctx.system.machine, ctx.system.nvm_store)
        injector.arm_counting()
        self.scenario.run(ctx)
        injector.detach()
        self.last_journal = list(injector.journal)
        return injector.points_seen, injector.label_points()

    def run_point(self, index: int) -> Tuple[ScenarioContext, PointResult]:
        """Kill at crash point ``index`` and run the full recovery check."""
        return self._run_killed(lambda inj: inj.arm_kill(index))

    def run_label(
        self, label: str, occurrence: int = 0
    ) -> Tuple[ScenarioContext, PointResult]:
        """Kill at the ``occurrence``-th emission of a protocol label."""
        return self._run_killed(
            lambda inj: inj.arm_kill_label(label, occurrence)
        )

    def explore(
        self,
        points: Optional[Iterable[int]] = None,
        engine: Optional[SweepEngine] = None,
    ) -> ExplorationReport:
        """Kill at every (or the given) crash points; check each recovery.

        With an ``engine``, the kill-and-recover cycles of a *standard*
        scenario fan out across worker processes in contiguous index
        batches; results are reassembled in index order, so the report
        is identical to a serial exploration.  Custom scenario objects
        and fault-model runs are not name-addressable across processes
        and fall back to the serial loop.
        """
        total, labels = self.count_points()
        indices = [
            index
            for index in (sorted(points) if points is not None else range(total))
            if index < total
        ]
        report = ExplorationReport(
            scenario=self.scenario.name,
            scheme=self.scenario.scheme,
            total_points=total,
            label_points=labels,
        )
        if engine is not None and self._parallel_safe():
            results = self._explore_engine(engine, indices)
        else:
            results = [self.run_point(index)[1] for index in indices]
        for result in results:
            report.explored += 1
            if result.recovered_pids:
                report.recoveries += 1
            report.results.append(result)
        return report

    def _parallel_safe(self) -> bool:
        """Workers rebuild scenarios by name — only standard ones, and
        only without live fault-model objects to ship across."""
        if self.fault_models or self.record_journal:
            return False
        from repro.faults.scenarios import scenario_by_name

        try:
            rebuilt = scenario_by_name(self.scenario.name)
        except KeyError:
            return False
        return type(rebuilt) is type(self.scenario) and (
            rebuilt.scheme == self.scenario.scheme
        )

    def _explore_engine(
        self, engine: SweepEngine, indices: List[int]
    ) -> List[PointResult]:
        name = self.scenario.name
        batches = _index_batches(indices, engine.jobs)
        tasks = [
            Task(
                "repro.faults.explorer:explore_scenario_points",
                {"scenario": name, "indices": batch},
                label=f"{name}[{batch[0]}..{batch[-1]}]",
            )
            for batch in batches
        ]
        outputs = engine.map(tasks)
        return [
            _result_from_payload(payload)
            for output in outputs
            for payload in output["results"]
        ]

    # ------------------------------------------------------------------
    # one kill-and-recover cycle
    # ------------------------------------------------------------------

    def _run_killed(self, arm) -> Tuple[ScenarioContext, PointResult]:
        ctx = ScenarioContext(self.scenario)
        injector = CrashInjector(
            fault_models=self.fault_models, record_journal=self.record_journal
        )
        injector.attach(ctx.system.machine, ctx.system.nvm_store)
        arm(injector)
        try:
            self.scenario.run(ctx)
        except CrashPointReached as exc:
            point = exc.point
        else:
            injector.detach()
            missed = PointResult(
                point=CrashPoint(-1, "missed", None, 0),
                violations=[
                    Violation(
                        self.scenario.name,
                        "armed kill never fired — the scenario's crash "
                        "points are not deterministic",
                    )
                ],
            )
            return ctx, missed
        violations: List[Violation] = []
        self.scenario.at_kill(ctx, injector, violations)
        # Power fails: volatile state dies, fault models scramble the
        # pending lines, the kernel object is discarded.
        ctx.system.crash()
        # Recovery itself writes NVM (allocator reconciliation, pruning);
        # those must not emit crash points, so detach first.
        injector.detach()
        self.scenario.after_crash(ctx)
        check_nvm_image(ctx, violations)
        recovered: List[Process] = []
        try:
            recovered = ctx.system.boot()
        except KindleError as exc:
            violations.append(
                Violation(
                    self.scenario.name, f"recovery failed: {exc}", point=point
                )
            )
        else:
            check_recovery(ctx, recovered, violations)
        for violation in violations:
            if violation.point is None:
                violation.point = point
        result = PointResult(
            point=point,
            recovered_pids=tuple(sorted(p.pid for p in recovered)),
            violations=violations,
        )
        return ctx, result


# ----------------------------------------------------------------------
# parallel exploration plumbing
# ----------------------------------------------------------------------


def _index_batches(indices: Sequence[int], jobs: int) -> List[List[int]]:
    """Contiguous batches, a few per worker so stragglers rebalance."""
    indices = list(indices)
    if not indices:
        return []
    target = max(1, jobs) * 3
    size = max(1, -(-len(indices) // target))
    return [indices[i : i + size] for i in range(0, len(indices), size)]


def _point_payload(point: CrashPoint) -> Dict:
    return {
        "index": point.index,
        "kind": point.kind,
        "detail": point.detail,
        "epoch": point.epoch,
    }


def _point_from_payload(payload: Optional[Dict]) -> Optional[CrashPoint]:
    if payload is None:
        return None
    return CrashPoint(
        index=payload["index"],
        kind=payload["kind"],
        detail=payload["detail"],
        epoch=payload["epoch"],
    )


def _result_payload(result: PointResult) -> Dict:
    return {
        "point": _point_payload(result.point),
        "recovered_pids": list(result.recovered_pids),
        "violations": [
            {
                "scenario": violation.scenario,
                "message": violation.message,
                "point": (
                    _point_payload(violation.point)
                    if violation.point is not None
                    else None
                ),
                "pid": violation.pid,
            }
            for violation in result.violations
        ],
    }


def _result_from_payload(payload: Dict) -> PointResult:
    point = _point_from_payload(payload["point"])
    assert point is not None
    return PointResult(
        point=point,
        recovered_pids=tuple(payload["recovered_pids"]),
        violations=[
            Violation(
                scenario=violation["scenario"],
                message=violation["message"],
                point=_point_from_payload(violation["point"]),
                pid=violation["pid"],
            )
            for violation in payload["violations"]
        ],
    )


def explore_scenario_points(scenario: str, indices: Iterable[int]) -> Dict:
    """Sweep-engine cell: kill-and-recover at each index of a standard
    scenario, returning JSON-serializable point results.

    Determinism of the whole stack makes this partition-safe: point *k*
    is the same event whether this process explored the preceding
    points or not, so any batch of indices reproduces exactly the
    results a serial exploration assigns to those indices.
    """
    from repro.faults.scenarios import scenario_by_name

    explorer = CrashExplorer(scenario_by_name(scenario))
    return {
        "results": [
            _result_payload(explorer.run_point(index)[1]) for index in indices
        ]
    }
