"""Crash-point fault injection for the persistence stack.

The persistence machinery's core claim — a crash at *any* instant is
recoverable — is only testable by actually crashing at every instant.
This package threads a numbered *crash point* through every durable NVM
write event (line writebacks, clwb flushes, streamed bursts, fences,
explicit protocol labels, object-store registrations) and provides:

:class:`CrashInjector`
    counts the points of a run, or kills the simulation at point *k* by
    raising :class:`CrashPointReached`; tracks which lines are pending
    (written, unfenced) vs durable (fenced) and applies byte-level NVM
    fault models (:mod:`repro.mem.nvmstore`) at power-fail time.

:class:`CrashExplorer`
    enumerates all crash points of a :class:`CrashScenario`, re-runs it
    killed at each one, reboots from the surviving NVM image, and checks
    the recovery invariants (:mod:`repro.faults.invariants`).

:mod:`repro.faults.scenarios`
    the nine standard scenarios of the crashtest harness.
"""

from repro.faults.explorer import (
    CrashExplorer,
    CrashScenario,
    ExplorationReport,
    ScenarioContext,
    Violation,
)
from repro.faults.injector import CrashInjector, CrashPoint, CrashPointReached
from repro.faults.scenarios import (
    RandomOpsScenario,
    scenario_by_name,
    standard_scenarios,
)

__all__ = [
    "CrashExplorer",
    "CrashInjector",
    "CrashPoint",
    "CrashPointReached",
    "CrashScenario",
    "ExplorationReport",
    "RandomOpsScenario",
    "ScenarioContext",
    "Violation",
    "scenario_by_name",
    "standard_scenarios",
]
