"""Recovery invariants checked after every injected crash.

A *golden* is the per-process state captured at the exact instant a
checkpoint commits (the persistence manager's ``on_commit`` listener
fires right after ``commit_working``).  After a crash at any point and
a reboot, every recovered process must be byte-for-byte one of its
goldens — never a hybrid of two — and its page table must walk
consistently over frames the allocator actually owns.

Checks are grouped in two passes:

:func:`check_nvm_image`
    runs on the surviving NVM object store *before* recovery: the
    consistent context copy (and, under the rebuild scheme, the v2p
    mapping list packaged with it) must match a captured golden.  This
    is what catches in-place mutation of committed state.

:func:`check_recovery`
    runs on the rebooted kernel: golden equality, walk consistency,
    allocator ownership, cross-process frame isolation, and durable
    byte contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.units import PAGE_SIZE
from repro.mem.hybrid import MemType
from repro.mem.nvmstore import CorruptObject
from repro.persist.savedstate import SavedState

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.explorer import ScenarioContext
    from repro.faults.injector import CrashPoint


def _rows(vmas) -> Tuple[Tuple, ...]:
    """Normalize a VMA snapshot for equality comparison."""
    return tuple(tuple(row) for row in vmas)


@dataclass(frozen=True)
class Golden:
    """One committed checkpoint of one process."""

    pid: int
    checkpoint: int
    registers: Tuple[Tuple[str, int], ...]
    vmas: Tuple[Tuple, ...]
    v2p: Tuple[Tuple[int, int], ...]

    @classmethod
    def capture(cls, saved: SavedState) -> "Golden":
        consistent = saved.consistent
        assert consistent is not None
        return cls(
            pid=saved.pid,
            checkpoint=saved.checkpoints_taken,
            registers=tuple(sorted(consistent.registers.items())),
            vmas=_rows(consistent.vmas),
            v2p=tuple(sorted(saved.v2p.items())),
        )

    def matches_context(self, registers: Dict[str, int], vmas) -> bool:
        return (
            tuple(sorted(registers.items())) == self.registers
            and _rows(vmas) == self.vmas
        )

    def pages(self) -> set:
        covered = set()
        for row in self.vmas:
            covered.update(range(row[0] // PAGE_SIZE, row[1] // PAGE_SIZE))
        return covered


@dataclass
class Violation:
    """One recovery-invariant failure at one crash point."""

    scenario: str
    message: str
    point: Optional["CrashPoint"] = None
    pid: Optional[int] = None

    def __str__(self) -> str:
        where = f" at {self.point}" if self.point is not None else ""
        who = f" pid {self.pid}" if self.pid is not None else ""
        return f"[{self.scenario}{where}]{who}: {self.message}"


@dataclass
class PointResult:
    """Outcome of one kill-and-recover cycle."""

    point: "CrashPoint"
    recovered_pids: Tuple[int, ...] = ()
    violations: List[Violation] = field(default_factory=list)


# ----------------------------------------------------------------------
# pass 1: the surviving NVM image, before recovery runs
# ----------------------------------------------------------------------


def check_nvm_image(ctx: "ScenarioContext", violations: List[Violation]) -> None:
    """Committed NVM state must equal a golden at every crash instant."""
    scenario = ctx.scenario.name
    scheme = ctx.system.scheme_name
    for key, obj in ctx.system.nvm_store.keys_with_prefix("saved_state:"):
        if isinstance(obj, CorruptObject):
            continue  # fault-model runs assert on this separately
        if not isinstance(obj, SavedState):
            violations.append(
                Violation(scenario, f"object at {key} is not a SavedState")
            )
            continue
        goldens = ctx.goldens.get(obj.pid, [])
        consistent = obj.consistent
        if consistent is None or not consistent.valid:
            if goldens:
                violations.append(
                    Violation(
                        scenario,
                        "goldens were captured but NVM holds no consistent copy",
                        pid=obj.pid,
                    )
                )
            continue
        if not goldens:
            violations.append(
                Violation(
                    scenario,
                    "NVM holds a consistent copy but no golden was captured",
                    pid=obj.pid,
                )
            )
            continue
        matches = [
            g
            for g in goldens
            if g.matches_context(consistent.registers, consistent.vmas)
        ]
        if not matches:
            violations.append(
                Violation(
                    scenario,
                    "consistent context copy matches no golden (partially "
                    "committed checkpoint?)",
                    pid=obj.pid,
                )
            )
            continue
        if scheme == "rebuild":
            v2p = tuple(sorted(obj.v2p.items()))
            if not any(g.v2p == v2p for g in matches):
                violations.append(
                    Violation(
                        scenario,
                        "v2p list disagrees with the consistent context it is "
                        "packaged with (in-place refresh of committed state?)",
                        pid=obj.pid,
                    )
                )


# ----------------------------------------------------------------------
# pass 2: the rebooted, recovered kernel
# ----------------------------------------------------------------------


def check_recovery(
    ctx: "ScenarioContext", recovered, violations: List[Violation]
) -> None:
    """Every recovered process equals exactly one golden and walks clean."""
    scenario = ctx.scenario.name
    system = ctx.system
    kernel = system.kernel
    machine = system.machine
    assert kernel is not None
    by_pid = {p.pid: p for p in recovered}
    for pid in sorted(set(ctx.goldens) - set(by_pid)):
        violations.append(
            Violation(scenario, "checkpointed process was not recovered", pid=pid)
        )
    nvm_lo, nvm_hi = machine.layout.pfn_range(MemType.NVM)
    allocated = kernel.nvm_alloc._state.allocated  # noqa: SLF001
    frame_owner: Dict[int, int] = {}
    for process in by_pid.values():
        goldens = ctx.goldens.get(process.pid, [])
        if not goldens:
            violations.append(
                Violation(
                    scenario,
                    "process recovered despite never having checkpointed",
                    pid=process.pid,
                )
            )
            continue
        snapshot = process.address_space.snapshot()
        matches = [
            g for g in goldens if g.matches_context(process.registers, snapshot)
        ]
        if not matches:
            violations.append(
                Violation(
                    scenario,
                    "recovered context equals no golden — a hybrid of "
                    f"checkpoints? registers={sorted(process.registers.items())}",
                    pid=process.pid,
                )
            )
            continue
        assert process.page_table is not None
        leaves = dict(process.page_table.iter_leaves())
        problems = None
        for golden in matches:
            problems = _mapping_problems(system.scheme_name, golden, leaves)
            if not problems:
                break
        if problems:
            for message in problems:
                violations.append(
                    Violation(scenario, message, pid=process.pid)
                )
            continue
        # Frames: NVM-resident, owned by the allocator, never shared.
        for vpn, pte in leaves.items():
            if machine.layout.mem_type_of_pfn(pte.pfn) is not MemType.NVM:
                violations.append(
                    Violation(
                        scenario,
                        f"recovered leaf vpn {vpn:#x} points at non-NVM "
                        f"frame {pte.pfn:#x}",
                        pid=process.pid,
                    )
                )
                continue
            if not (nvm_lo <= pte.pfn < nvm_hi) or pte.pfn not in allocated:
                violations.append(
                    Violation(
                        scenario,
                        f"leaf vpn {vpn:#x} -> frame {pte.pfn:#x} not owned "
                        "by the NVM allocator after reconciliation",
                        pid=process.pid,
                    )
                )
            owner = frame_owner.setdefault(pte.pfn, process.pid)
            if owner != process.pid:
                violations.append(
                    Violation(
                        scenario,
                        f"frame {pte.pfn:#x} mapped by both pid {owner} "
                        f"and pid {process.pid}",
                        pid=process.pid,
                    )
                )
        _check_durable_bytes(ctx, process, leaves, violations)


def _mapping_problems(scheme: str, golden: Golden, leaves) -> List[str]:
    """Scheme-specific consistency of recovered translations vs a golden."""
    problems: List[str] = []
    pages = golden.pages()
    if scheme == "rebuild":
        expected = dict(golden.v2p)
        if set(leaves) != set(expected):
            missing = sorted(set(expected) - set(leaves))
            extra = sorted(set(leaves) - set(expected))
            problems.append(
                "rebuilt page table diverges from the golden v2p list "
                f"(missing vpns {missing}, extra vpns {extra})"
            )
        else:
            for vpn, pte in leaves.items():
                if pte.pfn != expected[vpn]:
                    problems.append(
                        f"vpn {vpn:#x} rebuilt to frame {pte.pfn:#x}, "
                        f"golden v2p says {expected[vpn]:#x}"
                    )
    for vpn in leaves:
        if vpn not in pages:
            problems.append(
                f"leaf vpn {vpn:#x} lies outside the recovered VMA layout"
            )
    return problems


def _check_durable_bytes(
    ctx: "ScenarioContext", process, leaves, violations: List[Violation]
) -> None:
    """Explicitly-persisted bytes must read back through recovered maps."""
    data = ctx.durable_data.get(process.pid)
    if not data:
        return
    kernel = ctx.system.kernel
    machine = ctx.system.machine
    assert kernel is not None
    kernel.switch_to(process)
    for vaddr, blob in sorted(data.items()):
        span = range(vaddr // PAGE_SIZE, (vaddr + len(blob) - 1) // PAGE_SIZE + 1)
        # Only mapped addresses are checkable: an unmapped page would
        # demand-fault to a fresh zero frame, which is legitimate.
        if not all(vpn in leaves for vpn in span):
            continue
        got = machine.load(vaddr, len(blob))
        if got != blob:
            violations.append(
                Violation(
                    ctx.scenario.name,
                    f"durable bytes at {vaddr:#x} read back {got!r}, "
                    f"expected {blob!r}",
                    pid=process.pid,
                )
            )
