"""The crash injector: numbered kill points on the NVM write path.

Every durable-write event in the simulation calls a hook *before* its
effect takes place (see :attr:`repro.arch.machine.Machine.persist_hook`
and :attr:`repro.mem.nvmstore.NvmObjectStore.hook`).  The injector
numbers those calls; killing at point *k* raises
:class:`CrashPointReached` out of the hook, so everything that happened
before point *k* survived and the guarded write never did — exactly the
state NVM would hold if power dropped at that instant.

Event kinds (the ``kind`` argument of the hook):

``"wb"``      spontaneous dirty-line eviction to NVM (detail: line number)
``"clwb"``    protocol-ordered line flush (detail: line number)
``"bulk"``    streamed NVM write burst (detail: line count)
``"fence"``   persist barrier — promotes pending lines to durable
``"label"``   explicit protocol boundary (detail: label string)
``"store.put"`` / ``"store.remove"``  NVM object (de)registration
``"power_fail"``  not a crash point; the instant fault models run

Epochs count fences: lines written since the last fence are *pending*
(in the volatile NVM write buffer), lines a fence has drained are
*durable*.  That split is what the torn-write fault model and the SSP
commit-atomicity invariant consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.common.errors import KindleError
from repro.mem.nvmstore import NvmFaultModel, NvmObjectStore

#: Machine-hook kinds that carry a line number to track.
_LINE_KINDS = ("wb", "clwb")


@dataclass(frozen=True)
class CrashPoint:
    """One numbered durable-write event."""

    index: int
    kind: str
    detail: object
    epoch: int

    def __str__(self) -> str:
        return f"#{self.index} {self.kind}({self.detail}) epoch {self.epoch}"


class CrashPointReached(KindleError):
    """Raised out of a persist hook to model power failing right there.

    Subclasses :class:`KindleError` deliberately: nothing in the
    simulator catches broad exceptions, so the unwind reaches the
    explorer with every mutation before the point intact and the
    guarded write not performed.
    """

    def __init__(self, point: CrashPoint) -> None:
        super().__init__(f"crash injected at point {point}")
        self.point = point


class CrashInjector:
    """Counts, journals, or kills at persist-boundary crash points.

    Lifecycle: :meth:`attach` installs the hooks; the injector then does
    *nothing* until armed (``active`` is False and every hook call
    returns immediately — attached-but-disarmed runs must stay
    byte-identical to unhooked runs).  :meth:`arm_counting` numbers the
    points of a run; :meth:`arm_kill` / :meth:`arm_kill_label` raise
    :class:`CrashPointReached` at a chosen point.  At power-fail the
    injector applies its byte-level fault models to the pending
    (unfenced) lines and forgets the volatile write-buffer state.
    """

    def __init__(
        self,
        fault_models: Iterable[NvmFaultModel] = (),
        record_journal: bool = False,
    ) -> None:
        self.fault_models: List[NvmFaultModel] = list(fault_models)
        self.record_journal = record_journal
        self.journal: List[CrashPoint] = []
        self.points_seen = 0
        self.epoch = 0
        self.pending_lines: Set[int] = set()
        self.durable_lines: Set[int] = set()
        self.active = False
        self.kill_at: Optional[int] = None
        self.kill_label: Optional[Tuple[str, int]] = None
        self.killed: Optional[CrashPoint] = None
        #: Pending/durable line sets frozen at the kill instant (the
        #: power-fail handler clears the live sets afterwards).
        self.pending_at_kill: frozenset = frozenset()
        self.durable_at_kill: frozenset = frozenset()
        self._label_seen: dict = {}
        self._machine = None
        self._store: Optional[NvmObjectStore] = None
        self._points_at_attach = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, machine, store: Optional[NvmObjectStore] = None) -> None:
        """Install the persist hooks on a machine (and object store)."""
        if self._machine is not None:
            raise KindleError("injector is already attached")
        if machine.persist_hook is not None or (
            store is not None and store.hook is not None
        ):
            raise KindleError("another persist hook is already installed")
        self._machine = machine
        self._store = store
        machine.persist_hook = self._on_event
        if store is not None:
            store.hook = self._on_event
        self._points_at_attach = self.points_seen

    def detach(self) -> None:
        """Remove the hooks; the target emits no further crash points."""
        if self._machine is None:
            return
        if self.active:
            self._machine.stats.add(
                "faults.points_enumerated", self.points_seen - self._points_at_attach
            )
        self._machine.persist_hook = None
        if self._store is not None:
            self._store.hook = None
        self._machine = None
        self._store = None

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm_counting(self) -> None:
        """Number every crash point without killing."""
        self.active = True
        self.kill_at = None
        self.kill_label = None

    def arm_kill(self, index: int) -> None:
        """Kill the run at crash point ``index``."""
        if index < 0:
            raise ValueError("crash point index must be >= 0")
        self.active = True
        self.kill_at = index
        self.kill_label = None

    def arm_kill_label(self, label: str, occurrence: int = 0) -> None:
        """Kill at the ``occurrence``-th emission of a named label."""
        self.active = True
        self.kill_at = None
        self.kill_label = (label, occurrence)

    def disarm(self) -> None:
        """Stop reacting to events (hooks stay installed but inert)."""
        self.active = False

    # ------------------------------------------------------------------
    # the hook
    # ------------------------------------------------------------------

    def _on_event(self, kind: str, detail: object) -> None:
        if not self.active:
            return
        if kind == "power_fail":
            self._power_fail()
            return
        index = self.points_seen
        self.points_seen += 1
        point = None
        if self.record_journal:
            point = CrashPoint(index, kind, detail, self.epoch)
            self.journal.append(point)
        if self.kill_at is not None and index == self.kill_at:
            self._kill(point or CrashPoint(index, kind, detail, self.epoch))
        if kind == "label":
            seen = self._label_seen.get(detail, 0)
            self._label_seen[detail] = seen + 1
            if (
                self.kill_label is not None
                and detail == self.kill_label[0]
                and seen == self.kill_label[1]
            ):
                self._kill(point or CrashPoint(index, kind, detail, self.epoch))
        # Only reached when the event survives: apply its effect on the
        # pending/durable tracking.
        if kind in _LINE_KINDS:
            self.pending_lines.add(detail)  # type: ignore[arg-type]
        elif kind == "fence":
            self.epoch += 1
            self.durable_lines |= self.pending_lines
            self.pending_lines.clear()

    def _kill(self, point: CrashPoint) -> None:
        self.killed = point
        self.pending_at_kill = frozenset(self.pending_lines)
        self.durable_at_kill = frozenset(self.durable_lines)
        if self._machine is not None:
            self._machine.stats.add("faults.kills")
        raise CrashPointReached(point)

    def _power_fail(self) -> None:
        machine = self._machine
        if machine is not None:
            if self.fault_models:
                damaged = 0
                for model in self.fault_models:
                    damaged += model.apply(machine, set(self.pending_lines))
                machine.stats.add("faults.model_applications", len(self.fault_models))
                machine.stats.add("faults.damaged_units", damaged)
            machine.stats.add("faults.power_fails")
        # The write buffer is volatile: its epoch/pending view resets.
        self.pending_lines.clear()
        self.durable_lines.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def label_points(self) -> dict:
        """Label -> occurrence count observed so far."""
        return dict(self._label_seen)
