"""The standard crashtest scenarios (plus the property-test one).

Each scenario is a small deterministic workload chosen to put a
different slice of the persistence stack between crash points:

``checkpoint-rebuild`` / ``checkpoint-persistent``
    the canonical two-checkpoint run — durable data writes, VMA churn
    between checkpoints, register changes — under each page-table
    consistency scheme.
``ssp-commit``
    a FASE with interval commits and a forced consolidation; checks
    that shadow sub-paging never declares an unfenced line current.
``redo-replay``
    heavy OS-metadata churn so the redo log carries real weight through
    append, apply, commit and truncate.
``multiprocess``
    three persistent processes checkpointed as one interval; recovery
    must keep their frames disjoint and each process at one of *its
    own* goldens (cross-process commit atomicity is not promised).
``reclaim-unmap-rebuild`` / ``reclaim-unmap-persistent``
    the ROADMAP repro under crash-point enumeration: munmap of
    checkpointed pages *after* the commit parks their frames
    (``reclaim.park``), reuse pressure tries to recycle them, and the
    next commit retires the epoch (``reclaim.retire``); every kill
    inside the park/retire ordering must recover committed contents.
``reclaim-remap-rebuild`` / ``reclaim-remap-persistent``
    mremap-after-checkpoint: a forced move clears committed PTEs in
    place (translation-only park records), then a shrink frees moved
    frames; recovery must resurrect the committed translations.

:class:`RandomOpsScenario` drives the same machinery from a seeded
random op stream for the hypothesis property tests.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import derive_rng
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.faults.explorer import CrashScenario, ScenarioContext
from repro.faults.injector import CrashInjector
from repro.faults.invariants import Violation
from repro.gemos.vma import PROT_READ
from repro.ssp.sspcache import split_bitmap_lines


class CheckpointScenario(CrashScenario):
    """Two checkpoints with durable writes and layout churn between."""

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.name = f"checkpoint-{scheme}"

    def run(self, ctx: ScenarioContext) -> None:
        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        proc = system.spawn("app")
        base = ctx.mmap_nvm(proc, 8 * PAGE_SIZE, name="stable")
        for i in range(4):
            ctx.write_durable(proc, base + i * PAGE_SIZE, f"block-{i}".encode())
        proc.registers["pc"] = 0x1000
        system.checkpoint()  # golden 1
        extra = ctx.mmap_nvm(proc, 4 * PAGE_SIZE, name="scratch")
        machine.store(extra, b"ephemeral-0")
        machine.store(extra + PAGE_SIZE, b"ephemeral-1")
        kernel.sys_munmap(proc, base + 6 * PAGE_SIZE, 2 * PAGE_SIZE)
        kernel.sys_mprotect(proc, base + 4 * PAGE_SIZE, PAGE_SIZE, PROT_READ)
        proc.registers["pc"] = 0x2000
        system.checkpoint()  # golden 2
        # Post-checkpoint tail: points here must recover to golden 2.
        machine.store(extra + 2 * PAGE_SIZE, b"post-commit")
        kernel.sys_munmap(proc, extra, PAGE_SIZE)


class SspCommitScenario(CrashScenario):
    """A FASE over NVM pages: interval commits + forced consolidation."""

    name = "ssp-commit"
    scheme = "rebuild"

    def run(self, ctx: ScenarioContext) -> None:
        from repro.ssp.manager import SspManager

        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        proc = system.spawn("fase")
        base = ctx.mmap_nvm(proc, 4 * PAGE_SIZE, name="fase-heap")
        for i in range(4):
            machine.store(base + i * PAGE_SIZE, bytes([i + 1]) * 8)
        proc.registers["pc"] = 0x500
        system.checkpoint()
        manager = SspManager(
            kernel,
            proc,
            consistency_interval_ms=50.0,
            consolidation_interval_ms=50.0,
            cache_capacity=64,
        )
        ctx.scratch["ssp"] = manager
        manager.checkpoint_start(base, base + 4 * PAGE_SIZE)
        # The pre-FASE faults left TLB entries without shadow fields;
        # refills inside the FASE pick them up (on real hardware the
        # FASE entry point carries a TLB shootdown).
        machine.tlb.flush()
        for i in range(4):
            machine.store(base + i * PAGE_SIZE + i * CACHE_LINE, b"interval-one")
        manager.interval_end()
        for i in range(4):
            machine.store(base + i * PAGE_SIZE + 8 * CACHE_LINE, b"interval-two")
        manager.interval_end()
        manager.consolidate_tick(force_all=True)
        machine.store(base + 2 * CACHE_LINE, b"tail-write")
        manager.checkpoint_end()
        system.checkpoint()

    def at_kill(
        self,
        ctx: ScenarioContext,
        injector: CrashInjector,
        violations: List[Violation],
    ) -> None:
        manager = ctx.scratch.get("ssp")
        if manager is None:
            return
        durable = injector.durable_at_kill
        for entry in manager.cache.entries.values():  # type: ignore[attr-defined]
            for line_idx in split_bitmap_lines(entry.current_bitmap):
                line = (entry.shadow_pfn * PAGE_SIZE) // CACHE_LINE + line_idx
                if line not in durable:
                    violations.append(
                        Violation(
                            self.name,
                            f"SSP current bit set for vpn {entry.vpn:#x} "
                            f"line {line_idx} but the shadow line was never "
                            "fenced — a torn sub-page would surface",
                        )
                    )

    def after_crash(self, ctx: ScenarioContext) -> None:
        manager = ctx.scratch.get("ssp")
        if manager is not None:
            # The extension is volatile scenario state; without the
            # manager it must not keep routing after the reboot.
            manager.extension.enabled = False  # type: ignore[attr-defined]


class RedoReplayScenario(CrashScenario):
    """Metadata churn heavy enough to make the redo log load-bearing."""

    name = "redo-replay"
    scheme = "rebuild"

    def run(self, ctx: ScenarioContext) -> None:
        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        proc = system.spawn("churn")
        base = ctx.mmap_nvm(proc, 16 * PAGE_SIZE, name="arena")
        for i in range(6):
            machine.store(base + i * PAGE_SIZE, bytes([0x10 + i]) * 4)
        proc.registers["pc"] = 0x10
        system.checkpoint()  # golden 1
        segments = []
        for i in range(3):
            seg = ctx.mmap_nvm(proc, 2 * PAGE_SIZE, name=f"seg{i}")
            machine.store(seg, f"segment-{i}".encode())
            kernel.sys_mprotect(proc, seg + PAGE_SIZE, PAGE_SIZE, PROT_READ)
            segments.append(seg)
        kernel.sys_munmap(proc, base + 10 * PAGE_SIZE, 4 * PAGE_SIZE)
        proc.registers["pc"] = 0x20
        system.checkpoint()  # golden 2
        kernel.sys_munmap(proc, segments[0], 2 * PAGE_SIZE)
        machine.store(base + 7 * PAGE_SIZE, b"late")
        proc.registers["pc"] = 0x30
        system.checkpoint()  # golden 3
        kernel.sys_munmap(proc, segments[1], PAGE_SIZE)


class MultiprocessScenario(CrashScenario):
    """Three persistent processes checkpointed as one interval."""

    name = "multiprocess"
    scheme = "persistent"

    def run(self, ctx: ScenarioContext) -> None:
        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        procs = []
        bases = []
        for i in range(3):
            proc = system.spawn(f"proc{i}")
            base = ctx.mmap_nvm(proc, 4 * PAGE_SIZE, name="heap")
            ctx.write_durable(proc, base, f"proc{i}-payload".encode())
            proc.registers["pc"] = 0x100 * (i + 1)
            procs.append(proc)
            bases.append(base)
        system.checkpoint()  # goldens: one per pid
        for i, proc in enumerate(procs):
            kernel.switch_to(proc)
            machine.store(bases[i] + PAGE_SIZE, f"round-two-{i}".encode())
            proc.registers["pc"] += 8
        kernel.switch_to(procs[1])
        ctx.mmap_nvm(procs[1], 2 * PAGE_SIZE, name="growth")
        system.checkpoint()
        kernel.switch_to(procs[2])
        machine.store(bases[2] + 2 * PAGE_SIZE, b"tail")


class ReclaimUnmapScenario(CrashScenario):
    """munmap-after-checkpoint: parked frames across a full epoch.

    Golden 1 commits four durable pages; the tail then unmaps half of
    them (their frames *park* — ``reclaim.park`` points), maps fresh
    pressure pages (which must not receive a parked frame), and commits
    again (the epoch retires inside the commit — ``reclaim.retire``
    points).  A final post-commit unmap leaves a fresh epoch open at
    scenario end.  Kills anywhere in this ordering must recover the
    checkpointed bytes — the exact sequence that used to read zeroes.
    """

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.name = f"reclaim-unmap-{scheme}"

    def run(self, ctx: ScenarioContext) -> None:
        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        proc = system.spawn("reclaim")
        base = ctx.mmap_nvm(proc, 4 * PAGE_SIZE, name="committed")
        for i in range(4):
            ctx.write_durable(proc, base + i * PAGE_SIZE, f"keep-{i}".encode())
        proc.registers["pc"] = 0x40
        system.checkpoint()  # golden 1: all four pages live
        # Tear down half the committed range: the frames park.
        kernel.sys_munmap(proc, base + 2 * PAGE_SIZE, 2 * PAGE_SIZE)
        # Reuse pressure: fresh mappings must not recycle parked
        # frames.  Mapped away from the hole the munmap left — address
        # reuse would legitimately change the bytes at the recorded
        # durable addresses between goldens.
        scratch = ctx.mmap_nvm(
            proc, 2 * PAGE_SIZE, name="scratch", addr=base + 16 * PAGE_SIZE
        )
        machine.store(scratch, b"overwrite-bait")
        machine.store(scratch + PAGE_SIZE, b"more-bait")
        proc.registers["pc"] = 0x41
        system.checkpoint()  # golden 2: the epoch retires in this commit
        # A fresh epoch left open at scenario end (recovery retires it).
        kernel.sys_munmap(proc, base + PAGE_SIZE, PAGE_SIZE)
        machine.store(scratch, b"tail-write")


class ReclaimRemapScenario(CrashScenario):
    """mremap-after-checkpoint: translation loss without frame loss.

    Golden 1 commits two durable pages; a forced move then transplants
    their PTEs to a new range (clearing the committed translations in
    place — translation-only park records), and a shrink back to one
    page frees a moved frame (an ownership upgrade on its record).
    Golden 2 commits the moved layout.  Recovery from kills before
    golden 2 must resurrect the *committed* translations at the old
    range; after it, the moved layout is the target.
    """

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.name = f"reclaim-remap-{scheme}"

    def run(self, ctx: ScenarioContext) -> None:
        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        proc = system.spawn("mover")
        base = ctx.mmap_nvm(proc, 2 * PAGE_SIZE, name="movable")
        ctx.write_durable(proc, base, b"payload-zero")
        ctx.write_durable(proc, base + PAGE_SIZE, b"payload-one")
        # Barrier right after blocks in-place growth, forcing a move.
        ctx.mmap_nvm(proc, PAGE_SIZE, name="barrier", addr=base + 2 * PAGE_SIZE)
        proc.registers["pc"] = 0x50
        system.checkpoint()  # golden 1: payloads at the old range
        new_addr = kernel.sys_mremap(proc, base, 2 * PAGE_SIZE, 4 * PAGE_SIZE)
        machine.store(new_addr + 2 * PAGE_SIZE, b"grown-tail")
        # Shrink back: the second moved frame is released (parked —
        # its park record upgrades from translation-only to owning).
        kernel.sys_mremap(proc, new_addr, 4 * PAGE_SIZE, PAGE_SIZE)
        proc.registers["pc"] = 0x51
        system.checkpoint()  # golden 2: the moved, shrunk layout
        machine.store(new_addr, b"after-commit")


class RandomOpsScenario(CrashScenario):
    """Seeded random op stream for the hypothesis property tests."""

    def __init__(self, scheme: str, seed: int, n_ops: int = 20) -> None:
        self.scheme = scheme
        self.seed = seed
        self.n_ops = n_ops
        self.name = f"random-{scheme}-{seed}"

    def run(self, ctx: ScenarioContext) -> None:
        rng = derive_rng(self.seed, "crash-random-ops")
        system = ctx.system
        kernel = system.kernel
        machine = system.machine
        assert kernel is not None
        proc = system.spawn("rand")
        base = ctx.mmap_nvm(proc, 4 * PAGE_SIZE, name="anchor")
        machine.store(base, b"anchor")
        regions = [(base, 4)]  # regions[0] is never unmapped/protected
        for step in range(self.n_ops):
            roll = rng.random()
            if roll < 0.30:
                pages = rng.randrange(1, 4)
                addr = ctx.mmap_nvm(proc, pages * PAGE_SIZE, name=f"r{step}")
                machine.store(addr, bytes([step % 251 + 1]) * 8)
                regions.append((addr, pages))
            elif roll < 0.50 and len(regions) > 1:
                addr, pages = regions.pop(rng.randrange(1, len(regions)))
                kernel.sys_munmap(proc, addr, pages * PAGE_SIZE)
            elif roll < 0.62 and len(regions) > 1:
                addr, _pages = regions[rng.randrange(1, len(regions))]
                kernel.sys_mprotect(proc, addr, PAGE_SIZE, PROT_READ)
            elif roll < 0.85:
                offset = rng.randrange(4) * PAGE_SIZE
                machine.store(base + offset, bytes([rng.randrange(1, 256)]) * 16)
            else:
                proc.registers["pc"] = rng.randrange(1, 1 << 16)
                system.checkpoint()
        proc.registers["pc"] = 0xFFFF
        system.checkpoint()


def standard_scenarios() -> List[CrashScenario]:
    """The nine scenarios of ``python -m repro.harness crashtest``."""
    return [
        CheckpointScenario("rebuild"),
        CheckpointScenario("persistent"),
        SspCommitScenario(),
        RedoReplayScenario(),
        MultiprocessScenario(),
        ReclaimUnmapScenario("rebuild"),
        ReclaimUnmapScenario("persistent"),
        ReclaimRemapScenario("rebuild"),
        ReclaimRemapScenario("persistent"),
    ]


def scenario_by_name(name: str) -> CrashScenario:
    """A fresh instance of the named standard scenario.

    Scenario names are the cross-process addressing scheme of the
    parallel crash explorer: workers rebuild the scenario from its name
    instead of pickling live objects, so only standard scenarios are
    addressable (custom instances fall back to serial exploration).
    """
    for scenario in standard_scenarios():
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown standard scenario {name!r}")
