"""High-level facade over the full Kindle stack.

:class:`HybridSystem` bundles the simulated machine, the NVM object
store, the kernel, the page-table scheme and the persistence manager,
and manages the boot → run → crash → reboot(recover) lifecycle that the
process-persistence evaluation exercises.

>>> system = HybridSystem(scheme="persistent")
>>> system.boot()
[]
>>> proc = system.kernel.create_process("app")
>>> system.kernel.switch_to(proc)
>>> addr = system.kernel.sys_mmap(proc, None, 4096, PROT_WRITE, MAP_NVM)
>>> system.machine.store(addr, b"A")
>>> system.checkpoint()
>>> system.crash()
>>> recovered = system.boot()
>>> system.machine.load(recovered[0].address_space.find(addr).start, 1)
b'A'
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.machine import Machine
from repro.common.config import MachineConfig
from repro.common.errors import KindleError
from repro.common.units import ms_from_cycles
from repro.gemos.kernel import Kernel, KernelConfig
from repro.gemos.process import Process
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE  # re-export convenience
from repro.mem.nvmstore import NvmObjectStore
from repro.persist.checkpoint import PersistenceManager
from repro.persist.recovery import recover
from repro.persist.schemes import PageTableScheme, make_scheme

__all__ = [
    "HybridSystem",
    "MAP_NVM",
    "PROT_READ",
    "PROT_WRITE",
]


class HybridSystem:
    """One simulated hybrid-memory computer with process persistence."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        scheme: str = "rebuild",
        checkpoint_interval_ms: float = 10.0,
        kernel_config: Optional[KernelConfig] = None,
        persistence: bool = True,
    ) -> None:
        self.machine = Machine(config)
        self.nvm_store = NvmObjectStore()
        self.scheme_name = scheme
        self.checkpoint_interval_ms = checkpoint_interval_ms
        self.kernel_config = kernel_config or KernelConfig()
        self.persistence_enabled = persistence
        self.kernel: Optional[Kernel] = None
        self.manager: Optional[PersistenceManager] = None
        self.scheme: Optional[PageTableScheme] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def boot(self) -> List[Process]:
        """Boot (or reboot) the OS; returns processes recovered from NVM."""
        if self.kernel is not None:
            raise KindleError("system already booted; crash() or shutdown() first")
        scheme = make_scheme(self.scheme_name)
        self.scheme = scheme
        self.kernel = Kernel(
            self.machine, self.nvm_store, scheme, self.kernel_config
        )
        recovered: List[Process] = []
        if self.persistence_enabled:
            self.manager = PersistenceManager(
                self.kernel, scheme, self.checkpoint_interval_ms
            )
            recovered = recover(self.kernel, scheme)
        return recovered

    def crash(self) -> None:
        """Power failure: volatile state is lost; call :meth:`boot` next."""
        if self.kernel is None:
            raise KindleError("system is not booted")
        self.kernel.crash()
        self.kernel = None
        self.manager = None
        self.scheme = None

    def shutdown(self) -> None:
        """Orderly stop (used between experiment runs, not a crash)."""
        if self.manager is not None:
            self.manager.disarm()
        self.kernel = None
        self.manager = None
        self.scheme = None

    def checkpoint(self) -> None:
        """Force an immediate checkpoint of all persistent processes."""
        if self.manager is None:
            raise KindleError("persistence is not enabled")
        self.manager.checkpoint_all()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def spawn(self, name: str = "init") -> Process:
        """Create a process and make it current."""
        if self.kernel is None:
            raise KindleError("system is not booted")
        process = self.kernel.create_process(name)
        self.kernel.switch_to(process)
        return process

    @property
    def stats(self):
        return self.machine.stats

    @property
    def elapsed_ms(self) -> float:
        """Simulated wall-clock so far, in milliseconds."""
        return ms_from_cycles(self.machine.clock)
