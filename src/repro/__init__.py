"""Kindle reproduction: OS-architecture interplay in hybrid memory systems.

A pure-Python reimplementation of the Kindle framework (IISWC 2024):
a cycle-accounting hybrid DRAM/NVM platform model, a lightweight OS
with ``mmap(MAP_NVM)``, full process persistence with two page-table
consistency schemes, a trace-based application preparation pipeline,
and prototype implementations of SSP (shadow sub-paging) and HSCC
(hardware/software cooperative caching).

Quickstart::

    from repro import HybridSystem, MAP_NVM, PROT_WRITE

    system = HybridSystem(scheme="persistent")
    system.boot()
    proc = system.spawn("app")
    addr = system.kernel.sys_mmap(proc, None, 1 << 20, PROT_WRITE, MAP_NVM)
    system.machine.store(addr, b"hello")
    system.checkpoint()
    system.crash()
    (proc,) = system.boot()          # recovered from NVM
"""

from repro.arch.machine import Machine
from repro.common.config import (
    DDR4_2400,
    PCM,
    HybridLayoutConfig,
    MachineConfig,
    small_machine_config,
)
from repro.common.stats import Stats
from repro.gemos.kernel import Kernel, KernelConfig
from repro.gemos.vma import MAP_FIXED, MAP_NVM, PROT_READ, PROT_WRITE
from repro.mem.hybrid import MemType
from repro.platform import HybridSystem

__version__ = "1.0.0"

__all__ = [
    "HybridSystem",
    "Machine",
    "MachineConfig",
    "HybridLayoutConfig",
    "small_machine_config",
    "DDR4_2400",
    "PCM",
    "Stats",
    "Kernel",
    "KernelConfig",
    "MemType",
    "MAP_NVM",
    "MAP_FIXED",
    "PROT_READ",
    "PROT_WRITE",
    "__version__",
]
