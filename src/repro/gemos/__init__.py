"""The OS substrate (gemOS analog).

A lightweight kernel sufficient to reproduce the paper's evaluation:
processes with virtual address spaces, VMAs tagged DRAM or NVM via the
``MAP_NVM`` mmap flag, demand paging over per-technology physical frame
allocators, a real 4-level x86-64-style page table walked by the
simulated hardware, and OS timers.  Persistence (checkpointing, crash,
recovery) layers on top in :mod:`repro.persist`.
"""

from repro.gemos.frames import FrameAllocator
from repro.gemos.kernel import Kernel, KernelConfig
from repro.gemos.pagetable import PageTable, Pte
from repro.gemos.process import Process, ProcessState
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE, AddressSpace, Vma

__all__ = [
    "FrameAllocator",
    "Kernel",
    "KernelConfig",
    "PageTable",
    "Pte",
    "Process",
    "ProcessState",
    "AddressSpace",
    "Vma",
    "MAP_NVM",
    "PROT_READ",
    "PROT_WRITE",
]
