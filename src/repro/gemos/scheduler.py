"""CPU scheduling and OS background activity.

Kindle's full-system nature means OS activities — context switches and
the cache pollution they drag in — show up in application results,
"which user-level simulators like ZSim miss" (Section III-C).  This
module provides the two ingredients for such studies:

* :class:`RoundRobinScheduler` — a quantum-based scheduler rotating
  the machine between runnable processes, charging a fixed context
  switch cost (register save/restore, run-queue manipulation) per
  rotation;
* :class:`OsNoiseSource` — periodic kernel background work (the
  daemons gemOS deliberately lacks, reintroduced in controlled doses)
  that streams over a kernel buffer, polluting the caches and charging
  OS time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import KindleError
from repro.common.units import CACHE_LINE, PAGE_SIZE, cycles_from_ms
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process

#: Register save/restore + run queue + return-to-user cost.
CONTEXT_SWITCH_CYCLES = 1800


class RoundRobinScheduler:
    """Rotate the CPU between runnable processes every quantum."""

    def __init__(self, kernel: Kernel, quantum_ms: float = 1.0) -> None:
        if quantum_ms <= 0:
            raise KindleError("scheduler quantum must be positive")
        self.kernel = kernel
        self.machine = kernel.machine
        self.quantum_cycles = cycles_from_ms(quantum_ms)
        self._queue: List[Process] = []
        self._timer = None
        self.switches = 0

    def add(self, process: Process) -> None:
        if process in self._queue:
            raise KindleError(f"pid {process.pid} already scheduled")
        self._queue.append(process)

    def remove(self, process: Process) -> None:
        if process in self._queue:
            self._queue.remove(process)

    def start(self) -> None:
        if not self._queue:
            raise KindleError("nothing to schedule")
        self.kernel.switch_to(self._queue[0])
        self._timer = self.machine.timers.arm(
            self.machine.clock + self.quantum_cycles,
            self.tick,
            period=self.quantum_cycles,
            name="scheduler",
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def tick(self) -> None:
        """Quantum expiry: charge the switch, rotate the run queue."""
        if len(self._queue) < 2:
            return
        with self.machine.os_region("context_switch"):
            self.machine.advance(CONTEXT_SWITCH_CYCLES)
            self._queue.append(self._queue.pop(0))
            self.kernel.switch_to(self._queue[0])
        self.switches += 1
        self.machine.stats.add("sched.context_switches")


class TimestampScheduler:
    """Arrival-driven dispatch for traffic populations.

    The :class:`RoundRobinScheduler` rotates on quantum expiry; traffic
    schedules instead know *when* each process's ops arrive, so the
    driver hands the CPU over whenever the interleaved timestamp order
    crosses a process boundary.  Each handover charges the same
    :data:`CONTEXT_SWITCH_CYCLES` in OS mode and ticks the same
    ``sched.context_switches`` counter as a quantum switch — the cost
    model does not care *why* the kernel switched.
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.switches = 0

    def dispatch(self, process: Process) -> bool:
        """Make ``process`` current; no-op (and free) if it already is.

        Returns True when an actual context switch happened.
        """
        if self.kernel.current is process:
            return False
        with self.machine.os_region("context_switch"):
            self.machine.advance(CONTEXT_SWITCH_CYCLES)
            self.kernel.switch_to(process)
        self.switches += 1
        self.machine.stats.add("sched.context_switches")
        return True


def run_multiprogrammed(
    kernel: Kernel,
    scheduler: RoundRobinScheduler,
    programs,
    batch_ops: int = 64,
    max_batches: int = 1_000_000,
) -> int:
    """Interleave several replay programs under the scheduler.

    ``programs`` maps each scheduled :class:`Process` to its
    ``ReplayProgram``.  The driver always executes a small batch for
    whichever process the scheduler has made current, so quantum
    expiries really do interleave the workloads (and pollute each
    other's caches).  Returns total operations executed.
    """
    pending = dict(programs)
    executed = 0
    batches = 0
    while pending:
        batches += 1
        if batches > max_batches:
            raise KindleError("multiprogrammed run did not converge")
        current = kernel.current
        if current not in pending:
            # The current process finished; rotate to a pending one.
            scheduler.remove(current)
            next_proc = next(iter(pending))
            kernel.switch_to(next_proc)
            continue
        program = pending[current]
        executed += program.run(kernel, current, max_ops=batch_ops)
        if program.is_finished(current):
            del pending[current]
    return executed


class OsNoiseSource:
    """Periodic kernel background work (cache pollution on a timer).

    Each tick streams ``lines_per_tick`` cache lines of a dedicated
    kernel buffer through the hierarchy in OS mode — evicting
    application lines exactly the way background OS services do on a
    production kernel.
    """

    def __init__(
        self,
        kernel: Kernel,
        interval_ms: float = 1.0,
        lines_per_tick: int = 256,
        buffer_pages: int = 64,
    ) -> None:
        if interval_ms <= 0 or lines_per_tick <= 0 or buffer_pages <= 0:
            raise KindleError("invalid OS noise configuration")
        self.kernel = kernel
        self.machine = kernel.machine
        self.interval_cycles = cycles_from_ms(interval_ms)
        self.lines_per_tick = lines_per_tick
        frames = [kernel.dram_alloc.alloc() for _ in range(buffer_pages)]
        self._base_paddr = frames[0] * PAGE_SIZE
        self._span_lines = buffer_pages * (PAGE_SIZE // CACHE_LINE)
        self._cursor = 0
        self._timer = None
        self.ticks = 0

    def start(self) -> None:
        self._timer = self.machine.timers.arm(
            self.machine.clock + self.interval_cycles,
            self.tick,
            period=self.interval_cycles,
            name="os-noise",
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def tick(self) -> None:
        with self.machine.os_region("background"):
            for _ in range(self.lines_per_tick):
                paddr = self._base_paddr + (self._cursor % self._span_lines) * CACHE_LINE
                self.machine.phys_line_access(paddr, is_write=self._cursor % 4 == 0)
                self._cursor += 1
        self.ticks += 1
        self.machine.stats.add("sched.noise_ticks")
