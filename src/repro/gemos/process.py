"""Process control blocks and execution contexts.

A process's *execution context* is what process persistence must
preserve (Section II-A): CPU registers, the virtual address space
layout, and — for NVM mappings — the virtual-to-physical associations
needed to rebuild translation state after a reboot.  The replay CPU
keeps its position in the ``pc`` register, so "resume from the last
consistent checkpoint" is directly observable: a recovered process
re-executes from the operation index captured at its last checkpoint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.gemos.vma import AddressSpace

if TYPE_CHECKING:  # pragma: no cover
    from repro.gemos.pagetable import PageTable


class ProcessState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    EXITED = "exited"


#: Architectural registers captured in a checkpoint.  ``pc`` doubles as
#: the replay position for trace-driven workloads.
DEFAULT_REGISTERS = ("pc", "sp", "rax", "rbx", "rcx", "rdx", "rsi", "rdi")


def fresh_registers() -> Dict[str, int]:
    return {name: 0 for name in DEFAULT_REGISTERS}


@dataclass(eq=False)  # identity semantics: a PCB is an entity
class Process:
    """One gemOS process."""

    pid: int
    name: str
    address_space: AddressSpace = field(default_factory=AddressSpace)
    page_table: Optional["PageTable"] = None
    registers: Dict[str, int] = field(default_factory=fresh_registers)
    state: ProcessState = ProcessState.NEW
    #: Whether this process participates in persistence (has a saved
    #: state in NVM and is checkpointed).
    persistent: bool = True
    #: Journal of NVM mapping changes since the last checkpoint, in
    #: order: ("map", vpn, pfn) / ("unmap", vpn, 0).  The rebuild
    #: scheme applies every journaled change to the v2p list at
    #: checkpoint time (the paper applies *all* logged entries, so a
    #: page mapped and unmapped within one interval still costs two
    #: list updates).
    pending_nvm_ops: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def asid(self) -> int:
        """Address-space id — the pid, as in gemOS."""
        return self.pid

    def context_snapshot(self) -> Dict[str, object]:
        """The execution context captured by a checkpoint."""
        return {
            "pid": self.pid,
            "name": self.name,
            "registers": dict(self.registers),
            "vmas": self.address_space.snapshot(),
        }
