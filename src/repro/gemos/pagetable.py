"""Four-level x86-64-style page table.

Table nodes occupy real physical frames (allocated from either the DRAM
or the NVM allocator depending on the page-table scheme), so a hardware
walk is four dependent physical accesses through the cache hierarchy —
exactly what makes the *persistent* scheme's NVM-resident tables mostly
free for translation ("access to page table entries for address
translation gets the benefit of multiple levels of TLBs and
intermediate caches", Section III-A).

Every mutation of a table entry reports the entry's physical address to
an installed ``write_observer``; the page-table schemes use that hook to
charge either a plain cached DRAM write (*rebuild*) or a logged,
flushed, fenced NVM update (*persistent*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.arch.machine import Machine
from repro.common.errors import FaultError
from repro.gemos.frames import FrameAllocator

#: 9 translation bits per level, 4 levels, 4 KiB leaves.
LEVELS = 4
BITS_PER_LEVEL = 9
ENTRIES_PER_TABLE = 1 << BITS_PER_LEVEL
PTE_SIZE = 8
PAGE_SHIFT = 12


@dataclass
class Pte:
    """Leaf page-table entry (plus the HSCC access-count extension)."""

    pfn: int
    writable: bool = True
    #: HSCC extension: per-page access count, incremented on LLC miss.
    access_count: int = 0


class _Node:
    """One table at one level, resident in physical frame ``frame``."""

    __slots__ = ("frame", "level", "entries")

    def __init__(self, frame: int, level: int) -> None:
        self.frame = frame
        self.level = level
        #: index -> child _Node (level > 0) or Pte (level == 0).
        self.entries: Dict[int, object] = {}

    def entry_paddr(self, index: int) -> int:
        return (self.frame << PAGE_SHIFT) + index * PTE_SIZE


def _index_at(vpn: int, level: int) -> int:
    return (vpn >> (BITS_PER_LEVEL * level)) & (ENTRIES_PER_TABLE - 1)


class PageTable:
    """A process page table over frames from ``allocator``."""

    def __init__(
        self,
        allocator: FrameAllocator,
        write_observer: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.allocator = allocator
        #: Called with the physical address of every mutated entry;
        #: installed by the page-table scheme to charge consistency.
        self.write_observer = write_observer
        self.root = _Node(allocator.alloc(), LEVELS - 1)
        self._valid_leaves = 0
        #: Count of entry mutations since construction (scheme metrics).
        self.entry_writes = 0

    # ------------------------------------------------------------------
    # software (kernel) operations
    # ------------------------------------------------------------------

    def _observe_write(self, paddr: int) -> None:
        self.entry_writes += 1
        if self.write_observer is not None:
            self.write_observer(paddr)

    def map(self, vpn: int, pfn: int, writable: bool = True) -> int:
        """Install ``vpn -> pfn``; returns the number of entries written
        (1 for the leaf plus 1 per newly created intermediate table)."""
        node = self.root
        writes = 0
        for level in range(LEVELS - 1, 0, -1):
            index = _index_at(vpn, level)
            child = node.entries.get(index)
            if child is None:
                child = _Node(self.allocator.alloc(), level - 1)
                node.entries[index] = child
                self._observe_write(node.entry_paddr(index))
                writes += 1
            assert isinstance(child, _Node)
            node = child
        index = _index_at(vpn, 0)
        node.entries[index] = Pte(pfn=pfn, writable=writable)
        self._observe_write(node.entry_paddr(index))
        writes += 1
        self._valid_leaves += 1
        return writes

    def unmap(self, vpn: int) -> Optional[Pte]:
        """Remove the leaf mapping for ``vpn``.

        Table nodes left empty are reclaimed bottom-up (their frames
        return to the allocator and the parent entries are cleared), so
        sparse populations built by the stride experiment really do
        rebuild multiple levels on every churn round.
        """
        path: List[Tuple[_Node, int]] = []
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            index = _index_at(vpn, level)
            child = node.entries.get(index)
            if not isinstance(child, _Node):
                return None
            path.append((node, index))
            node = child
        index = _index_at(vpn, 0)
        pte = node.entries.pop(index, None)
        if pte is None:
            return None
        assert isinstance(pte, Pte)
        self._observe_write(node.entry_paddr(index))
        self._valid_leaves -= 1
        # Reclaim now-empty tables bottom-up (never the root).
        child = node
        for parent, parent_index in reversed(path):
            if child.entries:
                break
            del parent.entries[parent_index]
            self._observe_write(parent.entry_paddr(parent_index))
            self.allocator.free(child.frame)
            child = parent
        return pte

    def lookup(self, vpn: int) -> Optional[Pte]:
        """Software walk without timing (kernel internal use)."""
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            child = node.entries.get(_index_at(vpn, level))
            if not isinstance(child, _Node):
                return None
            node = child
        pte = node.entries.get(_index_at(vpn, 0))
        return pte if isinstance(pte, Pte) else None

    def protect(self, vpn: int, writable: bool) -> bool:
        """Change a leaf's protection; returns False if unmapped."""
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            child = node.entries.get(_index_at(vpn, level))
            if not isinstance(child, _Node):
                return False
            node = child
        index = _index_at(vpn, 0)
        pte = node.entries.get(index)
        if not isinstance(pte, Pte):
            return False
        pte.writable = writable
        self._observe_write(node.entry_paddr(index))
        return True

    def update_pfn(self, vpn: int, pfn: int) -> bool:
        """Point an existing leaf at a new frame (HSCC migration)."""
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            child = node.entries.get(_index_at(vpn, level))
            if not isinstance(child, _Node):
                return False
            node = child
        index = _index_at(vpn, 0)
        pte = node.entries.get(index)
        if not isinstance(pte, Pte):
            return False
        pte.pfn = pfn
        self._observe_write(node.entry_paddr(index))
        return True

    def iter_leaves(self) -> Iterator[Tuple[int, Pte]]:
        """All valid ``(vpn, pte)`` mappings, ascending by vpn."""

        def _walk(node: _Node, vpn_prefix: int) -> Iterator[Tuple[int, Pte]]:
            for index in sorted(node.entries):
                entry = node.entries[index]
                child_prefix = (vpn_prefix << BITS_PER_LEVEL) | index
                if isinstance(entry, _Node):
                    yield from _walk(entry, child_prefix)
                else:
                    assert isinstance(entry, Pte)
                    yield child_prefix, entry

        yield from _walk(self.root, 0)

    @property
    def valid_leaves(self) -> int:
        return self._valid_leaves

    def table_count(self) -> int:
        """Number of table nodes (all levels), for footprint accounting."""

        def _count(node: _Node) -> int:
            return 1 + sum(
                _count(child)
                for child in node.entries.values()
                if isinstance(child, _Node)
            )

        return _count(self.root)

    def destroy(self) -> None:
        """Free every table frame back to the allocator (process exit)."""

        def _free(node: _Node) -> None:
            for child in node.entries.values():
                if isinstance(child, _Node):
                    _free(child)
            self.allocator.free(node.frame)

        _free(self.root)
        self.root = _Node.__new__(_Node)  # poison further use
        self._valid_leaves = 0

    # ------------------------------------------------------------------
    # hardware walk
    # ------------------------------------------------------------------

    def peek(self, vpn: int) -> Optional[Tuple[int, bool]]:
        """Pure translation lookup: exactly :meth:`hw_walk`'s result
        with none of its simulated page-table traffic or stats.

        This is the ``walker_peek`` contract of
        :meth:`repro.arch.machine.Machine.install_context`: the batch
        miss-run kernel peeks first (free), and only when the
        translation is clean does it run the real charged ``hw_walk``
        inline — a fault never executes a half-op.  The walk itself
        never mutates the table, so peek-then-walk always agrees.
        """
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            child = node.entries.get(_index_at(vpn, level))
            if not isinstance(child, _Node):
                return None
            node = child
        pte = node.entries.get(_index_at(vpn, 0))
        if not isinstance(pte, Pte):
            return None
        return pte.pfn, pte.writable

    def hw_walk(self, machine: Machine, vpn: int) -> Optional[Tuple[int, bool]]:
        """The page-table walker: four dependent entry reads through the
        cache hierarchy.  Returns ``(pfn, writable)`` or ``None``."""
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            index = _index_at(vpn, level)
            machine.phys_line_access(node.entry_paddr(index), is_write=False)
            child = node.entries.get(index)
            if not isinstance(child, _Node):
                machine.stats.add("walk.aborted")
                return None
            node = child
        index = _index_at(vpn, 0)
        machine.phys_line_access(node.entry_paddr(index), is_write=False)
        pte = node.entries.get(index)
        if not isinstance(pte, Pte):
            machine.stats.add("walk.aborted")
            return None
        machine.stats.add("walk.completed")
        return pte.pfn, pte.writable


class PageTableError(FaultError):
    """Raised on structurally invalid page-table operations."""
