"""Virtual memory areas and the per-process address space layout.

Kindle tags every VMA as DRAM or NVM based on the ``MAP_NVM`` flag
passed to ``mmap()`` (Section II, Listing 1); demand paging later
allocates frames from the matching technology.  The layout keeps VMAs
sorted and non-overlapping and supports hinted placement, which the
stride micro-benchmark (Fig. 4b) uses to spread ten 4 KiB pages at
1 GiB / 2 MiB / 4 KiB gaps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import FaultError
from repro.common.units import GiB, PAGE_SIZE, align_up
from repro.mem.hybrid import MemType

PROT_READ = 0x1
PROT_WRITE = 0x2
#: The paper's extension flag: allocate this mapping from NVM.
MAP_NVM = 0x100
#: Place the mapping exactly at the hint or fail.
MAP_FIXED = 0x10

#: Default search base for unhinted mmap (matches a classic mmap region).
MMAP_BASE = 4 * GiB
#: Upper bound of the user mmap region (48-bit canonical space, minus
#: kernel half).
MMAP_LIMIT = 64 * 1024 * GiB


@dataclass
class Vma:
    """One mapped region ``[start, end)``."""

    start: int
    end: int
    writable: bool
    mem_type: MemType
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise FaultError(
                f"VMA [{self.start:#x}, {self.end:#x}) not page aligned"
            )
        if self.end <= self.start:
            raise FaultError(f"empty VMA at {self.start:#x}")

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def pages(self) -> int:
        return self.length // PAGE_SIZE

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def vpn_range(self) -> range:
        return range(self.start // PAGE_SIZE, self.end // PAGE_SIZE)


class AddressSpace:
    """Sorted, non-overlapping VMAs for one process."""

    def __init__(self) -> None:
        self._vmas: List[Vma] = []

    # -- queries -------------------------------------------------------

    def find(self, addr: int) -> Optional[Vma]:
        """The VMA containing ``addr``, or None."""
        starts = [v.start for v in self._vmas]
        idx = bisect.bisect_right(starts, addr) - 1
        if idx >= 0 and self._vmas[idx].contains(addr):
            return self._vmas[idx]
        return None

    def __iter__(self) -> Iterator[Vma]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    @property
    def mapped_bytes(self) -> int:
        return sum(v.length for v in self._vmas)

    def _overlaps(self, start: int, end: int) -> bool:
        for vma in self._vmas:
            if vma.start < end and start < vma.end:
                return True
        return False

    def _find_hole(self, length: int) -> int:
        candidate = MMAP_BASE
        for vma in self._vmas:
            if vma.end <= candidate:
                continue
            if vma.start >= candidate + length:
                break
            candidate = vma.end
        if candidate + length > MMAP_LIMIT:
            raise FaultError("virtual address space exhausted")
        return candidate

    # -- mutations -----------------------------------------------------

    def map(
        self,
        addr: Optional[int],
        length: int,
        prot: int,
        flags: int = 0,
        name: str = "anon",
    ) -> Vma:
        """Create a VMA (the layout half of ``mmap``).

        ``addr`` is a hint; with :data:`MAP_FIXED` it is binding and
        overlap is an error, otherwise an overlapping hint falls back
        to the first hole.
        """
        if length <= 0:
            raise FaultError(f"mmap length must be positive, got {length}")
        length = align_up(length, PAGE_SIZE)
        if addr is not None and addr % PAGE_SIZE:
            raise FaultError(f"mmap hint {addr:#x} not page aligned")
        if addr is not None and not self._overlaps(addr, addr + length):
            start = addr
        elif addr is not None and flags & MAP_FIXED:
            raise FaultError(f"MAP_FIXED range at {addr:#x} overlaps")
        else:
            start = self._find_hole(length)
        mem_type = MemType.NVM if flags & MAP_NVM else MemType.DRAM
        vma = Vma(
            start=start,
            end=start + length,
            writable=bool(prot & PROT_WRITE),
            mem_type=mem_type,
            name=name,
        )
        bisect.insort(self._vmas, vma, key=lambda v: v.start)
        return vma

    def unmap(self, addr: int, length: int) -> List[Tuple[int, int, Vma]]:
        """Remove ``[addr, addr+length)`` from the layout.

        Returns ``(start, end, original_vma)`` triples describing every
        removed page range, so the caller can release frames and page
        table entries.  VMAs partially covered are trimmed or split.
        """
        if length <= 0:
            raise FaultError("munmap length must be positive")
        if addr % PAGE_SIZE:
            raise FaultError(f"munmap address {addr:#x} not page aligned")
        end = addr + align_up(length, PAGE_SIZE)
        removed: List[Tuple[int, int, Vma]] = []
        survivors: List[Vma] = []
        for vma in self._vmas:
            if vma.end <= addr or vma.start >= end:
                survivors.append(vma)
                continue
            cut_lo = max(vma.start, addr)
            cut_hi = min(vma.end, end)
            removed.append((cut_lo, cut_hi, vma))
            if vma.start < cut_lo:
                survivors.append(
                    Vma(vma.start, cut_lo, vma.writable, vma.mem_type, vma.name)
                )
            if cut_hi < vma.end:
                survivors.append(
                    Vma(cut_hi, vma.end, vma.writable, vma.mem_type, vma.name)
                )
        survivors.sort(key=lambda v: v.start)
        self._vmas = survivors
        return removed

    def protect(self, addr: int, length: int, prot: int) -> List[Vma]:
        """``mprotect``: change protection over a range, splitting VMAs.

        Returns the VMAs now covering the range with the new protection.
        """
        end = addr + align_up(length, PAGE_SIZE)
        writable = bool(prot & PROT_WRITE)
        affected: List[Vma] = []
        survivors: List[Vma] = []
        for vma in self._vmas:
            if vma.end <= addr or vma.start >= end:
                survivors.append(vma)
                continue
            cut_lo = max(vma.start, addr)
            cut_hi = min(vma.end, end)
            if vma.start < cut_lo:
                survivors.append(
                    Vma(vma.start, cut_lo, vma.writable, vma.mem_type, vma.name)
                )
            changed = Vma(cut_lo, cut_hi, writable, vma.mem_type, vma.name)
            survivors.append(changed)
            affected.append(changed)
            if cut_hi < vma.end:
                survivors.append(
                    Vma(cut_hi, vma.end, vma.writable, vma.mem_type, vma.name)
                )
        survivors.sort(key=lambda v: v.start)
        self._vmas = survivors
        return affected

    def snapshot(self) -> List[Tuple[int, int, bool, str, str]]:
        """Serializable layout description (stored in the saved state)."""
        return [
            (v.start, v.end, v.writable, v.mem_type.value, v.name)
            for v in self._vmas
        ]

    @classmethod
    def from_snapshot(
        cls, rows: List[Tuple[int, int, bool, str, str]]
    ) -> "AddressSpace":
        """Rebuild a layout from :meth:`snapshot` (recovery path)."""
        space = cls()
        for start, end, writable, mem_type, name in rows:
            space._vmas.append(
                Vma(start, end, writable, MemType(mem_type), name)
            )
        space._vmas.sort(key=lambda v: v.start)
        return space
