"""The gemOS kernel analog.

Boots from the BIOS e820 map, builds one frame allocator per memory
technology (the NVM allocator's metadata is persistent), and implements
the system calls the paper's workloads use: the extended ``mmap`` with
``MAP_NVM``, ``munmap``, ``mprotect``, and demand paging.

The kernel is deliberately persistence-agnostic: it exposes *hook
points* — a page-table scheme that decides where tables live and what a
PTE update costs, and an event stream of OS-metadata changes — and
:mod:`repro.persist` subscribes to those to implement checkpointing,
crash and recovery.  This mirrors Kindle's layering, where process
persistence is a modification *of* gemOS rather than its core.

A *crash* models power failure: the machine drops volatile hardware
state and DRAM contents, and the kernel object itself must be thrown
away (kernel text/data live in DRAM).  Recovery constructs a fresh
kernel over the same machine and NVM store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.machine import Machine
from repro.common.errors import ConfigError, FaultError, SegmentationFault
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.gemos.frames import FrameAllocator
from repro.gemos.pagetable import PageTable
from repro.gemos.process import Process, ProcessState
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE, AddressSpace, Vma
from repro.mem.hybrid import E820Type, MemType
from repro.mem.nvmstore import NvmObjectStore

#: Trap entry + register save + dispatch for a page fault.
FAULT_ENTRY_CYCLES = 300
#: Syscall entry/exit overhead.
SYSCALL_CYCLES = 150
#: VMA tree lookup / insertion bookkeeping.
VMA_OP_CYCLES = 60
#: Per-page kernel work during munmap besides PT/allocator updates.
UNMAP_PAGE_CYCLES = 40

#: ``listener(event, pid, payload)`` — OS metadata change notification.
EventListener = Callable[[str, int, dict], None]


@dataclass
class KernelConfig:
    """Boot-time kernel parameters."""

    #: Charge frame scrubbing on the fault path.  gemOS hands out
    #: frames from a pre-zeroed pool replenished off the critical path
    #: (zero-fill *semantics* always hold — fresh pages read as
    #: zeroes); enable this to model an OS that scrubs synchronously
    #: at fault time instead.
    charge_fault_zeroing: bool = False

    #: Reserve this many NVM frames at the bottom of the NVM range for
    #: the persistence area (saved states, redo log, v2p lists, SSP
    #: metadata) before user allocations begin.
    nvm_reserved_frames: int = 1024


class PageTableSchemeBase:
    """Interface the kernel needs from a page-table consistency scheme.

    Concrete schemes (*rebuild*, *persistent*) live in
    :mod:`repro.persist.schemes`; this default places page tables in
    DRAM with no consistency cost, which is what a non-persistent OS
    does.
    """

    name = "volatile"

    def bind(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def table_allocator(self) -> FrameAllocator:
        return self.kernel.dram_alloc

    def create_page_table(self, process: Process) -> PageTable:
        return PageTable(self.table_allocator(), self.pte_write_observer)

    def pte_write_observer(self, entry_paddr: int) -> None:
        """Charge one page-table entry mutation (default: cached write)."""
        self.kernel.machine.phys_line_access(entry_paddr, is_write=True)


class FrameReleasePolicy:
    """Interface the kernel needs from a frame reclamation policy.

    Every path that tears down a live translation (``sys_munmap``,
    ``sys_mremap`` shrink/move, process exit, tiering migration) goes
    through this hook instead of calling ``allocator.free`` directly.
    The default frees immediately, which is what a non-persistent OS
    does; :class:`repro.persist.reclaim.EpochFrameReclaimer` replaces
    it to *park* frames reachable from the committed checkpoint until
    the next checkpoint commit retires the reclamation epoch.
    """

    name = "direct"

    def bind(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def release_page(self, process: Process, vpn: int):
        """Clear ``vpn``'s translation and release its frame.

        Returns the removed PTE (or ``None`` if the page was never
        faulted in).  TLB shootdown stays with the caller.
        """
        assert process.page_table is not None
        pte = process.page_table.unmap(vpn)
        if pte is None:
            return None
        mem_type = self.kernel.machine.layout.mem_type_of_pfn(pte.pfn)
        # Direct policy: no committed checkpoint can name this frame.
        # repro: allow-persist(default policy frees immediately; epoch reclaimer overrides)
        self.kernel.allocator_for(mem_type).free(pte.pfn)
        return pte

    def release_frame(self, process: Process, pfn: int, mem_type: MemType) -> None:
        """Release a frame whose translation was repointed elsewhere
        (tiering migration: the vpn stays mapped, to a new frame)."""
        # repro: allow-persist(default policy frees immediately; epoch reclaimer overrides)
        self.kernel.allocator_for(mem_type).free(pfn)

    def prepare_release(self, process: Process, vpn: int) -> None:
        """First half of a batched release: write (but do not fence) any
        reclamation metadata ``release_page(vpn)`` will need.

        Callers tearing down a *range* call this for every page, then
        ``release_barrier()`` once, then ``release_page`` per page — so
        a single fence covers the whole range's park records while every
        record is still durable before its PTE clear.  The default
        policy keeps no metadata: no-op."""

    def release_barrier(self) -> None:
        """Second half of a batched release: fence metadata written by
        ``prepare_release`` since the last barrier.  No-op by default."""

    def note_remap(
        self,
        process: Process,
        old_vpn: int,
        new_vpn: int,
        pfn: int,
        mem_type: MemType,
    ) -> None:
        """An mremap move is about to clear ``old_vpn``'s PTE and remap
        the frame at ``new_vpn``.  No frame is released; the epoch
        policy records the torn-down *translation* so recovery can
        resurrect the committed view.  The caller fences the batch with
        ``release_barrier()`` before clearing the old PTEs."""


class Kernel:
    """The booted OS instance."""

    def __init__(
        self,
        machine: Machine,
        nvm_store: NvmObjectStore,
        scheme: Optional[PageTableSchemeBase] = None,
        config: Optional[KernelConfig] = None,
    ) -> None:
        self.machine = machine
        self.nvm_store = nvm_store
        self.config = config or KernelConfig()
        self.scheme = scheme or PageTableSchemeBase()
        self.scheme.bind(self)
        self.stats = machine.stats
        self.processes: Dict[int, Process] = {}
        self.current: Optional[Process] = None
        self._next_pid = 1
        self._listeners: List[EventListener] = []
        self.dram_alloc, self.nvm_alloc = self._parse_e820()
        self._nvm_reserved_used = 0
        self.frame_release: FrameReleasePolicy = FrameReleasePolicy()
        self.frame_release.bind(self)
        machine.power_on()

    def install_frame_release(self, policy: FrameReleasePolicy) -> None:
        """Replace the frame reclamation policy (persistence hook)."""
        self.frame_release = policy
        policy.bind(self)

    def reserve_nvm_area(self, name: str, nbytes: int) -> int:
        """Carve a metadata area out of the reserved NVM frames.

        Used by the persistence machinery and the SSP cache; returns
        the area's physical base address.
        """
        from repro.common.units import align_up

        nbytes = align_up(nbytes, PAGE_SIZE)
        limit = self.config.nvm_reserved_frames * PAGE_SIZE
        if self._nvm_reserved_used + nbytes > limit:
            raise ConfigError(
                f"reserved NVM area exhausted while placing {name!r}"
            )
        base = self.machine.layout.nvm_base + self._nvm_reserved_used
        self._nvm_reserved_used += nbytes
        self.stats.add("kernel.nvm_reserved_bytes", nbytes)
        return base

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    def _parse_e820(self) -> Tuple[FrameAllocator, FrameAllocator]:
        dram_alloc: Optional[FrameAllocator] = None
        nvm_alloc: Optional[FrameAllocator] = None
        for entry in self.machine.layout.e820_map():
            lo = entry.base // PAGE_SIZE
            hi = (entry.base + entry.length) // PAGE_SIZE
            if entry.kind is E820Type.USABLE:
                dram_alloc = FrameAllocator(
                    MemType.DRAM, lo, hi, self.stats
                )
            elif entry.kind is E820Type.PMEM:
                reserved = self.config.nvm_reserved_frames
                if hi - lo <= reserved:
                    raise ConfigError("NVM range smaller than reserved area")
                nvm_alloc = FrameAllocator(
                    MemType.NVM,
                    lo + reserved,
                    hi,
                    self.stats,
                    machine=self.machine,
                    nvm_store=self.nvm_store,
                )
        if dram_alloc is None or nvm_alloc is None:
            raise ConfigError("e820 map must describe both DRAM and NVM")
        return dram_alloc, nvm_alloc

    def allocator_for(self, mem_type: MemType) -> FrameAllocator:
        return self.dram_alloc if mem_type is MemType.DRAM else self.nvm_alloc

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def add_listener(self, listener: EventListener) -> None:
        self._listeners.append(listener)

    def _emit(self, event: str, pid: int, **payload: object) -> None:
        for listener in self._listeners:
            listener(event, pid, payload)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def create_process(
        self,
        name: str,
        persistent: bool = True,
        pid: Optional[int] = None,
        address_space: Optional[AddressSpace] = None,
    ) -> Process:
        """Create a process; ``pid``/``address_space`` are supplied by
        the recovery path to reconstruct a saved context."""
        if pid is None:
            pid = self._next_pid
        self._next_pid = max(self._next_pid, pid + 1)
        process = Process(pid=pid, name=name, persistent=persistent)
        if address_space is not None:
            process.address_space = address_space
        process.page_table = self.scheme.create_page_table(process)
        process.state = ProcessState.READY
        self.processes[pid] = process
        self._emit("proc_create", pid, name=name, persistent=persistent)
        return process

    def switch_to(self, process: Process) -> None:
        """Context switch: point the hardware at this address space."""
        if process.pid not in self.processes:
            raise FaultError(f"unknown process {process.pid}")
        if self.current is not None and self.current is not process:
            self.current.state = ProcessState.READY
        self.current = process
        process.state = ProcessState.RUNNING
        assert process.page_table is not None
        self.machine.install_context(
            process.asid,
            process.page_table.hw_walk,
            self.handle_page_fault,
            walker_peek=process.page_table.peek,
        )

    def exit_process(self, process: Process) -> None:
        """Tear down a process: free data frames and page tables.

        The ``proc_exit`` event fires *before* teardown so the
        persistence layer can durably retire the saved context first; a
        crash mid-teardown then finds no recoverable state naming the
        freed frames (and the exiting process's parked frames are
        already drained, so the frees below are immediate).
        """
        self._emit("proc_exit", process.pid)
        with self.machine.os_region("exit"):
            assert process.page_table is not None
            for vpn, _pte in list(process.page_table.iter_leaves()):
                self.frame_release.release_page(process, vpn)
                self.machine.tlb.invalidate(process.asid, vpn)
            process.page_table.destroy()
        process.state = ProcessState.EXITED
        if self.current is process:
            self.current = None
        del self.processes[process.pid]

    # ------------------------------------------------------------------
    # system calls
    # ------------------------------------------------------------------

    def sys_mmap(
        self,
        process: Process,
        addr: Optional[int],
        length: int,
        prot: int,
        flags: int = 0,
        name: str = "anon",
    ) -> int:
        """The extended mmap: ``MAP_NVM`` selects NVM backing (Listing 1)."""
        with self.machine.os_region("syscall"):
            self.machine.advance(SYSCALL_CYCLES + VMA_OP_CYCLES)
            vma = process.address_space.map(addr, length, prot, flags, name)
        self.stats.add("sys.mmap")
        self._emit(
            "mmap",
            process.pid,
            start=vma.start,
            end=vma.end,
            writable=vma.writable,
            mem_type=vma.mem_type.value,
            name=vma.name,
        )
        return vma.start

    def sys_munmap(self, process: Process, addr: int, length: int) -> None:
        """Unmap a range: trims VMAs, frees frames, clears PTEs and TLB."""
        with self.machine.os_region("syscall"):
            self.machine.advance(SYSCALL_CYCLES)
            removed = process.address_space.unmap(addr, length)
            assert process.page_table is not None
            for start, end, vma in removed:
                if vma.mem_type is MemType.NVM:
                    # Batch reclamation metadata: every park record for
                    # the range is written, then fenced once, before
                    # any PTE below is cleared.
                    for vpn in range(start // PAGE_SIZE, end // PAGE_SIZE):
                        self.frame_release.prepare_release(process, vpn)
                    self.frame_release.release_barrier()
                for vpn in range(start // PAGE_SIZE, end // PAGE_SIZE):
                    self.machine.advance(UNMAP_PAGE_CYCLES)
                    pte = self.frame_release.release_page(process, vpn)
                    self.machine.tlb.invalidate(process.asid, vpn)
                    if pte is None:
                        continue
                    if vma.mem_type is MemType.NVM:
                        process.pending_nvm_ops.append(("unmap", vpn, 0))
        self.stats.add("sys.munmap")
        self._emit("munmap", process.pid, start=addr, length=length)

    def sys_mremap(
        self, process: Process, old_addr: int, old_length: int, new_length: int
    ) -> int:
        """Grow, shrink or move a mapping, relocating live pages.

        Shrinking trims the tail (frames freed).  Growing extends in
        place when the room exists, otherwise moves the VMA and
        re-points every live PTE at its existing frame (no copies, as
        on Linux).  Returns the (possibly new) start address.
        """
        with self.machine.os_region("syscall"):
            self.machine.advance(SYSCALL_CYCLES + VMA_OP_CYCLES)
            vma = process.address_space.find(old_addr)
            if vma is None or vma.start != old_addr or vma.length != old_length:
                raise FaultError(f"mremap: no exact VMA at {old_addr:#x}")
            assert process.page_table is not None
            if new_length == old_length:
                self.stats.add("sys.mremap")
                return old_addr
        if new_length < old_length:
            self.sys_munmap(
                process, old_addr + new_length, old_length - new_length
            )
            self.stats.add("sys.mremap")
            return old_addr
        # Grow: try in place.
        prot = PROT_READ | (PROT_WRITE if vma.writable else 0)
        flags = MAP_NVM if vma.mem_type is MemType.NVM else 0
        grow_at = old_addr + old_length
        with self.machine.os_region("syscall"):
            in_place = not process.address_space._overlaps(  # noqa: SLF001
                grow_at, old_addr + new_length
            )
        if in_place:
            self.sys_mmap(
                process, grow_at, new_length - old_length, prot, flags, vma.name
            )
            self.stats.add("sys.mremap")
            return old_addr
        # Move: map a fresh range, transplant live translations.
        new_addr = self.sys_mmap(
            process, None, new_length, prot, flags, vma.name
        )
        with self.machine.os_region("syscall"):
            old_vpn = old_addr // PAGE_SIZE
            new_vpn = new_addr // PAGE_SIZE
            if vma.mem_type is MemType.NVM:
                # Park the committed translations (if any) durably —
                # one fence for the whole range — before any old PTE
                # disappears.
                for offset in range(old_length // PAGE_SIZE):
                    pte = process.page_table.lookup(old_vpn + offset)
                    if pte is not None:
                        self.frame_release.note_remap(
                            process,
                            old_vpn + offset,
                            new_vpn + offset,
                            pte.pfn,
                            vma.mem_type,
                        )
                self.frame_release.release_barrier()
            moved = 0
            for offset in range(old_length // PAGE_SIZE):
                pte = process.page_table.lookup(old_vpn + offset)
                self.machine.tlb.invalidate(process.asid, old_vpn + offset)
                if pte is None:
                    continue
                process.page_table.unmap(old_vpn + offset)
                process.page_table.map(
                    new_vpn + offset, pte.pfn, writable=pte.writable
                )
                if vma.mem_type is MemType.NVM:
                    process.pending_nvm_ops.append(("unmap", old_vpn + offset, 0))
                    process.pending_nvm_ops.append(
                        ("map", new_vpn + offset, pte.pfn)
                    )
                moved += 1
            self.stats.add("sys.mremap_moved_pages", moved)
        # Retire the old layout without freeing the transplanted frames
        # (their PTEs are already gone).
        with self.machine.os_region("syscall"):
            process.address_space.unmap(old_addr, old_length)
        self.stats.add("sys.mremap")
        self._emit(
            "munmap", process.pid, start=old_addr, length=old_length
        )
        return new_addr

    def sys_mprotect(
        self, process: Process, addr: int, length: int, prot: int
    ) -> None:
        """Change protection; updates live PTEs and invalidates the TLB."""
        with self.machine.os_region("syscall"):
            self.machine.advance(SYSCALL_CYCLES + VMA_OP_CYCLES)
            affected = process.address_space.protect(addr, length, prot)
            assert process.page_table is not None
            for vma in affected:
                for vpn in vma.vpn_range():
                    if process.page_table.protect(vpn, vma.writable):
                        self.machine.tlb.invalidate(process.asid, vpn)
        self.stats.add("sys.mprotect")
        self._emit("mprotect", process.pid, start=addr, length=length, prot=prot)

    # ------------------------------------------------------------------
    # demand paging
    # ------------------------------------------------------------------

    def handle_page_fault(self, vaddr: int, is_write: bool) -> None:
        """Demand-page ``vaddr`` for the current process."""
        process = self.current
        if process is None:
            raise FaultError("page fault with no current process")
        with self.machine.os_region("fault"):
            self.machine.advance(FAULT_ENTRY_CYCLES)
            vma = process.address_space.find(vaddr)
            if vma is None:
                raise SegmentationFault(
                    f"pid {process.pid}: no VMA for {vaddr:#x}"
                )
            if is_write and not vma.writable:
                raise SegmentationFault(
                    f"pid {process.pid}: write to read-only {vaddr:#x}"
                )
            vpn = vaddr // PAGE_SIZE
            assert process.page_table is not None
            existing = process.page_table.lookup(vpn)
            if existing is not None:
                # Spurious fault (e.g. raced protection change): nothing
                # to allocate.
                self.stats.add("fault.spurious")
                return
            pfn = self._allocate_user_page(vma)
            process.page_table.map(vpn, pfn, writable=vma.writable)
            if vma.mem_type is MemType.NVM:
                process.pending_nvm_ops.append(("map", vpn, pfn))
            self.stats.add("fault.demand")
            self._emit(
                "fault_mapped",
                process.pid,
                vpn=vpn,
                pfn=pfn,
                mem_type=vma.mem_type.value,
            )

    def _allocate_user_page(self, vma: Vma) -> int:
        pfn = self.allocator_for(vma.mem_type).alloc()
        if self.config.charge_fault_zeroing:
            self.machine.bulk_lines(
                PAGE_SIZE // CACHE_LINE, vma.mem_type, is_write=True
            )
        # Zero-fill semantics always hold (pre-zeroed frame pool).
        self.machine.physmem.zero_page(pfn)
        return pfn

    # ------------------------------------------------------------------
    # crash
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power failure.  After this the kernel object is dead; build a
        new :class:`Kernel` over the same machine + NVM store and run
        recovery (see :mod:`repro.persist.recovery`)."""
        self.machine.power_fail()
        self.processes.clear()
        self.current = None
        self._listeners.clear()
        self.stats.add("kernel.crashes")
