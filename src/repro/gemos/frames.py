"""Physical page frame allocators.

One allocator per memory technology.  The NVM allocator persists its
allocation metadata ("we also modify the physical page allocation
mechanism in gemOS to persist the page allocation meta-data to ensure
correctness after crash and reboot scenarios", Section II-A): its free
bookkeeping is registered in the NVM object store, and every state
change charges an NVM metadata write on the machine.

The allocator hands out frames bump-pointer first, then from a LIFO of
freed frames, which keeps allocation O(1) and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.arch.machine import Machine
from repro.common.errors import OutOfMemoryError
from repro.common.stats import Stats
from repro.common.units import CACHE_LINE
from repro.mem.hybrid import MemType
from repro.mem.nvmstore import NvmObjectStore


@dataclass
class _AllocatorState:
    """Bookkeeping, separable so the NVM variant can live in the store."""

    next_free: int
    limit: int
    free_list: List[int] = field(default_factory=list)
    allocated: Set[int] = field(default_factory=set)


class FrameAllocator:
    """Allocates page frames within one technology's pfn range."""

    def __init__(
        self,
        mem_type: MemType,
        pfn_lo: int,
        pfn_hi: int,
        stats: Stats,
        *,
        machine: Optional[Machine] = None,
        nvm_store: Optional[NvmObjectStore] = None,
        store_key: Optional[str] = None,
    ) -> None:
        if pfn_hi <= pfn_lo:
            raise ValueError(f"empty pfn range [{pfn_lo}, {pfn_hi})")
        self.mem_type = mem_type
        self.stats = stats
        self._machine = machine
        self._persistent = nvm_store is not None
        if self._persistent:
            key = store_key or f"frame_allocator:{mem_type.value}"
            assert nvm_store is not None
            self._state = nvm_store.setdefault(
                key, _AllocatorState(next_free=pfn_lo, limit=pfn_hi)
            )
        else:
            self._state = _AllocatorState(next_free=pfn_lo, limit=pfn_hi)
        self._pfn_lo = pfn_lo
        self._pfn_hi = pfn_hi
        self._reclaim_guard: Optional[Callable[[int], bool]] = None

    def set_reclaim_guard(self, is_parked: Callable[[int], bool]) -> None:
        """Install the reclamation-epoch guard (persistence hook).

        A *parked* frame is one a committed checkpoint still names; it
        sits on the free list only logically — :meth:`alloc` must not
        hand it out, and :meth:`free` of it outside the reclamation API
        is a lifecycle bug.
        """
        self._reclaim_guard = is_parked

    def _is_parked(self, pfn: int) -> bool:
        return self._reclaim_guard is not None and self._reclaim_guard(pfn)

    def _charge_metadata_write(self) -> None:
        """One NVM line write keeping allocation metadata crash-correct."""
        if self._persistent and self._machine is not None:
            self._machine.bulk_lines(1, MemType.NVM, is_write=True)
            self.stats.add("alloc.nvm_metadata_writes")

    def alloc(self) -> int:
        """Allocate one frame; raises :class:`OutOfMemoryError` when full.

        Parked frames (deferred reclamation — still named by a committed
        checkpoint) are refused: the LIFO scan skips them, bumping a
        refusal counter, and falls back to the bump pointer.
        """
        state = self._state
        pfn: Optional[int] = None
        index = len(state.free_list) - 1
        while index >= 0:
            candidate = state.free_list[index]
            if not self._is_parked(candidate):
                pfn = candidate
                del state.free_list[index]
                break
            self.stats.add(f"alloc.{self.mem_type.value}.parked_refusals")
            index -= 1
        if pfn is None:
            if state.next_free < state.limit:
                pfn = state.next_free
                state.next_free += 1
            else:
                raise OutOfMemoryError(
                    f"{self.mem_type.value} allocator exhausted "
                    f"({self._pfn_hi - self._pfn_lo} frames)"
                )
        state.allocated.add(pfn)
        self._charge_metadata_write()
        self.stats.add(f"alloc.{self.mem_type.value}.allocs")
        return pfn

    def free(self, pfn: int) -> None:
        """Return a frame; freeing an unallocated frame is an error, as
        is freeing a parked frame outside the reclamation API (the
        reclaimer unparks before it frees)."""
        state = self._state
        if pfn not in state.allocated:
            raise ValueError(f"double free or foreign pfn {pfn:#x}")
        if self._is_parked(pfn):
            raise ValueError(
                f"pfn {pfn:#x} is parked for deferred reclamation; "
                "frames drain only when the epoch retires"
            )
        state.allocated.remove(pfn)
        state.free_list.append(pfn)
        self._charge_metadata_write()
        self.stats.add(f"alloc.{self.mem_type.value}.frees")

    def is_allocated(self, pfn: int) -> bool:
        return pfn in self._state.allocated

    @property
    def allocated_count(self) -> int:
        return len(self._state.allocated)

    @property
    def free_count(self) -> int:
        state = self._state
        return (state.limit - state.next_free) + len(state.free_list)

    def reset_volatile(self) -> None:
        """Forget everything — valid only for the volatile (DRAM) allocator,
        whose frames are meaningless after a power failure anyway."""
        if self._persistent:
            raise ValueError("persistent allocator metadata must not be reset")
        self._state = _AllocatorState(next_free=self._pfn_lo, limit=self._pfn_hi)


#: Bytes of allocator metadata assumed per frame operation (one line).
ALLOC_METADATA_BYTES = CACHE_LINE
