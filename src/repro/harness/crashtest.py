"""``python -m repro.harness crashtest`` — the crash-matrix campaign.

Runs the nine standard fault-injection scenarios
(:func:`repro.faults.scenarios.standard_scenarios`) through the
:class:`~repro.faults.explorer.CrashExplorer`: every durable NVM write
of every scenario becomes a kill point, each kill is followed by a
reboot-and-recover cycle, and every recovery is checked against the
golden snapshots and walk-consistency invariants.

``--smoke`` explores a systematic sample of each scenario's points
(every stride-th point) instead of all of them — the CI configuration.
Point *counting* is always exhaustive, so the ≥400-distinct-points
acceptance gate holds in both modes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.exec import SweepEngine
from repro.faults.explorer import CrashExplorer, ExplorationReport
from repro.faults.scenarios import standard_scenarios
from repro.harness.report import format_table

#: The acceptance floor: the nine scenarios must expose at least this
#: many distinct crash points between them.
MIN_TOTAL_POINTS = 400

#: Target number of explored points per scenario in smoke mode.
SMOKE_POINTS_PER_SCENARIO = 12


def _smoke_sample(total: int) -> List[int]:
    """Every stride-th point, always including the first and last."""
    if total <= SMOKE_POINTS_PER_SCENARIO:
        return list(range(total))
    stride = max(1, total // SMOKE_POINTS_PER_SCENARIO)
    points = list(range(0, total, stride))
    if points[-1] != total - 1:
        points.append(total - 1)
    return points


def crashtest_main(
    smoke: bool = False,
    scenario_names: Optional[Iterable[str]] = None,
    engine: Optional[SweepEngine] = None,
) -> int:
    """Run the campaign; returns a process exit code.

    With an ``engine`` the per-point kill-and-recover cycles fan out
    across worker processes in index batches (and finished batches are
    served from the result cache on re-runs); the reports — ordering
    included — are identical to a serial campaign.
    """
    wanted = set(scenario_names) if scenario_names else None
    scenarios = [
        s for s in standard_scenarios() if wanted is None or s.name in wanted
    ]
    if wanted is not None and len(scenarios) != len(wanted):
        known = {s.name for s in standard_scenarios()}
        print(f"unknown scenario(s): {sorted(wanted - known)}")
        return 2
    reports: List[ExplorationReport] = []
    for scenario in scenarios:
        explorer = CrashExplorer(scenario)
        if smoke:
            total, _labels = explorer.count_points()
            report = explorer.explore(
                points=_smoke_sample(total), engine=engine
            )
        else:
            report = explorer.explore(engine=engine)
        reports.append(report)

    headers = ["scenario", "scheme", "points", "explored", "recovered", "violations"]
    rows = [
        [r.scenario, r.scheme, r.total_points, r.explored, r.recoveries,
         len(r.violations)]
        for r in reports
    ]
    print("== crashtest (crash-point fault injection) ==")
    print(format_table(headers, rows))
    total_points = sum(r.total_points for r in reports)
    violations = [v for r in reports for v in r.violations]
    print(
        f"total: {total_points} crash points, "
        f"{sum(r.explored for r in reports)} explored, "
        f"{len(violations)} invariant violations"
    )
    for violation in violations:
        print(f"  !! {violation}")
    ok = not violations
    if wanted is None and total_points < MIN_TOTAL_POINTS:
        print(
            f"  !! only {total_points} crash points enumerated "
            f"(acceptance floor is {MIN_TOTAL_POINTS})"
        )
        ok = False
    return 0 if ok else 1
