"""Process-persistence validation (paper Section V-A).

"We have validated the process persistence feature of Kindle by
crashing and restarting the application multiple times."  This module
is that campaign as a reusable driver: run a workload under periodic
checkpointing, crash at pseudo-random points, recover, check
invariants, resume — for as many cycles as requested — under both
page-table schemes.

Checked invariants per crash cycle:

1. the process recovers iff at least one checkpoint committed;
2. the recovered replay position is between 0 and the crash position;
3. the recovered VMA layout equals the last consistent snapshot;
4. a sentinel value written before the last checkpoint reads back;
5. the workload then runs to completion from the recovered position;
6. NVM frame accounting stays exact (no leaks, no double bookings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import KindleError
from repro.common.rng import derive_rng
from repro.common.units import PAGE_SIZE
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.platform import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.workloads import generate_ycsb


@dataclass
class ValidationReport:
    """Outcome of one validation campaign."""

    scheme: str
    cycles: int = 0
    recoveries: int = 0
    total_rollback_ops: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def validate_persistence(
    scheme: str = "rebuild",
    crash_cycles: int = 5,
    total_ops: int = 6_000,
    checkpoint_interval_ms: float = 0.05,
    seed: int = 2024,
) -> ValidationReport:
    """Run one crash/restart validation campaign; returns the report."""
    if crash_cycles < 1:
        raise KindleError("need at least one crash cycle")
    rng = derive_rng(seed, f"validate:{scheme}")
    report = ValidationReport(scheme=scheme)
    image = generate_ycsb(total_ops=total_ops, records=2048)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)

    system = HybridSystem(
        scheme=scheme, checkpoint_interval_ms=checkpoint_interval_ms
    )
    system.boot()
    process = system.spawn(image.name)
    program.install(system.kernel, process)
    sentinel_addr = system.kernel.sys_mmap(
        process, None, PAGE_SIZE, PROT_READ | PROT_WRITE, MAP_NVM, name="sentinel"
    )

    for cycle in range(crash_cycles):
        report.cycles += 1
        stamp = bytes([cycle + 1]) * 8
        system.machine.store(sentinel_addr, stamp)
        system.checkpoint()  # the stamp is now part of a consistent state
        layout_at_checkpoint = process.address_space.snapshot()

        # Run some more, then pull the plug mid-flight.
        burst = rng.randrange(200, total_ops // 2)
        program.run(system.kernel, process, max_ops=burst)
        if program.is_finished(process):
            process.registers["pc"] = 0  # wrap: keep crashing mid-run
        pc_at_crash = process.registers["pc"]
        system.crash()

        recovered = system.boot()
        if len(recovered) != 1:
            report.failures.append(f"cycle {cycle}: expected 1 process")
            break
        process = recovered[0]
        report.recoveries += 1
        system.kernel.switch_to(process)

        pc = process.registers.get("pc", 0)
        if not 0 <= pc <= max(pc_at_crash, total_ops):
            report.failures.append(f"cycle {cycle}: bad recovered pc {pc}")
        report.total_rollback_ops += max(0, pc_at_crash - pc)

        if process.address_space.snapshot() != layout_at_checkpoint:
            report.failures.append(f"cycle {cycle}: VMA layout diverged")

        data = system.machine.load(sentinel_addr, 8)
        if data != stamp:
            report.failures.append(
                f"cycle {cycle}: sentinel lost ({data!r} != {stamp!r})"
            )

        alloc = system.kernel.nvm_alloc
        referenced = {
            pte.pfn
            for _vpn, pte in process.page_table.iter_leaves()
            if system.machine.layout.mem_type_of_pfn(pte.pfn).value == "nvm"
        }
        if any(not alloc.is_allocated(pfn) for pfn in referenced):
            report.failures.append(f"cycle {cycle}: mapped frame not booked")

    # Finally: the workload must run to completion.
    program.run(system.kernel, process)
    if not program.is_finished(process):
        report.failures.append("workload did not finish after recovery")
    system.shutdown()
    return report
