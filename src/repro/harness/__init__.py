"""Experiment harness: one driver per paper table/figure.

Every driver returns a plain-dict result structure and has a matching
formatter in :mod:`repro.harness.report`; ``python -m repro.harness
<experiment>`` runs one from the command line.  The benchmarks under
``benchmarks/`` call the same drivers, so pytest-benchmark runs and the
CLI always agree.
"""

from repro.harness.experiments import (
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    run_table2,
    run_table3,
    run_table4,
    run_table5_table6,
)
from repro.harness.compare import compare_results
from repro.harness.fig1_data import FIG1_PUBLICATIONS
from repro.harness.plots import render_figure
from repro.harness.report import format_table
from repro.harness.validate import validate_persistence

__all__ = [
    "run_fig4a",
    "run_fig4b",
    "run_fig5",
    "run_fig6",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5_table6",
    "FIG1_PUBLICATIONS",
    "format_table",
    "render_figure",
    "compare_results",
    "validate_persistence",
]
