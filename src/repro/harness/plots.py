"""ASCII bar plots for figure-like experiment results.

The paper's artifact "generate[s] result plots in respective output
folders for easy comparison with expected results"; this renderer is
the terminal-friendly equivalent, turning the harness's row dicts into
grouped horizontal bar charts (one bar per row, grouped by a label
column, scaled to the widest value).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Width of the bar area in characters.
BAR_WIDTH = 42
BAR_CHAR = "#"


def render_bars(
    rows: Sequence[Dict],
    value_key: str,
    label_keys: Sequence[str],
    group_key: Optional[str] = None,
    title: str = "",
) -> str:
    """Render one horizontal bar per row.

    ``label_keys`` name the columns concatenated into each bar's
    label; ``group_key`` (e.g. the benchmark name) inserts a blank
    line between groups, mirroring the paper's grouped bar figures.
    """
    if not rows:
        return f"{title}\n(no data)"
    values = [float(row[value_key]) for row in rows]
    peak = max(values) or 1.0
    labels = [
        " ".join(str(row[key]) for key in label_keys) for row in rows
    ]
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    previous_group = object()
    for row, label, value in zip(rows, labels, values):
        if group_key is not None:
            group = row[group_key]
            if group != previous_group and previous_group is not object:
                if previous_group is not object and lines:
                    lines.append("")
            previous_group = group
        bar = BAR_CHAR * max(1, round(value / peak * BAR_WIDTH))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def render_figure(result: Dict) -> str:
    """Render a harness result dict as the matching paper figure."""
    experiment = result.get("experiment", "")
    rows = result["rows"]
    if experiment == "fig4a":
        return render_bars(
            rows, "overhead_x", ["size_mb"], title="Fig. 4a: rebuild/persistent overhead"
        )
    if experiment == "fig4b":
        return render_bars(
            rows, "ratio", ["stride"], title="Fig. 4b: persistent/rebuild ratio"
        )
    if experiment == "fig5":
        return render_bars(
            rows,
            "normalized_time",
            ["benchmark", "interval_ms"],
            group_key="benchmark",
            title="Fig. 5: SSP normalized execution time",
        )
    if experiment in ("fig6", "table5+table6"):
        return render_bars(
            rows,
            "normalized_time",
            ["benchmark", "threshold"],
            group_key="benchmark",
            title="Fig. 6: HSCC normalized execution time",
        )
    raise ValueError(f"no figure renderer for experiment {experiment!r}")
