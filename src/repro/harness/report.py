"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table (gem5-output-parser style)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(col.ljust(w) for col, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
