"""Fleet traffic harness: ``python -m repro.harness traffic``.

Generates a seeded client population (:mod:`repro.workloads.traffic`),
provisions it across several gemOS processes, replays the merged
schedule through the batch engine (or the scalar loop with
``--scalar``), and records the run — including the cross-process
interference attribution the paper never measured — as a ``traffic``
section in ``BENCH_machine.json``.

Determinism is part of the contract: by default every invocation
replays the schedule **twice** on fresh systems and fails loudly unless
the two runs produce byte-identical stats dumps and final clocks.  The
report carries ``stats_sha256`` so two separate invocations (e.g. the
CI cold and warm runs) can also be compared byte-for-byte — and when
the out file already records a run of the same population config, the
new run must match its sha256/final clock or the harness raises (the
fidelity gate that keeps the batch engine's vectorized miss path honest
against the recorded scalar-equivalent history).

Generation itself runs through the sweep engine when ``-j``/caching is
requested: client ranges shard into content-addressed cells, so a
re-run with an unchanged population config comes straight from cache.
"""

from __future__ import annotations

import json
import time
from hashlib import sha256
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.arch.interference import InterferenceMonitor, interference_report
from repro.exec import SweepEngine
from repro.harness.bench import SCHEMA, host_metadata
from repro.platform import HybridSystem
from repro.workloads.traffic import (
    ClientPopulation,
    PopulationConfig,
    TrafficScheduler,
)

#: Full-run population: >= 10M ops across many processes (the ROADMAP
#: item 1 target).  39_063 * 256 = 10_000_128 ops.
FULL_CLIENTS = 256
FULL_PROCESSES = 8
FULL_TOTAL_OPS = 10_000_000

#: Smoke population for CI: same structure, ~48k ops.
SMOKE_CLIENTS = 24
SMOKE_PROCESSES = 4
SMOKE_TOTAL_OPS = 48_000


def population_config(
    smoke: bool = False,
    clients: Optional[int] = None,
    processes: Optional[int] = None,
    total_ops: Optional[int] = None,
    seed: int = 2024,
    arrival: str = "poisson",
) -> PopulationConfig:
    """Resolve CLI knobs into a :class:`PopulationConfig`."""
    clients = clients or (SMOKE_CLIENTS if smoke else FULL_CLIENTS)
    processes = processes or (SMOKE_PROCESSES if smoke else FULL_PROCESSES)
    total = total_ops or (SMOKE_TOTAL_OPS if smoke else FULL_TOTAL_OPS)
    return PopulationConfig(
        seed=seed,
        clients=clients,
        processes=processes,
        ops_per_client=-(-total // clients),
        arrival=arrival,
    )


def _one_run(
    schedule, batch: bool
) -> Tuple[HybridSystem, object, float]:
    """Fresh system, provision, replay; returns (system, result, secs)."""
    system = HybridSystem(persistence=False)
    system.boot()
    system.machine.install_interference_monitor(InterferenceMonitor())
    scheduler = TrafficScheduler(system, schedule)
    scheduler.provision()
    start = time.perf_counter()  # repro: allow-nondet(harness measures wall-clock by design)
    result = scheduler.run(batch=batch)
    elapsed = time.perf_counter() - start  # repro: allow-nondet(harness measures wall-clock by design)
    return system, result, elapsed


def run_traffic(
    config: PopulationConfig,
    batch: bool = True,
    engine: Optional[SweepEngine] = None,
    verify: bool = True,
    trace_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Generate, replay and summarize one traffic run.

    With ``verify`` (the default) the schedule replays twice on fresh
    systems; a divergent stats dump or final clock raises — the same
    nondeterminism-canary posture as the bench harness, applied to the
    whole multi-process OS + machine stack.
    """
    population = ClientPopulation(config)
    start = time.perf_counter()  # repro: allow-nondet(harness measures wall-clock by design)
    schedule = population.generate(engine=engine)
    generation_s = time.perf_counter() - start  # repro: allow-nondet(harness measures wall-clock by design)
    container_paths = (
        schedule.save_containers(trace_dir) if trace_dir else None
    )
    system, result, elapsed = _one_run(schedule, batch)
    dump = system.stats.dump()
    final_clock = system.machine.clock
    if verify:
        second_system, _, _ = _one_run(schedule, batch)
        if (
            second_system.stats.dump() != dump
            or second_system.machine.clock != final_clock
        ):
            raise RuntimeError(
                "traffic replay is nondeterministic: two runs of the same "
                "schedule diverged (stats dump or final clock)"
            )
    per_process = {
        name.rsplit(".", 1)[-1]: value
        for name, value in sorted(
            system.stats.with_prefix("traffic.ops.p").items()
        )
    }
    section: Dict[str, object] = {
        "population": config.to_dict(),
        "summary": population.summary(),
        "mode": result.mode,
        "ops": result.ops,
        "elapsed_s": round(elapsed, 4),
        "ops_per_sec": round(result.ops / elapsed, 1) if elapsed > 0 else 0.0,
        "generation_s": round(generation_s, 4),
        "final_clock": final_clock,
        "stats_sha256": sha256(dump.encode("utf-8")).hexdigest(),
        "determinism": {"runs": 2 if verify else 1, "verified": verify},
        "context_switches": result.context_switches,
        "op_split": {
            "batched": result.batched_ops,
            "scalar": result.scalar_ops,
        },
        "per_process_ops": per_process,
        "interference": interference_report(system.stats),
    }
    if engine is not None:
        section["generation_sweep"] = engine.stats()
    if container_paths is not None:
        section["containers"] = {
            f"p{index}": str(path)
            for index, path in sorted(container_paths.items())
        }
    return section


def _check_recorded_traffic(
    recorded: Optional[Dict[str, object]], section: Dict[str, object]
) -> None:
    """Fidelity gate against the trajectory file's recorded run.

    When the out file already carries a ``traffic`` section for the
    *same* population config, the new run must reproduce its stats
    sha256 and final clock byte-for-byte — regardless of which engine
    (batch or ``--scalar``) produced either run.  This is what makes
    the vectorized miss path safe to wire in by default: a kernel that
    drifts from the scalar semantics trips this gate on the first
    re-run, not after the trajectory file has been silently poisoned.
    A config change is a legitimate re-record and skips the check.
    """
    if not isinstance(recorded, dict):
        return
    if recorded.get("population") != section["population"]:
        return
    mismatches = [
        f"{field}: recorded {recorded.get(field)!r} != new {section[field]!r}"
        for field in ("stats_sha256", "final_clock")
        if recorded.get(field) != section[field]
    ]
    if mismatches:
        raise RuntimeError(
            "traffic run diverged from the recorded section for the same "
            "population config (replay fidelity regression): "
            + "; ".join(mismatches)
        )


def traffic_main(
    out_path: str,
    smoke: bool = False,
    engine: Optional[SweepEngine] = None,
    clients: Optional[int] = None,
    processes: Optional[int] = None,
    total_ops: Optional[int] = None,
    seed: int = 2024,
    arrival: str = "poisson",
    scalar: bool = False,
    trace_dir: Optional[str] = None,
    verify: bool = True,
) -> int:
    """CLI entry: run, print a summary, merge into the trajectory file."""
    config = population_config(
        smoke=smoke,
        clients=clients,
        processes=processes,
        total_ops=total_ops,
        seed=seed,
        arrival=arrival,
    )
    section = run_traffic(
        config,
        batch=not scalar,
        engine=engine,
        verify=verify,
        trace_dir=trace_dir,
    )
    section["generated_by"] = "python -m repro.harness traffic" + (
        " --smoke" if smoke else ""
    )
    interference = section["interference"]
    print(
        f"== traffic: {section['ops']:,} ops, {config.clients} clients on "
        f"{config.processes} processes ({section['mode']} mode) =="
    )
    print(
        f"  {section['ops_per_sec']:,.0f} ops/s  "
        f"[{section['elapsed_s']:.2f}s replay, "
        f"{section['generation_s']:.2f}s generation]  "
        f"final clock {section['final_clock']:,}"
    )
    print(
        f"  context switches {section['context_switches']:,}; op split "
        f"{section['op_split']['batched']:,} batched / "
        f"{section['op_split']['scalar']:,} scalar"
    )
    for kind, leaf in (
        ("llc", interference["llc"]),
        ("tlb", interference["tlb"]),
        ("row.dram", interference["row"]["dram"]),
        ("row.nvm", interference["row"]["nvm"]),
    ):
        print(
            f"  interference.{kind:<8} self {leaf['self']:>10,}  "
            f"cross {leaf['cross']:>10,}  ({len(leaf['pairs'])} pairs)"
        )
    if section["determinism"]["verified"]:
        print(
            f"  determinism: 2 runs byte-identical "
            f"(stats sha256 {section['stats_sha256'][:16]}…)"
        )
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    report: Dict[str, object] = {}
    if out.exists():
        try:
            report = json.loads(out.read_text(encoding="utf-8"))
        except ValueError:
            report = {}
        if not isinstance(report, dict):
            report = {}
    _check_recorded_traffic(report.get("traffic"), section)
    report.setdefault(
        "unit", "simulated memory operations per wall-clock second"
    )
    report.setdefault("host", host_metadata())
    report["schema"] = SCHEMA
    report["traffic"] = section
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0
