"""Replay-throughput benchmark: ``python -m repro.harness bench``.

The paper experiments replay 60-200k-operation traces across many
checkpoint/migration intervals, so simulator throughput (wall-clock
ops/sec of :meth:`Machine.access`) bounds experiment coverage.  This
harness replays calibrated synthetic traces through a freshly built
machine per scenario and records ops/sec so every PR leaves a perf
trajectory behind (``BENCH_machine.json``).

Scenarios
---------

``l1_resident``
    16 KiB working set, every access hits the L1 — the pure hot-path
    cost of ``access`` + ``translate`` + ``phys_line_access``.
``llc_resident``
    1 MiB working set: misses L1/L2, hits the LLC.
``nvm_miss_heavy``
    8 MiB working set in NVM, strided to defeat the LLC; exercises the
    controller, open-row model and NVM write buffer.
``fault_heavy``
    every op touches a brand-new page: TLB miss, failed walk, demand
    fault, re-walk, TLB fill/eviction.
``l1_extensions``
    the L1-resident trace with a no-op hardware extension attached, so
    the hook-dispatch overhead is tracked separately.
``traffic``
    a seeded multi-client traffic population (8 clients' interleaved
    streams, :mod:`repro.workloads.traffic`) replayed against one booted
    gemOS process with the interference monitor installed — prices the
    fault path, the monitor hooks and the mixed DRAM/NVM client mix
    together.

Output schema (``BENCH_machine.json``)
--------------------------------------

``schema``
    ``"bench_machine/v5"`` (v2 added ``host`` and ``sweep``; v3 added
    the optional ``batch`` section; v4 added the ``traffic`` scenario
    and the ``traffic`` section written by ``python -m repro.harness
    traffic`` — population config, interference attribution, op split,
    ``stats_sha256`` and determinism verdict for a fleet run; v5: the
    batch engine gained the vectorized miss-run kernel, so ``batch``
    rates on miss-heavy scenarios measure the inlined LLC/row-buffer/
    controller path and the batched op fraction covers TLB-thrashing
    traces premapped with a pure walker).
``unit``
    always ``"simulated memory operations per wall-clock second"``.
``host``
    cpu count, python version and platform of the machine that produced
    the numbers — cross-machine comparisons are meaningless without it.
``baseline``
    the pre-optimisation (PR 1 seed) measurement this machine's numbers
    are compared against: ``{"label": ..., "ops_per_sec": {scenario: float}}``.
``current``
    this run: ``ops_per_sec``, ``elapsed_s``, ``ops`` and the simulated
    ``final_clock`` per scenario (the clock doubles as a fidelity
    anchor: optimisations must not change it).
``speedup_vs_baseline``
    ``current/baseline`` per scenario present in both.
``batch``
    present when the run was invoked with ``--batch``: every scenario
    replayed a second time through :class:`repro.replay.BatchReplayer`
    (trace packing happens outside the timed window).  Carries the
    batch-mode ``ops_per_sec``/``elapsed_s``, the batched/scalar op
    split, ``speedup_vs_scalar``, and ``final_clock`` — which the
    harness asserts equal to the scalar run's clock before writing the
    report (cheap first line of the golden-equivalence defence).
``sweep``
    the sweep-engine measurement (:func:`measure_sweep`): wall-clock of
    a representative experiment sweep run serially, in parallel at
    ``workers`` jobs, and again warm from the result cache, plus the
    derived speedup / warm-over-cold ratio / cache-hit rate.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.common.config import MachineConfig, small_machine_config
from repro.common.rng import derive_rng
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.exec import SweepEngine, sweep
from repro.harness.compare import compute_speedups
from repro.mem.hybrid import MemType
from repro.prep.trace import PackedTrace
from repro.replay import BatchReplayer

#: One trace record: (vaddr, size, is_write).
Op = Tuple[int, int, bool]

#: v6 adds the ``plan`` section (``python -m repro.harness plan``:
#: blueprint ranking over a forecast/trace workload).
SCHEMA = "bench_machine/v6"

#: Seed-tree throughput measured before the PR 1 hot-path overhaul
#: (same scenarios, same op counts, best of 3 on the reference runner).
#: This is the denominator of ``speedup_vs_baseline`` — update it only
#: when re-baselining on purpose.
SEED_BASELINE = {
    "label": "seed tree (pre hot-path overhaul, PR 1), best of 3",
    "ops_per_sec": {
        "l1_resident": 539_420.4,
        "llc_resident": 92_814.7,
        "nvm_miss_heavy": 67_869.4,
        "fault_heavy": 63_616.2,
        "l1_extensions": 360_124.0,
        "traffic": 42_289.7,
    },
}

#: Default replayed ops per scenario (full run / --smoke run).
DEFAULT_OPS = {
    "l1_resident": 200_000,
    "llc_resident": 120_000,
    "nvm_miss_heavy": 60_000,
    "fault_heavy": 30_000,
    "l1_extensions": 120_000,
    "traffic": 60_000,
}
SMOKE_OPS = {name: 2_000 for name in DEFAULT_OPS}


class _NopExtension(HardwareExtension):
    """Attached by ``l1_extensions`` to price the hook-dispatch path."""


def _premapped_machine(
    config: Optional[MachineConfig] = None,
    nvm: bool = False,
    npages: int = 0,
) -> Tuple[Machine, Dict[int, Tuple[int, bool]]]:
    """A machine with ``npages`` identity-mapped pages and no fault path."""
    machine = Machine(config or small_machine_config())
    if nvm:
        base_pfn, _ = machine.layout.pfn_range(MemType.NVM)
    else:
        base_pfn, _ = machine.layout.pfn_range(MemType.DRAM)
    mapping: Dict[int, Tuple[int, bool]] = {
        vpn: (base_pfn + vpn, True) for vpn in range(npages)
    }

    def walker(_machine: Machine, vpn: int) -> Optional[Tuple[int, bool]]:
        return mapping.get(vpn)

    # The premapped walker is a dict lookup: side-effect-free, zero
    # cycles — declare it pure so the batch miss-run kernel may walk
    # inline on the TLB-thrashing scenarios.
    machine.install_context(1, walker, None, pure_walker=True)
    return machine, mapping


def _mixed_rw_trace(
    name: str, ops: int, nbytes: int, stride: int, write_every: int
) -> List[Op]:
    """Strided sweep over ``nbytes`` with every ``write_every``-th op a write."""
    rng = derive_rng(17, f"bench.{name}")
    lines = nbytes // CACHE_LINE
    trace: List[Op] = []
    line = 0
    for i in range(ops):
        line = (line + stride) % lines
        vaddr = line * CACHE_LINE + rng.randrange(0, CACHE_LINE - 8)
        trace.append((vaddr, 8, i % write_every == 0))
    return trace


def _build_l1_resident(ops: int, extensions: bool = False):
    nbytes = 16 * 1024
    machine, _ = _premapped_machine(npages=nbytes // PAGE_SIZE)
    if extensions:
        machine.attach_extension(_NopExtension())
    return machine, _mixed_rw_trace("l1", ops, nbytes, stride=1, write_every=4)


def _build_llc_resident(ops: int):
    nbytes = 1024 * 1024
    machine, _ = _premapped_machine(npages=nbytes // PAGE_SIZE)
    # Stride of 131 lines (coprime with the set counts) sweeps the whole
    # working set while defeating the L1/L2 but staying LLC-resident.
    return machine, _mixed_rw_trace("llc", ops, nbytes, stride=131, write_every=4)


def _build_nvm_miss_heavy(ops: int):
    nbytes = 8 * 1024 * 1024
    machine, _ = _premapped_machine(nvm=True, npages=nbytes // PAGE_SIZE)
    # A large coprime stride defeats the 2 MiB LLC: most ops miss all
    # the way to the NVM devices; 1 in 3 ops writes into the buffer.
    return machine, _mixed_rw_trace("nvm", ops, nbytes, stride=4099, write_every=3)


def _build_traffic(ops: int):
    """A small traffic population against one booted gemOS process.

    Unlike the premapped scenarios this boots the full platform: real
    page faults, the hybrid DRAM/NVM client mix and the interference
    monitor's hooks are all on the timed path.  Single-process so the
    replay loop (not the context-switch machinery) dominates.
    """
    from repro.arch.interference import InterferenceMonitor
    from repro.platform import HybridSystem
    from repro.workloads.traffic import (
        ClientPopulation,
        PopulationConfig,
        TrafficScheduler,
    )

    clients = 8
    config = PopulationConfig(
        seed=41,
        clients=clients,
        processes=1,
        ops_per_client=-(-ops // clients),
        arrival="poisson",
        period=1 << 20,
    )
    schedule = ClientPopulation(config).generate()
    system = HybridSystem(config=small_machine_config(), persistence=False)
    system.boot()
    system.machine.install_interference_monitor(InterferenceMonitor())
    scheduler = TrafficScheduler(system, schedule)
    scheduler.provision()
    system.kernel.switch_to(scheduler.processes[0])
    trace: List[Op] = [
        (int(vaddr), int(size), bool(write))
        for vaddr, size, write in zip(
            schedule.addr[:ops], schedule.size[:ops], schedule.write[:ops]
        )
    ]
    return system.machine, trace


def _build_fault_heavy(ops: int):
    machine = Machine(small_machine_config())
    npages = machine.layout.config.dram_bytes // PAGE_SIZE
    mapping: Dict[int, Tuple[int, bool]] = {}

    def walker(_machine: Machine, vpn: int) -> Optional[Tuple[int, bool]]:
        return mapping.get(vpn)

    def fault_handler(vaddr: int, _is_write: bool) -> None:
        vpn = vaddr // PAGE_SIZE
        mapping[vpn] = (vpn % npages, True)

    machine.install_context(1, walker, fault_handler)
    rng = derive_rng(17, "bench.fault")
    trace: List[Op] = [
        (vpn * PAGE_SIZE + rng.randrange(0, PAGE_SIZE - 8), 8, vpn % 2 == 0)
        for vpn in range(ops)
    ]
    return machine, trace


#: scenario name -> builder(ops) -> (machine, trace).
SCENARIOS: Dict[str, Callable] = {
    "l1_resident": _build_l1_resident,
    "llc_resident": _build_llc_resident,
    "nvm_miss_heavy": _build_nvm_miss_heavy,
    "fault_heavy": _build_fault_heavy,
    "l1_extensions": lambda ops: _build_l1_resident(ops, extensions=True),
    "traffic": _build_traffic,
}


def _replay(machine: Machine, trace: List[Op]) -> float:
    """Replay ``trace`` and return elapsed wall-clock seconds."""
    access = machine.access
    start = time.perf_counter()  # repro: allow-nondet(bench measures wall-clock by design)
    for vaddr, size, is_write in trace:
        access(vaddr, size, is_write)
    return time.perf_counter() - start  # repro: allow-nondet(bench measures wall-clock by design)


def _replay_batched(
    machine: Machine, packed: PackedTrace
) -> Tuple[float, BatchReplayer]:
    """Replay a pre-packed trace in batch mode; returns (elapsed, replayer).

    The caller packs the trace outside the timed window: packing is a
    one-time preparation cost (and on-disk traces load already packed),
    not part of replay throughput.
    """
    replayer = BatchReplayer(machine)
    start = time.perf_counter()  # repro: allow-nondet(bench measures wall-clock by design)
    replayer.replay(packed)
    elapsed = time.perf_counter() - start  # repro: allow-nondet(bench measures wall-clock by design)
    return elapsed, replayer


def run_scenario(
    name: str, ops: int, repeats: int = 3, batch: bool = False
) -> Dict[str, float]:
    """Run one scenario ``repeats`` times on fresh machines; keep the best.

    A fresh machine per repeat keeps cache/TLB warm-up identical across
    repeats, so the best run measures interpreter speed, not state —
    and it also means every repeat must end on the *same* simulated
    clock.  A divergent clock is a nondeterminism canary (scenario
    builder leaking state, or replay touching wall-clock), so it fails
    loudly here rather than poisoning the trajectory file.  All
    reported numbers (``elapsed_s`` and ``ops_per_sec``) come from the
    single best repeat.
    """
    builder = SCENARIOS[name]
    best = float("inf")
    final_clock: Optional[int] = None
    batched_ops = scalar_ops = 0
    for repeat in range(max(1, repeats)):
        machine, trace = builder(ops)
        if batch:
            packed = PackedTrace.from_ops(trace)
            elapsed, replayer = _replay_batched(machine, packed)
            batched_ops = replayer.batched_ops
            scalar_ops = replayer.scalar_ops
        else:
            elapsed = _replay(machine, trace)
        if final_clock is None:
            final_clock = machine.clock
        elif machine.clock != final_clock:
            raise RuntimeError(
                f"bench[{name}]: repeat {repeat} ended at clock "
                f"{machine.clock}, previous repeats at {final_clock} — "
                "scenario replay is nondeterministic"
            )
        best = min(best, elapsed)
    result = {
        "ops": ops,
        "elapsed_s": best,
        "ops_per_sec": ops / best if best > 0 else float("inf"),
        "final_clock": final_clock,
    }
    if batch:
        result["batched_ops"] = batched_ops
        result["scalar_ops"] = scalar_ops
    return result


def bench_cell(
    name: str, ops: int, repeats: int = 3, batch: bool = False
) -> Dict[str, float]:
    """Sweep-engine cell: one timed scenario (never cached — timings
    depend on the machine's wall-clock, not just code + kwargs)."""
    return run_scenario(name, ops, repeats=repeats, batch=batch)


def host_metadata() -> Dict[str, object]:
    """Who produced these numbers — without this, cross-machine
    comparisons of ops/sec (or sweep speedups) are meaningless."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


def run_bench(
    smoke: bool = False,
    repeats: int = 3,
    scenarios: Optional[List[str]] = None,
    engine: Optional[SweepEngine] = None,
    batch: bool = False,
) -> Dict[str, object]:
    """Run all (or the selected) scenarios and assemble the report.

    With an ``engine``, scenarios dispatch as (uncacheable) sweep cells.
    Note that timing cells contend for cores when run concurrently —
    parallel bench runs finish sooner but report lower ops/sec; leave
    the engine serial (the default) for trajectory-quality numbers.

    With ``batch``, every scenario additionally replays through the
    vectorized batch engine and the report gains a ``batch`` section;
    the scalar numbers are measured exactly as before, so batch runs
    remain comparable with the existing trajectory.
    """
    budgets = SMOKE_OPS if smoke else DEFAULT_OPS
    names = scenarios or list(SCENARIOS)
    cells = [
        {
            "name": name,
            "ops": budgets[name],
            "repeats": 1 if smoke else repeats,
        }
        for name in names
    ]
    labels = [f"bench[{name}]" for name in names]
    if batch:
        cells += [dict(cell, batch=True) for cell in cells]
        labels += [f"bench-batch[{name}]" for name in names]
    results = sweep(
        engine,
        "repro.harness.bench:bench_cell",
        cells,
        labels=labels,
        cacheable=False,
    )
    current_ops_per_sec: Dict[str, float] = {}
    elapsed: Dict[str, float] = {}
    ops: Dict[str, int] = {}
    clocks: Dict[str, int] = {}
    for name, result in zip(names, results):
        current_ops_per_sec[name] = round(result["ops_per_sec"], 1)
        elapsed[name] = round(result["elapsed_s"], 4)
        ops[name] = result["ops"]
        clocks[name] = result["final_clock"]
    speedups, speedup_warnings = compute_speedups(
        current_ops_per_sec, SEED_BASELINE["ops_per_sec"]
    )
    for warning in speedup_warnings:
        print(f"bench: speedup_vs_baseline: {warning}")
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "generated_by": "python -m repro.harness bench"
        + (" --smoke" if smoke else "")
        + (" --batch" if batch else ""),
        "unit": "simulated memory operations per wall-clock second",
        "smoke": smoke,
        "host": host_metadata(),
        "baseline": SEED_BASELINE,
        "current": {
            "ops_per_sec": current_ops_per_sec,
            "elapsed_s": elapsed,
            "ops": ops,
            "final_clock": clocks,
        },
        "speedup_vs_baseline": speedups,
    }
    if batch:
        batch_rates: Dict[str, float] = {}
        batch_elapsed: Dict[str, float] = {}
        batch_split: Dict[str, Dict[str, int]] = {}
        batch_clocks: Dict[str, int] = {}
        for name, result in zip(names, results[len(names):]):
            if result["final_clock"] != clocks[name]:
                raise RuntimeError(
                    f"bench[{name}]: batch replay ended at clock "
                    f"{result['final_clock']}, scalar at {clocks[name]} — "
                    "batch/scalar equivalence violated"
                )
            batch_rates[name] = round(result["ops_per_sec"], 1)
            batch_elapsed[name] = round(result["elapsed_s"], 4)
            batch_split[name] = {
                "batched": result["batched_ops"],
                "scalar": result["scalar_ops"],
            }
            batch_clocks[name] = result["final_clock"]
        batch_speedups, batch_warnings = compute_speedups(
            batch_rates, current_ops_per_sec
        )
        for warning in batch_warnings:
            print(f"bench: speedup_vs_scalar: {warning}")
        report["batch"] = {
            "ops_per_sec": batch_rates,
            "elapsed_s": batch_elapsed,
            "op_split": batch_split,
            "final_clock": batch_clocks,
            "speedup_vs_scalar": batch_speedups,
        }
    return report


# ----------------------------------------------------------------------
# sweep-engine measurement (the ``sweep`` section)
# ----------------------------------------------------------------------

#: Representative experiment sweep timed by :func:`measure_sweep`:
#: the Fig. 4a grid at reduced region scale (full run / --smoke run).
SWEEP_SIZES_MB = (64, 128, 256, 512)
SWEEP_SCALE = 0.125
SMOKE_SWEEP_SIZES_MB = (16, 32)
SMOKE_SWEEP_SCALE = 0.25


def measure_sweep(jobs: Optional[int] = None, smoke: bool = False) -> Dict:
    """Time a representative sweep serial vs parallel vs cache-warm.

    Three runs of the same Fig. 4a grid: the plain serial loop (no
    engine), a cold parallel run against a fresh cache, and a re-run
    against that now-warm cache.  Scratch cache directories live under
    a temp dir so measurement never touches ``artifacts/cache``.
    """
    from repro.harness.experiments import run_fig4a

    sizes = SMOKE_SWEEP_SIZES_MB if smoke else SWEEP_SIZES_MB
    scale = SMOKE_SWEEP_SCALE if smoke else SWEEP_SCALE
    with tempfile.TemporaryDirectory(prefix="kindle-sweep-") as tmp:
        start = time.perf_counter()  # repro: allow-nondet(bench measures wall-clock by design)
        serial = run_fig4a(sizes_mb=sizes, scale=scale)
        serial_s = time.perf_counter() - start  # repro: allow-nondet(bench measures wall-clock by design)
        cold_engine = SweepEngine(jobs=jobs, cache_dir=Path(tmp) / "cache")
        start = time.perf_counter()  # repro: allow-nondet(bench measures wall-clock by design)
        parallel = run_fig4a(sizes_mb=sizes, scale=scale, engine=cold_engine)
        parallel_s = time.perf_counter() - start  # repro: allow-nondet(bench measures wall-clock by design)
        warm_engine = SweepEngine(
            jobs=cold_engine.jobs, cache_dir=Path(tmp) / "cache"
        )
        start = time.perf_counter()  # repro: allow-nondet(bench measures wall-clock by design)
        warm = run_fig4a(sizes_mb=sizes, scale=scale, engine=warm_engine)
        warm_s = time.perf_counter() - start  # repro: allow-nondet(bench measures wall-clock by design)
    return {
        "experiment": "fig4a",
        "sizes_mb": list(sizes),
        "scale": scale,
        "cells": warm_engine.cells,
        "workers": cold_engine.jobs,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else 0.0,
        "warm_s": round(warm_s, 4),
        "warm_over_cold": round(warm_s / parallel_s, 4) if parallel_s else 0.0,
        "warm_cache_hit_rate": (
            round(warm_engine.cache_hits / warm_engine.cells, 4)
            if warm_engine.cells
            else 0.0
        ),
        "identical_output": serial == parallel == warm,
    }


def bench_main(
    out_path: str,
    smoke: bool = False,
    repeats: int = 3,
    jobs: Optional[int] = None,
    batch: bool = False,
) -> int:
    """CLI entry: run, print a table, write the JSON trajectory file.

    ``jobs`` sizes the sweep-engine measurement's worker pool (default:
    ``os.cpu_count()``); the throughput scenarios themselves always run
    serially so the trajectory stays contention-free.
    """
    report = run_bench(smoke=smoke, repeats=repeats, batch=batch)
    current = report["current"]
    print(f"== replay throughput ({report['unit']}) ==")
    for name, rate in current["ops_per_sec"].items():
        base = report["baseline"]["ops_per_sec"].get(name, 0.0)
        speedup = f"  ({rate / base:.2f}x baseline)" if base > 0 else ""
        print(
            f"  {name:<16} {rate:>12,.0f} ops/s  "
            f"[{current['ops'][name]} ops in {current['elapsed_s'][name]:.3f}s]"
            f"{speedup}"
        )
    if batch:
        batch_section = report["batch"]
        print("== batch replay (same scenarios, vectorized engine) ==")
        for name, rate in batch_section["ops_per_sec"].items():
            split = batch_section["op_split"][name]
            ratio = batch_section["speedup_vs_scalar"].get(name)
            vs = f"  ({ratio:.2f}x scalar)" if ratio is not None else ""
            print(
                f"  {name:<16} {rate:>12,.0f} ops/s  "
                f"[{split['batched']} batched / {split['scalar']} scalar]"
                f"{vs}"
            )
    sweep_report = measure_sweep(jobs=jobs, smoke=smoke)
    report["sweep"] = sweep_report
    print(
        f"== sweep engine ({sweep_report['experiment']}, "
        f"{sweep_report['cells']} cells, {sweep_report['workers']} workers) =="
    )
    print(
        f"  serial {sweep_report['serial_s']:.2f}s  "
        f"parallel {sweep_report['parallel_s']:.2f}s "
        f"({sweep_report['speedup']:.2f}x)  "
        f"warm-cache {sweep_report['warm_s']:.2f}s "
        f"({100 * sweep_report['warm_over_cold']:.1f}% of cold, "
        f"{100 * sweep_report['warm_cache_hit_rate']:.0f}% hits)"
    )
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0
