"""CLI: ``python -m repro.harness <experiment> [options]``.

Runs one paper experiment and prints its table.  ``--scale`` shrinks
region sizes and ``--ops`` shrinks workload lengths for quick runs;
defaults regenerate the paper-scale configuration.

Sweeps (the experiment drivers, ``crashtest`` and ``traffic``
population generation) execute through the
:mod:`repro.exec` engine: ``--jobs/-j`` sizes the worker pool (default
``os.cpu_count()``; ``-j 1`` forces the serial loop), finished cells
persist in a content-addressed cache under ``artifacts/cache/`` (skip
with ``--no-cache``, relocate with ``--cache-dir``), and ``--sweep-stats
PATH`` writes the engine's cells/cache-hits/elapsed counters as JSON —
CI uses it to assert warm-cache re-runs actually hit.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.exec import SweepEngine
from repro.harness import experiments
from repro.harness.report import format_table


def _print_rows(result: Dict) -> None:
    rows: List[Dict] = result["rows"]
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0].keys())
    print(f"== {result['experiment']} ==")
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate Kindle paper tables/figures",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2",
            "fig4a",
            "fig4b",
            "table3",
            "table4",
            "fig5",
            "fig6",
            "table5",
            "table6",
            "validate",
            "compare",
            "bench",
            "crashtest",
            "traffic",
            "plan",
        ],
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink persistence micro-benchmark region sizes (e.g. 0.125)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=120_000,
        help="workload operation budget for fig5/fig6/table2/table5/table6",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render figure experiments as ASCII bar charts",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bench/crashtest: reduced budgets for a CI smoke run",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        help="crashtest: restrict to a named scenario (repeatable)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="bench: timing repeats per scenario (best is kept)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="bench: also replay every scenario through the vectorized "
        "batch engine and record a batch section in the report",
    )
    parser.add_argument(
        "--out",
        default="BENCH_machine.json",
        help="bench: output path for the throughput trajectory JSON",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="traffic: client population size (default 256, smoke 24)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="traffic: gemOS process count (default 8, smoke 4)",
    )
    parser.add_argument(
        "--traffic-ops",
        type=int,
        default=None,
        help="traffic: total op budget, rounded up to a per-client "
        "multiple (default 10M, smoke 48k)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=2024,
        help="traffic: population master seed",
    )
    parser.add_argument(
        "--arrival",
        choices=["poisson", "diurnal"],
        default="poisson",
        help="traffic: arrival-time distribution",
    )
    parser.add_argument(
        "--scalar",
        action="store_true",
        help="traffic: replay through the scalar loop instead of the "
        "batch engine",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="traffic: also save per-process packed trace containers here; "
        "plan: score blueprints against the containers found here",
    )
    parser.add_argument(
        "--workload",
        choices=["traffic", "ycsb"],
        default="traffic",
        help="plan: workload to optimize for (traffic fits a forecast to "
        "an observed population; --trace-dir overrides)",
    )
    parser.add_argument(
        "--objective",
        default=None,
        metavar="SPEC",
        help="plan: ranking weights, e.g. 'cycles=1,wear=0.3,recovery=0.2' "
        "(omitted axes keep defaults)",
    )
    parser.add_argument(
        "--grid",
        choices=["star", "grid"],
        default="star",
        help="plan: candidate enumeration shape (star = one axis at a "
        "time; grid = full cartesian product)",
    )
    parser.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        help="plan: cap the candidate count (drops are reported, never "
        "silent; the paper default is always kept)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="traffic: skip the second determinism-verification replay",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="sweep worker processes (default: cpu count; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep cell, ignore artifacts/cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="sweep result cache location (default: artifacts/cache)",
    )
    parser.add_argument(
        "--sweep-stats",
        default=None,
        metavar="PATH",
        help="write sweep-engine stats (cells, cache hits, elapsed) as JSON",
    )
    args = parser.parse_args(argv)

    engine = SweepEngine(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=True,
    )

    def _write_sweep_stats() -> None:
        if args.sweep_stats:
            engine.write_stats(args.sweep_stats)

    if args.experiment == "bench":
        from repro.harness.bench import bench_main

        return bench_main(
            args.out,
            smoke=args.smoke,
            repeats=args.repeats,
            jobs=args.jobs,
            batch=args.batch,
        )
    if args.experiment == "traffic":
        from repro.harness.traffic import traffic_main

        code = traffic_main(
            args.out,
            smoke=args.smoke,
            engine=engine,
            clients=args.clients,
            processes=args.processes,
            total_ops=args.traffic_ops,
            seed=args.seed,
            arrival=args.arrival,
            scalar=args.scalar,
            trace_dir=args.trace_dir,
            verify=not args.no_verify,
        )
        _write_sweep_stats()
        return code
    if args.experiment == "plan":
        from repro.harness.plan import plan_main

        code = plan_main(
            args.out,
            workload=args.workload,
            smoke=args.smoke,
            engine=engine,
            objective_spec=args.objective,
            trace_dir=args.trace_dir,
            seed=args.seed,
            grid_mode=args.grid,
            max_candidates=args.max_candidates,
        )
        _write_sweep_stats()
        return code
    if args.experiment == "crashtest":
        from repro.harness.crashtest import crashtest_main

        code = crashtest_main(
            smoke=args.smoke, scenario_names=args.scenario, engine=engine
        )
        _write_sweep_stats()
        return code
    if args.experiment == "compare":
        from pathlib import Path

        from repro.harness.compare import compare_results

        # Resolve relative to the repository checkout when run from it.
        repo = Path.cwd()
        results = repo / "benchmarks" / "results"
        expected = repo / "artifacts" / "expected"
        report = compare_results(results, expected)
        print(
            f"compared {report.compared} tables; "
            f"missing={len(report.missing)} mismatches={len(report.mismatches)}"
        )
        for item in report.missing:
            print(f"  missing: {item}")
        for item in report.mismatches:
            print(f"  mismatch: {item}")
        return 0 if report.passed else 1
    if args.experiment == "validate":
        from repro.harness.validate import validate_persistence

        rows = []
        for scheme in ("rebuild", "persistent"):
            report = validate_persistence(scheme=scheme)
            rows.append(
                {
                    "scheme": scheme,
                    "crash_cycles": report.cycles,
                    "recoveries": report.recoveries,
                    "rollback_ops": report.total_rollback_ops,
                    "result": "PASS" if report.passed else "FAIL",
                }
            )
            for failure in report.failures:
                print(f"  !! {scheme}: {failure}")
        _print_rows({"experiment": "validate (Section V-A)", "rows": rows})
        return 0 if all(r["result"] == "PASS" for r in rows) else 1
    if args.experiment == "table2":
        result = experiments.run_table2(total_ops=args.ops, engine=engine)
    elif args.experiment == "fig4a":
        result = experiments.run_fig4a(scale=args.scale, engine=engine)
    elif args.experiment == "fig4b":
        result = experiments.run_fig4b(engine=engine)
    elif args.experiment == "table3":
        result = experiments.run_table3(scale=args.scale, engine=engine)
    elif args.experiment == "table4":
        result = experiments.run_table4(scale=args.scale, engine=engine)
    elif args.experiment == "fig5":
        result = experiments.run_fig5(total_ops=args.ops, engine=engine)
    else:  # fig6 / table5 / table6 share one runner
        result = experiments.run_fig6(total_ops=args.ops, engine=engine)
    _write_sweep_stats()
    _print_rows(result)
    if args.plot and result["experiment"].startswith("fig"):
        from repro.harness.plots import render_figure

        print()
        print(render_figure(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
