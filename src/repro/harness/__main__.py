"""CLI: ``python -m repro.harness <experiment> [options]``.

Runs one paper experiment and prints its table.  ``--scale`` shrinks
region sizes and ``--ops`` shrinks workload lengths for quick runs;
defaults regenerate the paper-scale configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.harness import experiments
from repro.harness.report import format_table


def _print_rows(result: Dict) -> None:
    rows: List[Dict] = result["rows"]
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0].keys())
    print(f"== {result['experiment']} ==")
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate Kindle paper tables/figures",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2",
            "fig4a",
            "fig4b",
            "table3",
            "table4",
            "fig5",
            "fig6",
            "table5",
            "table6",
            "validate",
            "compare",
            "bench",
            "crashtest",
        ],
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink persistence micro-benchmark region sizes (e.g. 0.125)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=120_000,
        help="workload operation budget for fig5/fig6/table2/table5/table6",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render figure experiments as ASCII bar charts",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bench/crashtest: reduced budgets for a CI smoke run",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        help="crashtest: restrict to a named scenario (repeatable)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="bench: timing repeats per scenario (best is kept)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_machine.json",
        help="bench: output path for the throughput trajectory JSON",
    )
    args = parser.parse_args(argv)

    if args.experiment == "bench":
        from repro.harness.bench import bench_main

        return bench_main(args.out, smoke=args.smoke, repeats=args.repeats)
    if args.experiment == "crashtest":
        from repro.harness.crashtest import crashtest_main

        return crashtest_main(smoke=args.smoke, scenario_names=args.scenario)
    if args.experiment == "compare":
        from pathlib import Path

        from repro.harness.compare import compare_results

        # Resolve relative to the repository checkout when run from it.
        repo = Path.cwd()
        results = repo / "benchmarks" / "results"
        expected = repo / "artifacts" / "expected"
        report = compare_results(results, expected)
        print(
            f"compared {report.compared} tables; "
            f"missing={len(report.missing)} mismatches={len(report.mismatches)}"
        )
        for item in report.missing:
            print(f"  missing: {item}")
        for item in report.mismatches:
            print(f"  mismatch: {item}")
        return 0 if report.passed else 1
    if args.experiment == "validate":
        from repro.harness.validate import validate_persistence

        rows = []
        for scheme in ("rebuild", "persistent"):
            report = validate_persistence(scheme=scheme)
            rows.append(
                {
                    "scheme": scheme,
                    "crash_cycles": report.cycles,
                    "recoveries": report.recoveries,
                    "rollback_ops": report.total_rollback_ops,
                    "result": "PASS" if report.passed else "FAIL",
                }
            )
            for failure in report.failures:
                print(f"  !! {scheme}: {failure}")
        _print_rows({"experiment": "validate (Section V-A)", "rows": rows})
        return 0 if all(r["result"] == "PASS" for r in rows) else 1
    if args.experiment == "table2":
        result = experiments.run_table2(total_ops=args.ops)
    elif args.experiment == "fig4a":
        result = experiments.run_fig4a(scale=args.scale)
    elif args.experiment == "fig4b":
        result = experiments.run_fig4b()
    elif args.experiment == "table3":
        result = experiments.run_table3(scale=args.scale)
    elif args.experiment == "table4":
        result = experiments.run_table4(scale=args.scale)
    elif args.experiment == "fig5":
        result = experiments.run_fig5(total_ops=args.ops)
    else:  # fig6 / table5 / table6 share one runner
        result = experiments.run_fig6(total_ops=args.ops)
    _print_rows(result)
    if args.plot and result["experiment"].startswith("fig"):
        from repro.harness.plots import render_figure

        print()
        print(render_figure(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
