"""Drivers regenerating every evaluated table and figure.

All sizes default to the paper's; ``scale`` shrinks region sizes (and
``total_ops`` shrinks workload length) proportionally so tests and
quick runs keep the same structure.  Results are plain dicts of rows so
callers (CLI, benchmarks, tests) can assert on them directly.

Each driver is factored into *cell functions* (``fig4a_cell`` & co.):
one deterministic simulation run per grid point, taking only
JSON-representable kwargs and returning plain dicts.  ``run_*`` builds
the grid and executes it through :func:`repro.exec.sweep` — inline when
``engine is None`` (the historical serial loop, what tests and the
benchmark suite call), or fanned across a process pool with
content-addressed result caching when the CLI passes a
:class:`~repro.exec.SweepEngine`.  Cells share no state and results are
collected in grid order, so both paths produce identical tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exec import SweepEngine, sweep

from repro.common.units import GiB, KiB, MiB, cycles_from_ms, ms_from_cycles
from repro.gemos.process import Process
from repro.platform import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.prep.imagegen import DiskImage
from repro.ssp.manager import SspManager
from repro.hscc.manager import HsccManager
from repro.workloads import (
    TABLE2_MIXES,
    WORKLOAD_GENERATORS,
    seq_alloc_access,
    stride_alloc_access,
    vma_churn,
)

SCHEMES = ("persistent", "rebuild")

# ----------------------------------------------------------------------
# process persistence (Fig. 4, Tables III & IV)
# ----------------------------------------------------------------------


def _persistence_system(scheme: str, interval_ms: float) -> HybridSystem:
    system = HybridSystem(scheme=scheme, checkpoint_interval_ms=interval_ms)
    system.boot()
    system.spawn("microbench")
    return system


def fig4a_cell(
    size_mb: int,
    interval_ms: float = 10.0,
    touches_per_page: int = 4,
    scale: float = 1.0,
) -> Dict:
    """One Fig. 4a grid point: both schemes at one region size."""
    alloc_bytes = max(int(size_mb * MiB * scale), 1 * MiB)
    times = {}
    for scheme in SCHEMES:
        system = _persistence_system(scheme, interval_ms)
        cycles = seq_alloc_access(system, alloc_bytes, touches_per_page)
        times[scheme] = ms_from_cycles(cycles)
        system.shutdown()
    return {
        "size_mb": size_mb,
        "persistent_ms": times["persistent"],
        "rebuild_ms": times["rebuild"],
        "overhead_x": times["rebuild"] / times["persistent"],
    }


def run_fig4a(
    sizes_mb: Iterable[int] = (64, 128, 256, 512),
    interval_ms: float = 10.0,
    touches_per_page: int = 4,
    scale: float = 1.0,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Fig. 4a: sequential alloc/access under both PT schemes."""
    sizes = list(sizes_mb)
    rows = sweep(
        engine,
        "repro.harness.experiments:fig4a_cell",
        [
            {
                "size_mb": size_mb,
                "interval_ms": interval_ms,
                "touches_per_page": touches_per_page,
                "scale": scale,
            }
            for size_mb in sizes
        ],
        labels=[f"fig4a[{size_mb}MB]" for size_mb in sizes],
    )
    return {"experiment": "fig4a", "interval_ms": interval_ms, "rows": rows}


def fig4b_cell(
    stride: str,
    gap: int,
    interval_ms: float = 10.0,
    count: int = 10,
    rounds: int = 1000,
) -> Dict:
    """One Fig. 4b grid point: both schemes at one stride gap."""
    times = {}
    for scheme in SCHEMES:
        system = _persistence_system(scheme, interval_ms)
        cycles = stride_alloc_access(system, gap, count=count, rounds=rounds)
        times[scheme] = ms_from_cycles(cycles)
        system.shutdown()
    return {
        "stride": stride,
        "persistent_ms": times["persistent"],
        "rebuild_ms": times["rebuild"],
        "ratio": times["persistent"] / times["rebuild"],
    }


def run_fig4b(
    gaps: Iterable[Tuple[str, int]] = (
        ("1GB", 1 * GiB),
        ("2MB", 2 * MiB),
        ("4KB", 4 * KiB),
    ),
    interval_ms: float = 10.0,
    count: int = 10,
    rounds: int = 1000,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Fig. 4b: stride placement varying page-table population."""
    gaps = list(gaps)
    rows = sweep(
        engine,
        "repro.harness.experiments:fig4b_cell",
        [
            {
                "stride": label,
                "gap": gap,
                "interval_ms": interval_ms,
                "count": count,
                "rounds": rounds,
            }
            for label, gap in gaps
        ],
        labels=[f"fig4b[{label}]" for label, _gap in gaps],
    )
    return {"experiment": "fig4b", "interval_ms": interval_ms, "rows": rows}


def table3_cell(
    churn_mb: int,
    total_mb: int = 512,
    interval_ms: float = 10.0,
    scale: float = 1.0,
) -> Dict:
    """One Table III grid point: both schemes at one churn size."""
    total_bytes = max(int(total_mb * MiB * scale), 2 * MiB)
    churn_bytes = max(int(churn_mb * MiB * scale), 1 * MiB)
    times = {}
    for scheme in SCHEMES:
        system = _persistence_system(scheme, interval_ms)
        cycles = vma_churn(
            system, total_bytes, churn_bytes, churn_rounds=2, access_rounds=0
        )
        times[scheme] = ms_from_cycles(cycles)
        system.shutdown()
    return {
        "churn_mb": churn_mb,
        "persistent_ms": times["persistent"],
        "rebuild_ms": times["rebuild"],
    }


def run_table3(
    churn_sizes_mb: Iterable[int] = (64, 128, 256),
    total_mb: int = 512,
    interval_ms: float = 10.0,
    scale: float = 1.0,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Table III: mmap/munmap churn of different sizes."""
    churn_sizes = list(churn_sizes_mb)
    rows = sweep(
        engine,
        "repro.harness.experiments:table3_cell",
        [
            {
                "churn_mb": churn_mb,
                "total_mb": total_mb,
                "interval_ms": interval_ms,
                "scale": scale,
            }
            for churn_mb in churn_sizes
        ],
        labels=[f"table3[{churn_mb}MB]" for churn_mb in churn_sizes],
    )
    return {"experiment": "table3", "interval_ms": interval_ms, "rows": rows}


def table4_cell(
    churn_mb: int,
    interval_ms: float,
    total_mb: int = 512,
    access_rounds: int = 3,
    scale: float = 1.0,
) -> Dict:
    """One Table IV grid point: both schemes at one (churn, interval)."""
    total_bytes = max(int(total_mb * MiB * scale), 2 * MiB)
    churn_bytes = max(int(churn_mb * MiB * scale), 1 * MiB)
    times = {}
    for scheme in SCHEMES:
        system = _persistence_system(scheme, interval_ms)
        cycles = vma_churn(
            system,
            total_bytes,
            churn_bytes,
            churn_rounds=2,
            access_rounds=access_rounds,
        )
        times[scheme] = ms_from_cycles(cycles)
        system.shutdown()
    return {
        "churn_mb": churn_mb,
        "interval_ms": interval_ms,
        "persistent_ms": times["persistent"],
        "rebuild_ms": times["rebuild"],
    }


def run_table4(
    churn_sizes_mb: Iterable[int] = (64, 128, 256),
    intervals_ms: Iterable[float] = (10.0, 100.0, 1000.0),
    total_mb: int = 512,
    access_rounds: int = 3,
    scale: float = 1.0,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Table IV: checkpoint interval sweep over the churn benchmark."""
    grid = [
        (churn_mb, interval_ms)
        for churn_mb in churn_sizes_mb
        for interval_ms in intervals_ms
    ]
    rows = sweep(
        engine,
        "repro.harness.experiments:table4_cell",
        [
            {
                "churn_mb": churn_mb,
                "interval_ms": interval_ms,
                "total_mb": total_mb,
                "access_rounds": access_rounds,
                "scale": scale,
            }
            for churn_mb, interval_ms in grid
        ],
        labels=[f"table4[{c}MB,{i}ms]" for c, i in grid],
    )
    return {"experiment": "table4", "rows": rows}


# ----------------------------------------------------------------------
# workloads (Table II) and replay plumbing
# ----------------------------------------------------------------------


def table2_cell(benchmark: str, total_ops: int = 200_000) -> Dict:
    """One Table II row: generate one workload image, measure its mix."""
    image = WORKLOAD_GENERATORS[benchmark](total_ops=total_ops)
    reads, writes = image.mix()
    paper_r, paper_w = TABLE2_MIXES[benchmark]
    return {
        "benchmark": benchmark,
        "total_ops": image.total_ops,
        "read_pct": reads,
        "write_pct": writes,
        "paper_read_pct": paper_r,
        "paper_write_pct": paper_w,
    }


def run_table2(
    total_ops: int = 200_000, engine: Optional[SweepEngine] = None
) -> Dict:
    """Table II: workload op counts and measured read/write mixes."""
    names = list(WORKLOAD_GENERATORS)
    rows = sweep(
        engine,
        "repro.harness.experiments:table2_cell",
        [{"benchmark": name, "total_ops": total_ops} for name in names],
        labels=[f"table2[{name}]" for name in names],
    )
    return {"experiment": "table2", "rows": rows}


def _replay_system(config=None) -> HybridSystem:
    """A system without the checkpoint engine (SSP/HSCC studies)."""
    system = HybridSystem(config=config, persistence=False)
    system.boot()
    return system


def hscc_study_config():
    """Cache-scaled platform for the HSCC study.

    The paper drives HSCC with multi-GB traces against a 2 MB LLC -- a
    footprint-to-LLC ratio in the thousands, so pages keep missing and
    access counts discriminate between the 5/25/50 fetch thresholds.
    The scaled traces here have ~10-25 MB footprints; this config
    shrinks the hierarchy (4 KB / 8 KB / 16 KB) to preserve that ratio,
    keeping Table I's memory-side parameters untouched.
    """
    from repro.common.config import CacheConfig, MachineConfig

    return MachineConfig(
        l1=CacheConfig("L1", 4 * KiB, 4, 4),
        l2=CacheConfig("L2", 8 * KiB, 8, 14),
        llc=CacheConfig("LLC", 16 * KiB, 16, 40),
    )


def _install_program(
    system: HybridSystem, image: DiskImage
) -> Tuple[Process, ReplayProgram]:
    process = system.spawn(image.name)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
    program.install(system.kernel, process)
    return process, program


def _nvm_span(process: Process) -> Tuple[int, int]:
    starts = [vma.start for vma in process.address_space]
    ends = [vma.end for vma in process.address_space]
    return min(starts), max(ends)


def _run_repeated(
    system: HybridSystem,
    program: ReplayProgram,
    process: Process,
    repeats: int,
) -> int:
    """Replay the image ``repeats`` times back to back.

    The paper's runs are hours of simulated time; repeating the trace
    stretches a scaled-down run across several consistency/migration
    intervals so interval-driven machinery actually fires.
    """
    start = system.machine.clock
    for _ in range(repeats):
        process.registers["pc"] = 0
        program.run(system.kernel, process)
    return system.machine.clock - start


def _run_until(
    system: HybridSystem,
    program: ReplayProgram,
    process: Process,
    target_ms: float,
    max_repeats: int = 96,
) -> Tuple[int, int]:
    """Replay passes until ``target_ms`` of simulated time has elapsed.

    Returns ``(cycles, passes)``; subsequent treatment runs use the
    same pass count so every configuration executes identical work.
    """
    target_cycles = cycles_from_ms(target_ms)
    start = system.machine.clock
    passes = 0
    while passes < max_repeats:
        process.registers["pc"] = 0
        program.run(system.kernel, process)
        passes += 1
        if system.machine.clock - start >= target_cycles:
            break
    return system.machine.clock - start, passes


# ----------------------------------------------------------------------
# SSP (Fig. 5)
# ----------------------------------------------------------------------


def fig5_cell(
    benchmark: str,
    total_ops: int = 60_000,
    intervals_ms: Iterable[float] = (1.0, 5.0, 10.0),
    consolidation_interval_ms: float = 1.0,
    target_ms: float = 30.0,
) -> List[Dict]:
    """One Fig. 5 workload: the no-consistency baseline plus every
    interval, as a list of rows.

    The interval runs reuse the baseline's pass count, so one workload
    is the smallest independently schedulable unit.
    """
    image = WORKLOAD_GENERATORS[benchmark](total_ops=total_ops)
    # Baseline: no memory consistency.
    system = _replay_system()
    process, program = _install_program(system, image)
    baseline_cycles, repeats = _run_until(system, program, process, target_ms)
    system.shutdown()
    rows: List[Dict] = []
    for interval_ms in intervals_ms:
        system = _replay_system()
        process, program = _install_program(system, image)
        ssp = SspManager(
            system.kernel,
            process,
            consistency_interval_ms=interval_ms,
            consolidation_interval_ms=consolidation_interval_ms,
        )
        lo, hi = _nvm_span(process)
        start = system.machine.clock
        ssp.checkpoint_start(lo, hi)
        _run_repeated(system, program, process, repeats)
        ssp.checkpoint_end()
        cycles = system.machine.clock - start
        system.shutdown()
        rows.append(
            {
                "benchmark": benchmark,
                "interval_ms": interval_ms,
                "normalized_time": cycles / baseline_cycles,
                "baseline_ms": ms_from_cycles(baseline_cycles),
                "ssp_ms": ms_from_cycles(cycles),
                "passes": repeats,
            }
        )
    return rows


def run_fig5(
    total_ops: int = 60_000,
    intervals_ms: Iterable[float] = (1.0, 5.0, 10.0),
    consolidation_interval_ms: float = 1.0,
    workloads: Optional[Iterable[str]] = None,
    target_ms: float = 30.0,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Fig. 5: SSP overhead vs consistency interval, normalized to a
    run with no memory consistency.

    Each workload replays until ``target_ms`` of simulated time (so
    every consistency interval fires several times); the SSP runs then
    execute the same number of passes.
    """
    names = list(workloads or WORKLOAD_GENERATORS)
    groups = sweep(
        engine,
        "repro.harness.experiments:fig5_cell",
        [
            {
                "benchmark": name,
                "total_ops": total_ops,
                "intervals_ms": list(intervals_ms),
                "consolidation_interval_ms": consolidation_interval_ms,
                "target_ms": target_ms,
            }
            for name in names
        ],
        labels=[f"fig5[{name}]" for name in names],
    )
    rows = [row for group in groups for row in group]
    return {"experiment": "fig5", "rows": rows}


# ----------------------------------------------------------------------
# HSCC (Fig. 6, Tables V & VI)
# ----------------------------------------------------------------------


def _run_hscc_once(
    image: DiskImage,
    fetch_threshold: int,
    charge_os: bool,
    migration_interval_ms: float,
    pool_pages: int,
    repeats: Optional[int] = None,
    target_ms: Optional[float] = None,
) -> Dict:
    system = _replay_system(hscc_study_config())
    process, program = _install_program(system, image)
    manager = HsccManager(
        system.kernel,
        process,
        fetch_threshold=fetch_threshold,
        migration_interval_ms=migration_interval_ms,
        pool_pages=pool_pages,
        charge_os=charge_os,
    )
    if repeats is not None:
        cycles = _run_repeated(system, program, process, repeats)
        passes = repeats
    else:
        assert target_ms is not None
        cycles, passes = _run_until(system, program, process, target_ms)
    selection, copy = manager.migration_cycle_split()
    result = {
        "cycles": cycles,
        "passes": passes,
        "pages_migrated": manager.pages_migrated,
        "selection_cycles": selection,
        "copy_cycles": copy,
        "dirty_copybacks": manager.dirty_copybacks,
    }
    manager.disarm()
    system.shutdown()
    return result


def fig6_cell(
    benchmark: str,
    threshold: int,
    total_ops: int = 60_000,
    migration_interval_ms: float = 31.25,
    pool_pages: int = 512,
    target_ms: float = 130.0,
) -> Dict:
    """One Fig. 6 grid point: charged + hardware-only pair at one
    (workload, fetch threshold)."""
    image = WORKLOAD_GENERATORS[benchmark](total_ops=total_ops)
    charged = _run_hscc_once(
        image,
        threshold,
        True,
        migration_interval_ms,
        pool_pages,
        target_ms=target_ms,
    )
    hw_only = _run_hscc_once(
        image,
        threshold,
        False,
        migration_interval_ms,
        pool_pages,
        repeats=charged["passes"],
    )
    os_cycles = charged["selection_cycles"] + charged["copy_cycles"]
    return {
        "benchmark": benchmark,
        "threshold": threshold,
        "normalized_time": charged["cycles"] / hw_only["cycles"],
        "pages_migrated": charged["pages_migrated"],
        "selection_pct": (
            100.0 * charged["selection_cycles"] / os_cycles if os_cycles else 0.0
        ),
        "copy_pct": (
            100.0 * charged["copy_cycles"] / os_cycles if os_cycles else 0.0
        ),
        "dirty_copybacks": charged["dirty_copybacks"],
        "charged_ms": ms_from_cycles(charged["cycles"]),
        "hw_only_ms": ms_from_cycles(hw_only["cycles"]),
    }


def run_fig6(
    total_ops: int = 60_000,
    thresholds: Iterable[int] = (5, 25, 50),
    migration_interval_ms: float = 31.25,
    pool_pages: int = 512,
    workloads: Optional[Iterable[str]] = None,
    target_ms: float = 130.0,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Fig. 6 + Tables V/VI: OS migration overhead per fetch threshold.

    Each (workload, threshold) pair runs twice: once charging OS
    migration cycles, once with hardware migration effects only, which
    is the paper's normalization baseline.  The charged run replays
    until ``target_ms`` of simulated time (several 31.25 ms migration
    intervals); the baseline executes the same number of passes.
    """
    names = list(workloads or WORKLOAD_GENERATORS)
    grid = [(name, threshold) for name in names for threshold in thresholds]
    rows = sweep(
        engine,
        "repro.harness.experiments:fig6_cell",
        [
            {
                "benchmark": name,
                "threshold": threshold,
                "total_ops": total_ops,
                "migration_interval_ms": migration_interval_ms,
                "pool_pages": pool_pages,
                "target_ms": target_ms,
            }
            for name, threshold in grid
        ],
        labels=[f"fig6[{name},t={threshold}]" for name, threshold in grid],
    )
    return {"experiment": "fig6", "rows": rows}


def run_table5_table6(
    total_ops: int = 120_000,
    thresholds: Iterable[int] = (5, 25, 50),
    **kwargs,
) -> Dict:
    """Tables V and VI are projections of the Fig. 6 runs."""
    result = run_fig6(total_ops=total_ops, thresholds=thresholds, **kwargs)
    result["experiment"] = "table5+table6"
    return result
