"""Planner harness: ``python -m repro.harness plan``.

Enumerates candidate :class:`~repro.planner.blueprint.Blueprint`
configurations, scores each against the requested workload through the
sweep engine (one cacheable cell per candidate), ranks them under the
objective weights, prints the ranking table and merges a ``plan``
section into the trajectory JSON.

Workloads:

* ``--workload traffic`` (default) — generate a small *observed*
  population, fit a forecast to it
  (:func:`repro.workloads.traffic.fit_forecast`), and plan against the
  forecast: the brad-style loop of tuning for the next load period.
* ``--workload ycsb`` — plan against the fixed YCSB image workload.
* ``--trace-dir DIR`` — plan against recorded packed-trace containers
  (e.g. ``traffic --trace-dir`` output), overriding ``--workload``.

The plan section is a pure function of (workload, objective, scores):
a warm re-plan over an unchanged cache writes a byte-identical section,
which CI asserts on the pick.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.common.errors import KindleError
from repro.exec import SweepEngine, sweep
from repro.harness.bench import SCHEMA, host_metadata
from repro.harness.report import format_table
from repro.planner import (
    Objective,
    enumerate_blueprints,
    forecast_workload,
    image_workload,
    plan_section,
    plan_table,
    rank_blueprints,
    trace_workload,
)
from repro.workloads.traffic import ClientPopulation, PopulationConfig

#: Observed population the traffic forecast is fit to.  Small by
#: design: the point of forecasting is that planning does not need the
#: full recorded load, only its fitted shape.
OBSERVED_CLIENTS = 48
OBSERVED_PROCESSES = 4
OBSERVED_OPS_PER_CLIENT = 2_000

SMOKE_CLIENTS = 12
SMOKE_PROCESSES = 2
SMOKE_OPS_PER_CLIENT = 500


def resolve_workload(
    workload: str,
    smoke: bool,
    seed: int,
    trace_dir: Optional[str],
    engine: Optional[SweepEngine] = None,
) -> Dict[str, object]:
    """Turn CLI knobs into the workload spec the scoring cells consume."""
    if trace_dir is not None:
        paths = sorted(Path(trace_dir).glob("*.bin"))
        if not paths:
            raise KindleError(f"no *.bin trace containers in {trace_dir}")
        return trace_workload(paths)
    if workload == "traffic":
        observed = PopulationConfig(
            seed=seed,
            clients=SMOKE_CLIENTS if smoke else OBSERVED_CLIENTS,
            processes=SMOKE_PROCESSES if smoke else OBSERVED_PROCESSES,
            ops_per_client=(
                SMOKE_OPS_PER_CLIENT if smoke else OBSERVED_OPS_PER_CLIENT
            ),
        )
        schedule = ClientPopulation(observed).generate(engine=engine)
        return forecast_workload(schedule)
    if workload == "ycsb":
        if smoke:
            return image_workload(ops=6_000, repeats=2)
        return image_workload()
    raise KindleError(f"unknown plan workload {workload!r}")


def run_plan(
    workload_spec: Dict[str, object],
    objective: Objective,
    smoke: bool = False,
    engine: Optional[SweepEngine] = None,
    grid_mode: str = "star",
    max_candidates: Optional[int] = None,
) -> Dict[str, object]:
    """Enumerate, score (through the engine) and rank; returns the
    ``plan`` section."""
    grid = enumerate_blueprints(
        mode=grid_mode, smoke=smoke, max_candidates=max_candidates
    )
    scored = sweep(
        engine,
        "repro.planner.score:score_blueprint_cell",
        [
            {"blueprint": blueprint.to_dict(), "workload": workload_spec}
            for blueprint in grid.blueprints
        ],
        labels=[f"plan[{blueprint.label()}]" for blueprint in grid.blueprints],
    )
    ranking = rank_blueprints(scored, objective)
    generated_by = "python -m repro.harness plan" + (" --smoke" if smoke else "")
    return plan_section(workload_spec, objective, grid, ranking, generated_by)


def plan_main(
    out_path: str,
    workload: str = "traffic",
    smoke: bool = False,
    engine: Optional[SweepEngine] = None,
    objective_spec: Optional[str] = None,
    trace_dir: Optional[str] = None,
    seed: int = 2024,
    grid_mode: str = "star",
    max_candidates: Optional[int] = None,
) -> int:
    """CLI entry: plan, print the ranking, merge into the trajectory file."""
    objective = (
        Objective.from_spec(objective_spec) if objective_spec else Objective()
    )
    spec = resolve_workload(workload, smoke, seed, trace_dir, engine=engine)
    section = run_plan(
        spec,
        objective,
        smoke=smoke,
        engine=engine,
        grid_mode=grid_mode,
        max_candidates=max_candidates,
    )
    ranking = section["ranking"]
    headers, rows = plan_table(ranking)
    print(
        f"== plan: {section['candidates']} candidates over "
        f"{spec['kind']} workload, objective "
        + ",".join(
            f"{axis}={weight:g}"
            for axis, weight in section["objective"].items()
        )
        + " =="
    )
    print(format_table(headers, rows))
    pick = section["pick"]
    print(f"pick: {pick['label']} (score {pick['score']})")
    if section.get("pick_vs_default") is not None:
        versus = section["pick_vs_default"]
        if versus["beats_default"]:
            print(
                f"  beats the paper default by "
                f"{-versus['score_delta']:.6f} objective score"
            )
        else:
            print("  the paper default is already the best candidate")
    for label, rule, _reason in section["pruned"]:
        print(f"  pruned {label} [{rule}]")
    if section["dropped_by_cap"]:
        print(
            f"  dropped {section['dropped_by_cap']} candidates past "
            f"--max-candidates"
        )
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    report: Dict[str, object] = {}
    if out.exists():
        try:
            report = json.loads(out.read_text(encoding="utf-8"))
        except ValueError:
            report = {}
        if not isinstance(report, dict):
            report = {}
    report.setdefault(
        "unit", "simulated memory operations per wall-clock second"
    )
    report.setdefault("host", host_metadata())
    report["schema"] = SCHEMA
    report["plan"] = section
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0
