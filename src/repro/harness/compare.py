"""Compare regenerated results against the expected set.

The paper's artifact ships "expected output files for comparison" next
to the scripts that regenerate each experiment; this module is that
workflow.  ``artifacts/expected/`` holds a blessed copy of every
``benchmarks/results/*.txt`` table; :func:`compare_results` re-parses
both sides and checks that

* the same experiments and rows are present,
* label columns match exactly,
* numeric columns agree within a tolerance factor (timings wobble with
  calibration constants; shapes should not).

It also owns :func:`compute_speedups`, the throughput-ratio helper the
bench harness uses for its ``speedup_vs_baseline`` and batch-vs-scalar
sections: comparing two ``{scenario: ops_per_sec}`` mappings is the
same "regenerated vs blessed" problem, and centralising it here keeps
the division-by-zero / missing-scenario handling in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple


@dataclass
class ComparisonReport:
    compared: int = 0
    missing: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing and not self.mismatches


def _parse_table(path: Path) -> Tuple[str, List[Dict[str, str]]]:
    lines = [l.rstrip("\n") for l in path.read_text().splitlines() if l.strip()]
    title = lines[0]
    headers = lines[1].split()
    rows = []
    for line in lines[3:]:  # skip the dashes row
        cells = line.split()
        if len(cells) == len(headers):
            rows.append(dict(zip(headers, cells)))
    return title, rows


def _numeric(value: str) -> Optional[float]:
    try:
        return float(value)
    except ValueError:
        return None


def compute_speedups(
    current: Dict[str, float],
    baseline: Dict[str, float],
    digits: int = 2,
) -> Tuple[Dict[str, float], List[str]]:
    """Per-scenario ``current / baseline`` throughput ratios.

    Scenarios missing from ``baseline`` and scenarios whose baseline
    rate is zero (or negative — a corrupt record) are skipped with a
    warning instead of raising ``KeyError`` / ``ZeroDivisionError``, so
    a renamed scenario or a damaged trajectory file degrades the report
    rather than killing the whole bench run.  Returns the ratio mapping
    (insertion order follows ``current``) and the warning list.
    """
    speedups: Dict[str, float] = {}
    warnings: List[str] = []
    for name, rate in current.items():
        if name not in baseline:
            warnings.append(f"{name}: no baseline measurement, skipped")
            continue
        base = baseline[name]
        if base <= 0:
            warnings.append(
                f"{name}: unusable baseline ops/sec ({base}), skipped"
            )
            continue
        speedups[name] = round(rate / base, digits)
    return speedups, warnings


def compare_results(
    results_dir: Path,
    expected_dir: Path,
    tolerance_factor: float = 3.0,
) -> ComparisonReport:
    """Compare every expected table against its regenerated twin."""
    report = ComparisonReport()
    for expected_path in sorted(expected_dir.glob("*.txt")):
        actual_path = results_dir / expected_path.name
        if not actual_path.exists():
            report.missing.append(expected_path.name)
            continue
        report.compared += 1
        exp_title, exp_rows = _parse_table(expected_path)
        act_title, act_rows = _parse_table(actual_path)
        name = expected_path.name
        if exp_title != act_title:
            report.mismatches.append(f"{name}: title changed")
        if len(exp_rows) != len(act_rows):
            report.mismatches.append(
                f"{name}: {len(act_rows)} rows, expected {len(exp_rows)}"
            )
            continue
        for index, (exp_row, act_row) in enumerate(zip(exp_rows, act_rows)):
            if set(exp_row) != set(act_row):
                report.mismatches.append(f"{name}[{index}]: columns changed")
                continue
            for column, exp_value in exp_row.items():
                act_value = act_row[column]
                exp_num = _numeric(exp_value)
                act_num = _numeric(act_value)
                if exp_num is None or act_num is None:
                    if exp_value != act_value:
                        report.mismatches.append(
                            f"{name}[{index}].{column}: "
                            f"{act_value!r} != {exp_value!r}"
                        )
                    continue
                if exp_num == 0:
                    continue  # zero baselines: counts may legitimately move
                ratio = act_num / exp_num if exp_num else float("inf")
                if not (1 / tolerance_factor <= ratio <= tolerance_factor):
                    report.mismatches.append(
                        f"{name}[{index}].{column}: {act_num} vs "
                        f"expected {exp_num} (>{tolerance_factor}x apart)"
                    )
    return report
