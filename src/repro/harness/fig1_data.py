"""Figure 1 dataset (motivation figure, no experiment to run).

The paper's Fig. 1 plots Google Scholar hits for hybrid-memory/NVM
publications over six years, "an average of 120 research papers
annually".  The per-year values below are read off the figure; they are
recorded here so every figure in the paper has a data source in the
repository.
"""

#: year -> approximate publication count (read off Fig. 1).
FIG1_PUBLICATIONS = {
    2018: 105,
    2019: 118,
    2020: 131,
    2021: 126,
    2022: 122,
    2023: 119,
}


def average_per_year() -> float:
    return sum(FIG1_PUBLICATIONS.values()) / len(FIG1_PUBLICATIONS)
