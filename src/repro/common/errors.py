"""Exception hierarchy for the Kindle reproduction.

Every error raised by the framework derives from :class:`KindleError` so
callers can catch framework failures without masking programming errors.
"""


class KindleError(Exception):
    """Base class for all framework errors."""


class ConfigError(KindleError):
    """An invalid or inconsistent configuration value was supplied."""


class FaultError(KindleError):
    """A memory access could not be satisfied (bad address, protection)."""


class SegmentationFault(FaultError):
    """Access to an address with no backing VMA or wrong protection."""


class OutOfMemoryError(KindleError):
    """A physical frame allocator ran out of frames."""


class RecoveryError(KindleError):
    """Crash recovery found the NVM saved state inconsistent."""


class TraceFormatError(KindleError):
    """A trace file or trace record could not be parsed."""


class CrashedError(KindleError):
    """An operation was attempted on a machine that is powered off."""
