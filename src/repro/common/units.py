"""Units and address arithmetic used throughout the simulator.

The simulated core runs at 3 GHz (paper Section III: "Intel 64-bit
in-order CPU at 3GHz"), so one nanosecond is exactly three cycles.  All
conversions round up to whole cycles: hardware latencies never round to
zero.
"""

from __future__ import annotations

#: Cache line size in bytes (x86-64).
CACHE_LINE = 64

#: Page size in bytes (x86-64 base pages).
PAGE_SIZE = 4096

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Simulated core frequency (Table I / Section III).
CPU_FREQ_HZ = 3_000_000_000

_CYCLES_PER_NS = CPU_FREQ_HZ / 1_000_000_000  # == 3.0


def cycles_from_ns(ns: float) -> int:
    """Convert nanoseconds to whole cycles, rounding up."""
    cycles = ns * _CYCLES_PER_NS
    whole = int(cycles)
    return whole if whole == cycles else whole + 1


def cycles_from_us(us: float) -> int:
    """Convert microseconds to whole cycles, rounding up."""
    return cycles_from_ns(us * 1_000)


def cycles_from_ms(ms: float) -> int:
    """Convert milliseconds to whole cycles, rounding up."""
    return cycles_from_ns(ms * 1_000_000)


def cycles_from_s(s: float) -> int:
    """Convert seconds to whole cycles, rounding up."""
    return cycles_from_ns(s * 1_000_000_000)


def ns_from_cycles(cycles: int) -> float:
    """Convert cycles to nanoseconds."""
    return cycles / _CYCLES_PER_NS


def us_from_cycles(cycles: int) -> float:
    """Convert cycles to microseconds."""
    return ns_from_cycles(cycles) / 1_000


def ms_from_cycles(cycles: int) -> float:
    """Convert cycles to milliseconds."""
    return ns_from_cycles(cycles) / 1_000_000


def line_of(addr: int) -> int:
    """Cache-line number containing ``addr``."""
    return addr // CACHE_LINE


def page_of(addr: int) -> int:
    """Page number containing ``addr``."""
    return addr // PAGE_SIZE


def pages_in(nbytes: int) -> int:
    """Number of whole pages needed to cover ``nbytes``."""
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def lines_in(nbytes: int) -> int:
    """Number of whole cache lines needed to cover ``nbytes``."""
    return (nbytes + CACHE_LINE - 1) // CACHE_LINE


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment``."""
    return addr - (addr % alignment)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment``."""
    return align_down(addr + alignment - 1, alignment)


def span_lines(addr: int, size: int) -> range:
    """Cache-line numbers touched by an access of ``size`` bytes at ``addr``."""
    if size <= 0:
        raise ValueError(f"access size must be positive, got {size}")
    first = line_of(addr)
    last = line_of(addr + size - 1)
    return range(first, last + 1)


def span_pages(addr: int, size: int) -> range:
    """Page numbers touched by an access of ``size`` bytes at ``addr``."""
    if size <= 0:
        raise ValueError(f"access size must be positive, got {size}")
    first = page_of(addr)
    last = page_of(addr + size - 1)
    return range(first, last + 1)
