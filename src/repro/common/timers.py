"""Simulated-time timers.

The machine advances a cycle clock; OS services (checkpoint engine, SSP
consistency intervals, SSP consolidation thread, HSCC migration
intervals) arm timers on a :class:`TimerWheel`.  After every replayed
operation the machine fires all timers whose deadline has passed.

Timers fire in deadline order; ties break by arming order so runs are
deterministic.  A periodic timer re-arms itself relative to the time its
callback *finished* (callbacks may advance the clock), which models an
OS timer handler that re-arms on return — checkpoint work longer than
the interval therefore delays the next checkpoint instead of stacking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Timer:
    """Handle for one armed timer; use :meth:`cancel` to disarm."""

    __slots__ = ("callback", "period", "cancelled", "name")

    def __init__(
        self, callback: Callable[[], None], period: Optional[int], name: str
    ) -> None:
        self.callback = callback
        self.period = period
        self.cancelled = False
        self.name = name

    def cancel(self) -> None:
        self.cancelled = True


class TimerWheel:
    """Deadline-ordered timer queue over an externally owned clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Timer]] = []
        self._seq = itertools.count()

    def arm(
        self,
        deadline: int,
        callback: Callable[[], None],
        *,
        period: Optional[int] = None,
        name: str = "timer",
    ) -> Timer:
        """Arm a timer at absolute cycle ``deadline``.

        With ``period`` set, the timer re-arms ``period`` cycles after
        its callback returns.
        """
        if period is not None and period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        timer = Timer(callback, period, name)
        heapq.heappush(self._heap, (deadline, next(self._seq), timer))
        return timer

    def next_deadline(self) -> Optional[int]:
        """Earliest armed deadline, skipping cancelled timers."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def fire_due(self, now_fn: Callable[[], int]) -> int:
        """Run every timer due at ``now_fn()``; returns timers fired.

        ``now_fn`` is consulted again after each callback because
        callbacks advance the clock (e.g. a checkpoint costs time),
        which can make more timers due.
        """
        fired = 0
        while self._heap:
            deadline, _, timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if deadline > now_fn():
                break
            heapq.heappop(self._heap)
            timer.callback()
            fired += 1
            if timer.period is not None and not timer.cancelled:
                heapq.heappush(
                    self._heap, (now_fn() + timer.period, next(self._seq), timer)
                )
        return fired

    def clear(self) -> None:
        """Disarm everything (used on crash: volatile timers are lost)."""
        for _, _, timer in self._heap:
            timer.cancelled = True
        self._heap.clear()

    def __len__(self) -> int:
        return sum(1 for _, _, t in self._heap if not t.cancelled)
