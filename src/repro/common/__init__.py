"""Shared building blocks: units, configuration, statistics, timers, errors.

Everything in :mod:`repro` counts time in CPU cycles of the simulated
3 GHz in-order core (Table I / Section III of the paper).  The helpers in
:mod:`repro.common.units` convert between wall-clock units and cycles so
the rest of the code never hard-codes the frequency.
"""

from repro.common.errors import (
    KindleError,
    ConfigError,
    FaultError,
    OutOfMemoryError,
    RecoveryError,
    TraceFormatError,
)
from repro.common.units import (
    CACHE_LINE,
    PAGE_SIZE,
    KiB,
    MiB,
    GiB,
    CPU_FREQ_HZ,
    cycles_from_ns,
    cycles_from_us,
    cycles_from_ms,
    cycles_from_s,
    ns_from_cycles,
    ms_from_cycles,
    line_of,
    page_of,
    pages_in,
    lines_in,
    align_down,
    align_up,
)
from repro.common.stats import Stats
from repro.common.timers import TimerWheel

__all__ = [
    "KindleError",
    "ConfigError",
    "FaultError",
    "OutOfMemoryError",
    "RecoveryError",
    "TraceFormatError",
    "CACHE_LINE",
    "PAGE_SIZE",
    "KiB",
    "MiB",
    "GiB",
    "CPU_FREQ_HZ",
    "cycles_from_ns",
    "cycles_from_us",
    "cycles_from_ms",
    "cycles_from_s",
    "ns_from_cycles",
    "ms_from_cycles",
    "line_of",
    "page_of",
    "pages_in",
    "lines_in",
    "align_down",
    "align_up",
    "Stats",
    "TimerWheel",
]
