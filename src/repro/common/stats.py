"""Hierarchical counter registry, the moral equivalent of gem5's stats file.

Every component of the simulated machine increments named counters on a
shared :class:`Stats` object.  Counters are created on first use;
dotted names give the gem5-style hierarchy (``llc.miss``,
``os.migration.page_copy_cycles``).  The harness reads these counters to
regenerate the paper's tables.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Stats:
    """A flat registry of named integer counters.

    >>> s = Stats()
    >>> s.add("llc.miss")
    >>> s.add("llc.miss", 2)
    >>> s["llc.miss"]
    3
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        #: The live counter mapping itself.  Hot-path components (cache,
        #: TLB, memory channels, the machine's replay loop) hold a direct
        #: reference and do ``counters[key] += amount`` to skip the
        #: method-call overhead of :meth:`add`; it is the same object for
        #: the lifetime of the registry (:meth:`reset` clears it in
        #: place), so cached references never go stale.
        self.counters = self._counters

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def set(self, name: str, value: int) -> None:
        """Overwrite counter ``name``."""
        self._counters[name] = value

    def get(self, name: str, default: int = 0) -> int:
        """Read counter ``name`` without creating it."""
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> int:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        """Zero every counter (the registry itself survives)."""
        self._counters.clear()

    def snapshot(self) -> Dict[str, int]:
        """An independent copy of all counters."""
        return dict(self._counters)

    def dump(self) -> str:
        """gem5-style ``name value`` text dump, sorted by name."""
        lines = [f"{name} {value}" for name, value in self.items()]
        return "\n".join(lines)

    @classmethod
    def parse_dump(cls, text: str) -> "Stats":
        """Parse a :meth:`dump`-format stats file.

        The analog of the artifact's "Python scripts to parse gem5
        statistics files": harness output can be persisted as text and
        re-loaded for comparison against expected results.
        """
        stats = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                name, value = line.rsplit(" ", 1)
                stats.set(name, int(value))
            except ValueError as exc:
                raise ValueError(f"stats line {lineno}: {line!r}") from exc
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats({len(self._counters)} counters)"
