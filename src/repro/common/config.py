"""Configuration dataclasses for the simulated platform.

The defaults reproduce Table I of the paper (gem5 memory configuration)
and the CPU/cache configuration from Section III: an Intel 64-bit
in-order CPU at 3 GHz with 32 KB L1, 512 KB L2 and 2 MB LLC, over a
hybrid memory of 3 GB DDR4-2400 DRAM and 2 GB PCM NVM with 48-entry
write and 64-entry read buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import CACHE_LINE, GiB, KiB, MiB, PAGE_SIZE


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size: int
    assoc: int
    hit_latency: int  # cycles
    line_size: int = CACHE_LINE

    def __post_init__(self) -> None:
        if self.assoc <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.size <= 0 or self.size % (self.assoc * self.line_size):
            raise ConfigError(
                f"{self.name}: size {self.size} not divisible into "
                f"{self.assoc}-way sets of {self.line_size}B lines"
            )
        if self.hit_latency < 0:
            raise ConfigError(f"{self.name}: negative hit latency")

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of the data TLB."""

    entries: int = 64
    hit_latency: int = 1  # cycles

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError("TLB must have at least one entry")


@dataclass(frozen=True)
class MemTimingConfig:
    """Device timing for one memory technology (nanoseconds)."""

    name: str
    read_row_hit_ns: float
    read_row_miss_ns: float
    write_row_hit_ns: float
    write_row_miss_ns: float
    row_size: int = 8 * KiB

    def __post_init__(self) -> None:
        for label in (
            "read_row_hit_ns",
            "read_row_miss_ns",
            "write_row_hit_ns",
            "write_row_miss_ns",
        ):
            if getattr(self, label) <= 0:
                raise ConfigError(f"{self.name}: {label} must be positive")
        if self.read_row_hit_ns > self.read_row_miss_ns:
            raise ConfigError(f"{self.name}: row hit slower than row miss")
        if self.row_size <= 0 or self.row_size % CACHE_LINE:
            raise ConfigError(f"{self.name}: bad row size {self.row_size}")


#: DDR4-2400 16x4 (Table I).  Row hit ~20 ns, row miss ~45 ns; writes are
#: posted but drain at similar device cost.
DDR4_2400 = MemTimingConfig(
    name="DDR4-2400",
    read_row_hit_ns=20.0,
    read_row_miss_ns=45.0,
    write_row_hit_ns=20.0,
    write_row_miss_ns=45.0,
)

#: PCM timing after Song et al. [39]: array reads ~150 ns, writes
#: dominated by SET/RESET pulse widths (~500 ns effective at line
#: granularity).  Row-buffer hits are served from the sense amps and cost
#: close to DRAM.
PCM = MemTimingConfig(
    name="PCM",
    read_row_hit_ns=55.0,
    read_row_miss_ns=150.0,
    write_row_hit_ns=180.0,
    write_row_miss_ns=500.0,
)

#: STT-RAM: near-DRAM reads, moderately slow writes (switching current
#: limited).  One of the alternative technologies Section V-D proposes
#: studying "by changing NVM interface parameters in gem5".
STT_RAM = MemTimingConfig(
    name="STT-RAM",
    read_row_hit_ns=25.0,
    read_row_miss_ns=60.0,
    write_row_hit_ns=60.0,
    write_row_miss_ns=120.0,
)

#: ReRAM: reads between DRAM and PCM, writes faster than PCM but with a
#: pronounced asymmetry.
RERAM = MemTimingConfig(
    name="ReRAM",
    read_row_hit_ns=40.0,
    read_row_miss_ns=100.0,
    write_row_hit_ns=120.0,
    write_row_miss_ns=300.0,
)

#: Technologies selectable for the NVM interface (Section V-D).
NVM_TECHNOLOGIES = {
    "pcm": PCM,
    "stt-ram": STT_RAM,
    "reram": RERAM,
}


@dataclass(frozen=True)
class NvmBufferConfig:
    """NVM controller queueing (Table I)."""

    write_buffer_entries: int = 48
    read_buffer_entries: int = 64

    def __post_init__(self) -> None:
        if self.write_buffer_entries < 1:
            raise ConfigError("NVM write buffer needs at least one entry")
        if self.read_buffer_entries < 1:
            raise ConfigError("NVM read buffer needs at least one entry")


@dataclass(frozen=True)
class HybridLayoutConfig:
    """Physical address partition between DRAM and NVM (Table I)."""

    dram_bytes: int = 3 * GiB
    nvm_bytes: int = 2 * GiB
    dram_base: int = 0

    def __post_init__(self) -> None:
        if self.dram_bytes % PAGE_SIZE or self.nvm_bytes % PAGE_SIZE:
            raise ConfigError("memory sizes must be page aligned")
        if self.dram_bytes <= 0 or self.nvm_bytes <= 0:
            raise ConfigError("hybrid layout requires both DRAM and NVM")

    @property
    def nvm_base(self) -> int:
        return self.dram_base + self.dram_bytes

    @property
    def total_bytes(self) -> int:
        return self.dram_bytes + self.nvm_bytes


@dataclass(frozen=True)
class MachineConfig:
    """Complete simulated platform configuration.

    Defaults reproduce the paper's setup: 3 GHz in-order core, 32 KB L1 /
    512 KB L2 / 2 MB LLC, 64-entry DTLB, DDR4-2400 + PCM hybrid memory.
    """

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1", 32 * KiB, 8, hit_latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 512 * KiB, 8, hit_latency=14)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 * MiB, 16, hit_latency=40)
    )
    tlb: TlbConfig = field(default_factory=TlbConfig)
    dram: MemTimingConfig = DDR4_2400
    nvm: MemTimingConfig = PCM
    nvm_buffers: NvmBufferConfig = field(default_factory=NvmBufferConfig)
    layout: HybridLayoutConfig = field(default_factory=HybridLayoutConfig)
    #: Fixed CPU cost charged per replayed memory operation (dispatch,
    #: address generation) in cycles.
    op_base_cycles: int = 1

    def __post_init__(self) -> None:
        if self.op_base_cycles < 0:
            raise ConfigError("op_base_cycles cannot be negative")
        if self.l1.size > self.l2.size or self.l2.size > self.llc.size:
            raise ConfigError("cache hierarchy must grow monotonically")


def small_machine_config(
    dram_bytes: int = 64 * MiB, nvm_bytes: int = 64 * MiB
) -> MachineConfig:
    """A scaled-down platform for unit tests (same structure, less memory)."""
    return MachineConfig(layout=HybridLayoutConfig(dram_bytes, nvm_bytes))
