"""Deterministic random streams for workload generation.

Each workload derives its own stream from a master seed and a label so
that (a) runs are reproducible and (b) changing one workload's draws
does not perturb another's.
"""

from __future__ import annotations

import hashlib
import random


def derive_rng(master_seed: int, label: str) -> random.Random:
    """A :class:`random.Random` keyed by ``(master_seed, label)``."""
    digest = hashlib.sha256(f"{master_seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


class ZipfSampler:
    """Zipf-distributed integers in ``[0, n)`` via inverse-CDF sampling.

    Used by the YCSB workload (zipfian request distribution is YCSB's
    default).  Precomputes the CDF once; draws are O(log n).
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("ZipfSampler needs a positive population")
        if not 0.0 < theta < 2.0:
            raise ValueError(f"zipf theta out of range: {theta}")
        self._rng = rng
        weights = [1.0 / (rank**theta) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        """Draw one rank (0 is the hottest item)."""
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo
