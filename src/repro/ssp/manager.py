"""SSP OS side: FASE demarcation, consistency intervals, consolidation.

"We use a programming model in which the user demarcates the failure
atomic section (FASE) in code using checkpoint_start and checkpoint_end
calls ... at every [consistency] interval end, the gemOS kernel
instructs the address translation hardware to initiate a memory request
to send all modified bitmaps in TLBs to the metadata region.  The gemOS
kernel then calls clwb write back instructions to flush all data and
metadata updates in hardware caches to NVM.  Physical page
consolidation happens asynchronously; a thread periodically calls a
page consolidation routine to merge pages corresponding to evicted TLB
entries by inspecting the SSP cache entries."

This prototype is a *timing* study (like Fig. 5): shadow routing
redirects the physical lines stores touch, and all flush/merge costs
are charged, but byte contents stay in the primary page (the paper's
consistency-of-data assumption from Section II-A applies).
"""

from __future__ import annotations

from typing import Optional

from repro.arch.msr import MSR_NVM_RANGE_HI, MSR_NVM_RANGE_LO, MSR_SSP_CACHE_BASE
from repro.common.errors import KindleError
from repro.common.units import CACHE_LINE, PAGE_SIZE, cycles_from_ms
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process
from repro.mem.hybrid import MemType
from repro.ssp.extension import SspExtension
from repro.ssp.sspcache import ENTRY_BYTES, SspCache

#: Default metadata capacity (pages trackable by the SSP cache).
DEFAULT_CACHE_CAPACITY = 65536

#: Kernel cycles to inspect one SSP cache entry during consolidation.
CONSOLIDATE_INSPECT_CYCLES = 40

#: Kernel cycles per tracked page at every consistency interval end:
#: the metadata inspection pass (read the entry, decode bitmaps, issue
#: the flush).  This is the "number of metadata inspections ... reduce
#: with a wider consistency interval" cost of Fig. 5.
INTERVAL_ENTRY_INSPECT_CYCLES = 120


class SspManager:
    """Drives shadow sub-paging for one process's NVM range."""

    def __init__(
        self,
        kernel: Kernel,
        process: Process,
        consistency_interval_ms: float = 5.0,
        consolidation_interval_ms: float = 1.0,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        if consistency_interval_ms <= 0 or consolidation_interval_ms <= 0:
            raise ValueError("SSP intervals must be positive")
        self.kernel = kernel
        self.machine = kernel.machine
        self.process = process
        self.interval_cycles = cycles_from_ms(consistency_interval_ms)
        self.consolidation_cycles = cycles_from_ms(consolidation_interval_ms)
        base = kernel.reserve_nvm_area("ssp_cache", cache_capacity * ENTRY_BYTES)
        self.cache = SspCache(base_paddr=base, capacity=cache_capacity)
        self.extension = SspExtension(self.cache)
        self.machine.attach_extension(self.extension)
        kernel.add_listener(self._on_event)
        self._interval_timer = None
        self._consolidation_timer = None
        self._range = (0, 0)

    # ------------------------------------------------------------------
    # FASE demarcation
    # ------------------------------------------------------------------

    def checkpoint_start(self, vaddr_lo: int, vaddr_hi: int) -> None:
        """Enter the failure-atomic section over ``[lo, hi)``."""
        if vaddr_hi <= vaddr_lo:
            raise KindleError("empty FASE range")
        self._range = (vaddr_lo, vaddr_hi)
        msr = self.machine.msr
        msr.write(MSR_NVM_RANGE_LO, vaddr_lo)
        msr.write(MSR_NVM_RANGE_HI, vaddr_hi)
        msr.write(MSR_SSP_CACHE_BASE, self.cache.base_paddr)
        self.extension.enabled = True
        with self.machine.os_region("ssp.setup"):
            self._shadow_existing_pages()
        self._interval_timer = self.machine.timers.arm(
            self.machine.clock + self.interval_cycles,
            self.interval_end,
            period=self.interval_cycles,
            name="ssp-interval",
        )
        self._consolidation_timer = self.machine.timers.arm(
            self.machine.clock + self.consolidation_cycles,
            self.consolidate_tick,
            period=self.consolidation_cycles,
            name="ssp-consolidation",
        )
        self.machine.stats.add("ssp.fase_starts")

    def checkpoint_end(self) -> None:
        """Leave the FASE: a final commit, then disarm everything."""
        self.interval_end()
        self.consolidate_tick(force_all=True)
        if self._interval_timer is not None:
            self._interval_timer.cancel()
        if self._consolidation_timer is not None:
            self._consolidation_timer.cancel()
        self.extension.enabled = False
        self.machine.stats.add("ssp.fase_ends")

    # ------------------------------------------------------------------
    # shadow page management (OS allocation-path patch)
    # ------------------------------------------------------------------

    def _in_range(self, vpn: int) -> bool:
        lo, hi = self._range
        addr = vpn * PAGE_SIZE
        return lo <= addr < hi

    def _shadow_page(self, vpn: int, primary_pfn: int) -> None:
        if self.cache.get(vpn) is not None:
            return
        shadow_pfn = self.kernel.nvm_alloc.alloc()
        meta = self.cache.insert(vpn, primary_pfn, shadow_pfn)
        self.machine.phys_line_access(self.cache.entry_paddr(meta), is_write=True)
        self.machine.stats.add("ssp.shadow_pages")

    def _shadow_existing_pages(self) -> None:
        table = self.process.page_table
        assert table is not None
        layout = self.machine.layout
        for vpn, pte in table.iter_leaves():
            if self._in_range(vpn) and layout.mem_type_of_pfn(pte.pfn) is MemType.NVM:
                self._shadow_page(vpn, pte.pfn)

    def _on_event(self, event: str, pid: int, payload: dict) -> None:
        if (
            event == "fault_mapped"
            and self.extension.enabled
            and pid == self.process.pid
            and payload.get("mem_type") == MemType.NVM.value
            and self._in_range(int(payload["vpn"]))
        ):
            with self.machine.os_region("ssp.setup"):
                self._shadow_page(int(payload["vpn"]), int(payload["pfn"]))

    # ------------------------------------------------------------------
    # consistency interval end (checkpoint_end activities)
    # ------------------------------------------------------------------

    def interval_end(self) -> None:
        """Commit the interval: flush bitmaps + data, toggle current."""
        machine = self.machine
        with machine.os_region("ssp.interval"):
            # Hardware pushes every modified TLB bitmap to the SSP cache.
            for entry in machine.tlb.entries():
                if entry.shadow_pfn is None or not entry.updated_bitmap:
                    continue
                meta = self.cache.get(entry.vpn)
                if meta is None:
                    continue
                machine.phys_line_access(
                    self.cache.entry_paddr(meta), is_write=True
                )
                meta.updated_bitmap |= entry.updated_bitmap
                machine.stats.add("ssp.bitmap_writebacks")
            # Metadata inspection pass over every tracked page.
            machine.advance(INTERVAL_ENTRY_INSPECT_CYCLES * len(self.cache))
            # clwb all data updates of the interval, then the metadata.
            for line in sorted(self.extension.dirty_lines):
                machine.clwb(line * CACHE_LINE)
            touched = [m for m in self.cache.entries.values() if m.updated_bitmap]
            for meta in touched:
                machine.clwb(self.cache.entry_paddr(meta))
            machine.persist_barrier()
            machine.persist_point("ssp.interval.commit")
            # Commit: the routed-to copies become current.
            for meta in touched:
                meta.current_bitmap ^= meta.updated_bitmap
                meta.updated_bitmap = 0
            for entry in machine.tlb.entries():
                if entry.shadow_pfn is None:
                    continue
                meta = self.cache.get(entry.vpn)
                if meta is not None:
                    entry.current_bitmap = meta.current_bitmap
                entry.updated_bitmap = 0
            self.extension.dirty_lines.clear()
        machine.stats.add("ssp.intervals")

    # ------------------------------------------------------------------
    # asynchronous consolidation thread
    # ------------------------------------------------------------------

    def consolidate_tick(self, force_all: bool = False) -> None:
        """Merge page pairs for evicted (or, at FASE end, all) entries.

        Two-phase for crash safety: every data merge is made durable
        behind a persist barrier *before* any metadata bitmap clears.
        Clearing a bitmap first would declare the primary copy current
        while the merge writes still sat in the volatile write buffer —
        a crash in the gap would surface a partial sub-page.
        """
        machine = self.machine
        with machine.os_region("ssp.consolidation"):
            candidates = [
                meta
                for meta in self.cache.entries.values()
                if (meta.tlb_evicted or force_all) and meta.current_bitmap
            ]
            machine.advance(CONSOLIDATE_INSPECT_CYCLES * max(len(self.cache), 1))
            merged_lines = 0
            # Phase 1: merge shadow lines back into the primaries.
            for meta in candidates:
                lines = bin(meta.current_bitmap).count("1")
                machine.bulk_lines(lines, MemType.NVM, is_write=False)
                machine.bulk_lines(lines, MemType.NVM, is_write=True)
                merged_lines += lines
            if candidates:
                machine.persist_barrier()
                machine.persist_point("ssp.consolidate.data")
            # Phase 2: only now retire the metadata.
            for meta in candidates:
                meta.current_bitmap = 0
                meta.tlb_evicted = False
                machine.phys_line_access(
                    self.cache.entry_paddr(meta), is_write=True
                )
            if candidates:
                machine.persist_barrier()
                machine.persist_point("ssp.consolidate.meta")
        machine.stats.add("ssp.consolidations", len(candidates))
        machine.stats.add("ssp.consolidated_lines", merged_lines)
