"""SSP hardware: the gem5-side patches as a machine extension.

"We extend the page table walker hardware in gem5 to fill fields in the
TLB during an address translation on TLB miss ... we use Model Specific
Registers (MSRs) to communicate the virtual address range corresponding
to NVM allocation to hardware.  We also use MSR to pass the base
address of SSP cache ...  The address translation hardware checks the
address range and sets the corresponding bit in the updated bitmap in
TLB if a write happens to the NVM address range.  The translation
hardware generates a memory request to modify metadata in SSP cache
when a consistency interval ends, or a TLB entry eviction happens."
"""

from __future__ import annotations

from typing import Optional, Set

from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.arch.msr import MSR_NVM_RANGE_HI, MSR_NVM_RANGE_LO
from repro.arch.tlb import TlbEntry
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.ssp.sspcache import SspCache


class SspExtension(HardwareExtension):
    """TLB/walker/cache-controller patches for shadow sub-paging."""

    def __init__(self, cache: SspCache) -> None:
        self.cache = cache
        self.enabled = False
        #: Physical line numbers dirtied (routed) in the current
        #: consistency interval; the kernel clwb's these at interval end.
        self.dirty_lines: Set[int] = set()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _tracked(self, machine: Machine, vaddr: int) -> bool:
        lo = machine.msr.read(MSR_NVM_RANGE_LO)
        hi = machine.msr.read(MSR_NVM_RANGE_HI)
        return self.enabled and lo <= vaddr < hi

    def _touch_metadata(self, machine: Machine, entry_vpn: int, is_write: bool) -> None:
        meta = self.cache.get(entry_vpn)
        if meta is not None:
            machine.phys_line_access(self.cache.entry_paddr(meta), is_write)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def on_tlb_fill(self, machine: Machine, entry: TlbEntry) -> None:
        """Walker patch: load shadow fields into the new TLB entry."""
        if not self.enabled:
            return
        meta = self.cache.get(entry.vpn)
        if meta is None:
            return
        machine.phys_line_access(self.cache.entry_paddr(meta), is_write=False)
        entry.shadow_pfn = meta.shadow_pfn
        entry.current_bitmap = meta.current_bitmap
        entry.updated_bitmap = meta.updated_bitmap
        meta.tlb_evicted = False
        machine.stats.add("ssp.tlb_fills")

    def on_tlb_evict(self, machine: Machine, entry: TlbEntry) -> None:
        """TLB patch: push bitmaps to the SSP cache on eviction."""
        if not self.enabled or entry.shadow_pfn is None:
            return
        meta = self.cache.get(entry.vpn)
        if meta is None:
            return
        machine.phys_line_access(self.cache.entry_paddr(meta), is_write=True)
        meta.updated_bitmap |= entry.updated_bitmap
        meta.current_bitmap = entry.current_bitmap
        meta.tlb_evicted = True
        machine.stats.add("ssp.tlb_evict_writebacks")

    def route_store(
        self,
        machine: Machine,
        entry: TlbEntry,
        vaddr: int,
        paddr_line: int,
    ) -> Optional[int]:
        """Cache-controller patch: route the store to the alternate page
        at line granularity and mark the updated bitmap."""
        if entry.shadow_pfn is None or not self._tracked(machine, vaddr):
            return None
        line_index = (vaddr % PAGE_SIZE) // CACHE_LINE
        entry.updated_bitmap |= 1 << line_index
        meta = self.cache.get(entry.vpn)
        if meta is not None:
            meta.updated_bitmap |= 1 << line_index
            target_pfn = meta.working_pfn_for_line(line_index)
        else:
            target_pfn = entry.shadow_pfn
        routed = target_pfn * (PAGE_SIZE // CACHE_LINE) + line_index
        self.dirty_lines.add(routed)
        machine.stats.add("ssp.routed_stores")
        return routed

    def on_power_cycle(self, machine: Machine) -> None:
        self.enabled = False
        self.dirty_lines.clear()
