"""The SSP cache: per-page shadow metadata in NVM.

"The original and the extra page addresses and the bitmap values
(commit, current) are recorded in a metadata area (i.e., SSP cache)."
Entries are 32 bytes (two pfns + two 64-bit line bitmaps), laid out
consecutively in the reserved NVM area so hardware metadata requests
have real physical addresses to charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.common.units import CACHE_LINE, PAGE_SIZE

#: Bytes of metadata per tracked page (pfn pair + two bitmaps).
ENTRY_BYTES = 32
#: Cache lines per page — bitmap width.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE
FULL_BITMAP = (1 << LINES_PER_PAGE) - 1


@dataclass
class SspCacheEntry:
    """Metadata for one shadow-paired virtual page."""

    vpn: int
    primary_pfn: int
    shadow_pfn: int
    slot: int
    #: Bit i set -> line i's committed copy lives in the shadow page.
    current_bitmap: int = 0
    #: Bit i set -> line i modified since the last interval commit.
    updated_bitmap: int = 0
    #: The TLB entry for this page was evicted with in-flight updates;
    #: the consolidation thread owns merging it.
    tlb_evicted: bool = False

    def committed_pfn_for_line(self, line_index: int) -> int:
        if (self.current_bitmap >> line_index) & 1:
            return self.shadow_pfn
        return self.primary_pfn

    def working_pfn_for_line(self, line_index: int) -> int:
        """Where in-flight writes to this line are routed (the page
        *opposite* the committed copy)."""
        if (self.current_bitmap >> line_index) & 1:
            return self.primary_pfn
        return self.shadow_pfn


@dataclass
class SspCache:
    """All shadow metadata, resident at ``base_paddr`` in NVM.

    ``capacity`` bounds the slots to the reserved NVM area backing the
    cache; overflowing it would silently scribble over neighboring
    metadata regions, so insertion fails loudly instead.
    """

    base_paddr: int
    capacity: int = 1 << 20
    entries: Dict[int, SspCacheEntry] = field(default_factory=dict)
    _next_slot: int = 0

    def insert(self, vpn: int, primary_pfn: int, shadow_pfn: int) -> SspCacheEntry:
        if vpn in self.entries:
            raise ValueError(f"SSP cache already tracks vpn {vpn:#x}")
        if self._next_slot >= self.capacity:
            raise ValueError(
                f"SSP cache full ({self.capacity} slots); raise cache_capacity"
            )
        entry = SspCacheEntry(
            vpn=vpn,
            primary_pfn=primary_pfn,
            shadow_pfn=shadow_pfn,
            slot=self._next_slot,
        )
        self._next_slot += 1
        self.entries[vpn] = entry
        return entry

    def get(self, vpn: int) -> Optional[SspCacheEntry]:
        return self.entries.get(vpn)

    def remove(self, vpn: int) -> Optional[SspCacheEntry]:
        return self.entries.pop(vpn, None)

    def entry_paddr(self, entry: SspCacheEntry) -> int:
        return self.base_paddr + entry.slot * ENTRY_BYTES

    def evicted_entries(self) -> Iterator[SspCacheEntry]:
        for entry in self.entries.values():
            if entry.tlb_evicted:
                yield entry

    def __len__(self) -> int:
        return len(self.entries)


def split_bitmap_lines(bitmap: int) -> Tuple[int, ...]:
    """Indices of set bits (lines) in a page bitmap."""
    return tuple(i for i in range(LINES_PER_PAGE) if (bitmap >> i) & 1)
