"""Shadow Sub-Paging prototype (Section III-B, after Ni et al. [31]).

SSP keeps application memory in NVM consistent by allocating a shadow
physical page per virtual page and routing modified cache lines to the
alternate page, tracked by per-line ``updated``/``current`` bitmaps in
extended TLB entries.  Metadata lives in an NVM *SSP cache*; MSRs tell
the hardware which virtual range is tracked and where the metadata
region sits.  At each consistency interval end the kernel flushes TLB
bitmaps to the metadata region and clwb's all data/metadata updates; an
asynchronous OS thread consolidates page pairs for evicted TLB entries
— the aspect the original SSP paper left unevaluated and Kindle
studies.
"""

from repro.ssp.sspcache import SspCache, SspCacheEntry
from repro.ssp.manager import SspManager
from repro.ssp.extension import SspExtension

__all__ = ["SspCache", "SspCacheEntry", "SspManager", "SspExtension"]
