"""The OS tiering daemon: promote hot NVM pages, demote cold DRAM pages.

Each epoch the daemon scans the process's page table (a software walk,
charged), ranks pages by their per-epoch LLC-miss counts, then:

* **promotes** up to ``migration_budget`` of the hottest NVM pages
  whose count is at least ``hot_threshold`` — allocate a DRAM frame,
  flush + copy, update the PTE, free the NVM frame;
* **demotes** DRAM pages whose count stayed at zero for
  ``cold_epochs`` consecutive epochs — the reverse move.

Unlike HSCC there is no DRAM cache and no remap table: the page table
points at the single authoritative copy, so demand faults, persistence
machinery and the TLB see ordinary mappings.  The daemon refuses to
promote when DRAM headroom falls below ``dram_reserve_frames``, which
is what keeps it from fighting the frame allocator.

This prototype targets capacity studies (``persistence=False``
systems); combining exclusive tiering with the rebuild scheme's v2p
journal is left exactly as future work the framework makes possible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arch.tlb import TlbEntry
from repro.common.errors import KindleError
from repro.common.units import cycles_from_ms
from repro.gemos.kernel import Kernel
from repro.gemos.pagetable import Pte
from repro.gemos.process import Process
from repro.mem.hybrid import MemType
from repro.tiering.extension import AccessCounterExtension

#: Kernel cycles to inspect one PTE during the epoch scan.
SCAN_PTE_CYCLES = 6
PTES_PER_LINE = 8


class TieringDaemon:
    """Periodic exclusive-placement migration for one process."""

    #: Ranking policies for hot candidates: plain access counts, or
    #: row-buffer-locality-aware (after Yoon et al. [49] — pages whose
    #: NVM reads keep missing the row buffer gain the most from DRAM,
    #: while high-locality pages are nearly as fast left in NVM).
    POLICIES = ("count", "rbla")

    def __init__(
        self,
        kernel: Kernel,
        process: Process,
        epoch_ms: float = 4.0,
        hot_threshold: int = 8,
        cold_epochs: int = 2,
        migration_budget: int = 64,
        dram_reserve_frames: int = 128,
        auto_arm: bool = True,
        policy: str = "count",
    ) -> None:
        if epoch_ms <= 0:
            raise KindleError("epoch must be positive")
        if hot_threshold < 1 or migration_budget < 1 or cold_epochs < 1:
            raise KindleError("invalid tiering parameters")
        if policy not in self.POLICIES:
            raise KindleError(
                f"unknown tiering policy {policy!r}; choose from {self.POLICIES}"
            )
        self.policy = policy
        self.kernel = kernel
        self.machine = kernel.machine
        self.process = process
        self.epoch_cycles = cycles_from_ms(epoch_ms)
        self.hot_threshold = hot_threshold
        self.cold_epochs = cold_epochs
        self.migration_budget = migration_budget
        self.dram_reserve_frames = dram_reserve_frames
        self.extension = AccessCounterExtension(self)
        self.machine.attach_extension(self.extension)
        #: vpn -> consecutive zero-count epochs (DRAM pages only).
        self._cold_streak: Dict[int, int] = {}
        self.promotions = 0
        self.demotions = 0
        self._timer = None
        if auto_arm:
            self.arm()

    def arm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.machine.timers.arm(
            self.machine.clock + self.epoch_cycles,
            self.epoch,
            period=self.epoch_cycles,
            name="tiering",
        )

    def disarm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------

    def sync_count(self, entry: TlbEntry, charge: bool) -> None:
        table = self.process.page_table
        if table is None or entry.asid != self.process.asid:
            return
        pte = table.lookup(entry.vpn)
        if pte is None or pte.pfn != entry.pfn:
            entry.access_count = 0
            return
        pte.access_count += entry.access_count
        entry.access_count = 0
        if charge:
            self.machine.bulk_lines(1, MemType.DRAM, is_write=True)

    # ------------------------------------------------------------------
    # the epoch activity
    # ------------------------------------------------------------------

    def epoch(self) -> None:
        """Scan, rank, promote, demote, reset counts."""
        table = self.process.page_table
        if table is None:
            return
        machine = self.machine
        with machine.os_region("tiering"):
            for entry in machine.tlb.entries():
                if entry.asid == self.process.asid and entry.access_count:
                    self.sync_count(entry, charge=True)
            leaves = list(table.iter_leaves())
            machine.bulk_lines(
                (len(leaves) + PTES_PER_LINE - 1) // PTES_PER_LINE,
                MemType.DRAM,
                is_write=False,
            )
            machine.advance(SCAN_PTE_CYCLES * len(leaves))
            hot, cold = self._classify(leaves)
            promoted = self._promote(hot)
            demoted = self._demote(cold)
            for _vpn, pte in leaves:
                pte.access_count = 0
        machine.stats.add("tiering.epochs")
        machine.stats.add("tiering.promotions", promoted)
        machine.stats.add("tiering.demotions", demoted)

    def _classify(
        self, leaves: List[Tuple[int, Pte]]
    ) -> Tuple[List[Tuple[int, Pte]], List[Tuple[int, Pte]]]:
        layout = self.machine.layout
        hot: List[Tuple[int, Pte]] = []
        cold: List[Tuple[int, Pte]] = []
        for vpn, pte in leaves:
            tier = layout.mem_type_of_pfn(pte.pfn)
            if tier is MemType.NVM:
                self._cold_streak.pop(vpn, None)
                if pte.access_count >= self.hot_threshold:
                    hot.append((vpn, pte))
            else:
                if pte.access_count == 0:
                    streak = self._cold_streak.get(vpn, 0) + 1
                    self._cold_streak[vpn] = streak
                    if streak >= self.cold_epochs:
                        cold.append((vpn, pte))
                else:
                    self._cold_streak.pop(vpn, None)
        if self.policy == "rbla":
            row_misses = self.machine.controller.nvm_page_row_misses
            hot.sort(
                key=lambda item: (
                    row_misses.get(item[1].pfn, 0),
                    item[1].access_count,
                ),
                reverse=True,
            )
        else:
            hot.sort(key=lambda item: item[1].access_count, reverse=True)
        return hot, cold

    def _dram_headroom(self) -> int:
        return self.kernel.dram_alloc.free_count - self.dram_reserve_frames

    def _move(self, vpn: int, pte: Pte, to_type: MemType) -> None:
        machine = self.machine
        dst = self.kernel.allocator_for(to_type).alloc()
        machine.copy_page(pte.pfn, dst, flush_src=True)
        src_type = machine.layout.mem_type_of_pfn(pte.pfn)
        # Release through the kernel's reclamation policy: a committed
        # checkpoint may still name the source frame, in which case it
        # is parked until the next checkpoint commit instead of freed.
        self.kernel.frame_release.release_frame(self.process, pte.pfn, src_type)
        table = self.process.page_table
        assert table is not None
        table.update_pfn(vpn, dst)
        machine.tlb.invalidate(self.process.asid, vpn)

    def _promote(self, hot: List[Tuple[int, Pte]]) -> int:
        promoted = 0
        for vpn, pte in hot[: self.migration_budget]:
            if self._dram_headroom() <= 0:
                self.machine.stats.add("tiering.dram_pressure_skips")
                break
            self._move(vpn, pte, MemType.DRAM)
            promoted += 1
        self.promotions += promoted
        return promoted

    def _demote(self, cold: List[Tuple[int, Pte]]) -> int:
        demoted = 0
        for vpn, pte in cold[: self.migration_budget]:
            self._move(vpn, pte, MemType.NVM)
            self._cold_streak.pop(vpn, None)
            demoted += 1
        self.demotions += demoted
        return demoted
