"""Hot/cold page tiering prototype (after Ramos et al. [36]).

The paper's related work describes the classic alternative to
DRAM-as-cache: "a common strategy to attain memory performance is
maintaining frequently accessed memory pages in DRAM and others in
NVM", with pages *exclusively* placed in one tier and migrated by the
OS.  This third prototype demonstrates Kindle's extensibility beyond
the two schemes evaluated in the paper: a hardware access-counting
extension (LLC-miss counters in the TLB, synced to PTEs) feeds an OS
tiering daemon that promotes hot NVM pages into DRAM and demotes cold
DRAM pages back — updating the page table itself rather than keeping a
remap table, so DRAM holds the only copy.
"""

from repro.tiering.daemon import TieringDaemon
from repro.tiering.extension import AccessCounterExtension

__all__ = ["TieringDaemon", "AccessCounterExtension"]
