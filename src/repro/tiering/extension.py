"""Hardware access counting for the tiering prototype.

Counts LLC misses per page in the TLB entry (like HSCC's counting
hardware, but for *both* technologies: promotion needs hot-NVM
evidence, demotion needs cold-DRAM evidence) and spills the count into
the PTE on eviction.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.arch.tlb import TlbEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.tiering.daemon import TieringDaemon


class AccessCounterExtension(HardwareExtension):
    """TLB miss counters for every page, spilled to PTEs on eviction."""

    def __init__(self, daemon: "TieringDaemon") -> None:
        self.daemon = daemon

    def on_tlb_fill(self, machine: Machine, entry: TlbEntry) -> None:
        entry.access_count = 0

    def on_tlb_evict(self, machine: Machine, entry: TlbEntry) -> None:
        if entry.access_count:
            self.daemon.sync_count(entry, charge=True)

    def on_llc_miss(
        self,
        machine: Machine,
        entry: Optional[TlbEntry],
        paddr_line: int,
        is_write: bool,
    ) -> None:
        if entry is not None:
            entry.access_count += 1
            machine.stats.add("tiering.counted_misses")
