"""SARIF 2.1.0 emission for analysis findings.

Only the slice of the standard that code-review UIs actually render:
one run, one rule per distinct rule id, one result per finding with a
physical location.  Deterministic output (sorted rules, insertion-order
results) so cold and warm analysis runs can be compared byte for byte.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.core import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-analysis"


def render(findings: List[Finding], checkers) -> Dict[str, object]:
    """SARIF document for one analysis run.

    ``checkers`` supplies the rule metadata (id + description) for the
    driver's rule table; rules that produced no finding are included so
    consumers can tell "checked and clean" from "not checked".
    """
    rules = [
        {
            "id": checker.id,
            "shortDescription": {"text": checker.description or checker.id},
            "help": {
                "text": (
                    f"suppress with '# repro: allow-{checker.pragma}(<reason>)'"
                )
            },
        }
        for checker in sorted(checkers, key=lambda c: c.id)
    ]
    results = [
        {
            "ruleId": finding.checker,
            "level": "error",
            "message": {"text": f"[{finding.rule}] {finding.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "fixes": [],
            "properties": {"hint": finding.hint},
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
