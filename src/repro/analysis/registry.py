"""Checker registry.

Checkers self-register at import time via :func:`register`; the CLI
(and tests) pull them through :func:`all_checkers`, which imports the
:mod:`repro.analysis.checkers` package to trigger registration.  Each
checker declares:

``id``
    stable identifier used in rule ids, CLI ``--checkers`` filters and
    baseline entries;
``pragma``
    the ``# repro: allow-<pragma>(reason)`` name that suppresses it;
``kinds``
    which file classes it applies to (``"src"``, ``"test"``);
``description``
    one line for ``--list-checkers``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple, Type

from repro.analysis.core import AnalysisContext, Finding, SourceFile


class Checker:
    """Base class: one invariant, applied file by file."""

    id: str = "abstract"
    pragma: str = "abstract"
    kinds: Tuple[str, ...] = ("src", "test")
    description: str = ""

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        raise NotImplementedError

    def run(self, file: SourceFile, ctx: AnalysisContext) -> List[Finding]:
        """Apply to one file, honoring kind scoping and pragmas."""
        if file.kind not in self.kinds:
            return []
        return [f for f in self.check(file, ctx) if not self._suppressed(file, f)]

    def _suppressed(self, file: SourceFile, finding: Finding) -> bool:
        """A pragma suppresses a finding when it trails any line the
        flagged node spans, or stands alone on the line just above."""
        if not file.pragmas:
            return False
        last = max(finding.line, finding.end_line)
        return any(
            self.pragma in file.pragmas.get(line, ())
            for line in range(finding.line - 1, last + 1)
        )

    def finding(
        self, file: SourceFile, node: ast.AST, rule: str, message: str, hint: str
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(
            checker=self.id,
            rule=f"{self.id}.{rule}",
            path=file.rel,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=f"{hint}; or annotate '# repro: allow-{self.pragma}(<reason>)'",
            end_line=getattr(node, "end_lineno", line) or line,
        )


_CHECKERS: Dict[str, Checker] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: instantiate and index one checker."""
    instance = cls()
    if instance.id in _CHECKERS:
        existing = type(_CHECKERS[instance.id]).__name__
        raise ValueError(
            f"duplicate checker id {instance.id!r}: {cls.__name__} "
            f"collides with already-registered {existing}"
        )
    _CHECKERS[instance.id] = instance
    return cls


def all_checkers() -> List[Checker]:
    """Every registered checker, id-sorted (imports the checker package)."""
    import repro.analysis.checkers  # noqa: F401 - registration side effect

    return [_CHECKERS[name] for name in sorted(_CHECKERS)]


def get_checker(checker_id: str) -> Checker:
    import repro.analysis.checkers  # noqa: F401 - registration side effect

    try:
        return _CHECKERS[checker_id]
    except KeyError:
        raise KeyError(
            f"unknown checker {checker_id!r}; known: {sorted(_CHECKERS)}"
        ) from None
