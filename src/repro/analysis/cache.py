"""Incremental cache for per-module effect summaries.

Extraction (:func:`repro.analysis.effects.summarize`) is the analysis
cost that scales with tree size, and its output depends only on the
module's own source — so summaries are cached on disk and re-extracted
only for modules whose key changed.

The key reuses :func:`repro.exec.fingerprint.code_fingerprint`: when
the scanned file *is* the importable module (its on-disk source matches
what the import path serves), the key is the module's transitive
in-package import-closure hash — the same identity the execution cache
uses for sweep results.  That is deliberately conservative: editing any
dependency re-keys the module, so cross-module resolution facts can
never go stale inside a cached summary.  Files that are not importable
modules (test scripts, loose files) key on their own content hash.

A cache entry is one JSON document per module; format drift is handled
by a version tag — unknown versions read as misses.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

from repro.analysis.core import SourceFile
from repro.analysis.effects import ModuleSummary, summarize
from repro.exec.fingerprint import code_fingerprint, module_source

FORMAT = "repro-analysis-summary/v1"

#: Default location, inside the gitignored artifacts tree.
DEFAULT_CACHE_DIR = Path("artifacts") / "cache" / "analysis"


class SummaryCache:
    """Disk-backed :class:`ModuleSummary` store keyed on code identity."""

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    # -- keying --------------------------------------------------------

    def key_for(self, file: SourceFile) -> str:
        """Import-closure fingerprint when the file is the importable
        module, else a hash of the file's own text."""
        if file.module:
            loaded = module_source(file.module)
            if loaded is not None and loaded[0] == file.text.encode("utf-8"):
                return code_fingerprint(file.module)
        return hashlib.sha256(file.text.encode("utf-8")).hexdigest()

    def _entry_path(self, file: SourceFile) -> Path:
        slug = (file.module or file.rel).replace("/", ".").replace(".py", "")
        return self.cache_dir / f"{slug}.json"

    # -- read/write ----------------------------------------------------

    def summary_for(self, file: SourceFile) -> ModuleSummary:
        """Cached summary when the key matches, else a fresh extraction
        (stored back before returning)."""
        key = self.key_for(file)
        path = self._entry_path(file)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = None
        if (
            isinstance(document, dict)
            and document.get("format") == FORMAT
            and document.get("key") == key
        ):
            try:
                summary = ModuleSummary.from_json(document["summary"])
            except (KeyError, TypeError):
                summary = None
            if summary is not None:
                self.hits += 1
                return summary
        self.misses += 1
        summary = summarize(file)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(
                    {"format": FORMAT, "key": key, "summary": summary.to_json()},
                    sort_keys=True,
                ),
                encoding="utf-8",
            )
        except OSError:
            pass  # a read-only cache dir degrades to cold extraction
        return summary

    def stats(self) -> Dict[str, object]:
        total = self.hits + self.misses
        return {
            "modules": total,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": (self.hits / total) if total else 0.0,
        }


def attach_cache(ctx, cache_dir: Optional[Path]) -> Optional[SummaryCache]:
    """Hang a cache on an analysis context for the graph layer to use."""
    if cache_dir is None:
        return None
    cache = SummaryCache(cache_dir)
    ctx._summary_cache = cache  # type: ignore[attr-defined]
    return cache
