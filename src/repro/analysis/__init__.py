"""Static invariant analysis for the simulator's own source tree.

The repo's runtime guarantees — byte-identical parallel/serial replay,
exhaustive crash-point enumeration, geometry derived from
:mod:`repro.common.units` — are *conventions*, and conventions rot: one
unhooked NVM write or one ``random.random()`` in a new subsystem
silently invalidates the golden-equivalence and crash-matrix tests
three PRs later.  This package walks the source with :mod:`ast` (no
code is imported or executed) and enforces those conventions at review
time.

Five per-file checkers ship with the repo (see
:mod:`repro.analysis.checkers`):

``determinism``
    wall-clock reads, global RNG draws, environment reads, salted
    ``hash()`` and unordered-set iteration outside
    ``repro.common.{rng,timers}``;
``persist-barrier``
    NVM-state mutations that bypass the persist hook / consistency
    primitives and would escape crash-point enumeration;
``geometry``
    literal page/cache-line arithmetic where
    :mod:`repro.common.units` constants exist;
``stats-key``
    drift between precomputed hot-path stat-key attributes and the
    counter names they shadow;
``task-safety``
    ``repro.exec`` task targets that are not top-level,
    import-resolvable, mutable-default-free functions.

Four *whole-program* checkers reason over a cross-module call graph
with fixed-point effect propagation (:mod:`repro.analysis.graph`,
built from :mod:`repro.analysis.effects` summaries) instead of one
file at a time:

``counter-parity``
    every stat key the scalar replay path bumps is aggregated by a
    batch run-commit kernel, and the kernels invent no batch-only
    keys;
``fallback-coverage``
    every dynamic scalar boundary (walkers, fault/persist hooks,
    extensions, timers, os-mode) has a kernel eligibility guard and a
    row in the EXPERIMENTS.md scalar-fallback taxonomy;
``clock-parity``
    no ``advance()``/clock write reachable from the batch commit path
    outside the kernel module;
``observer-purity``
    interference-monitor hooks stay pure: own state and
    ``interference.*`` counters only.

Run ``python -m repro.analysis`` (text, ``--format json`` or
``--format sarif``, optional ``--baseline`` suppression file,
``--changed`` fast path, ``--cache-dir`` incremental effect-summary
cache keyed on import-closure fingerprints); intentional violations
carry an inline pragma::

    t0 = time.perf_counter()  # repro: allow-nondet(wall-clock bench measurement)
"""

from __future__ import annotations

from repro.analysis.core import AnalysisContext, Finding, SourceFile
from repro.analysis.registry import all_checkers, get_checker

__all__ = [
    "AnalysisContext",
    "Finding",
    "SourceFile",
    "all_checkers",
    "get_checker",
]
