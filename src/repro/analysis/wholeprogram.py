"""Base machinery for whole-program (graph-backed) checkers.

Per-file checkers re-derive everything from the one file they are
handed; the four drift checkers instead analyze the entire scanned
tree once — through :func:`repro.analysis.graph.project_graph` — and
then hand each file its slice of the findings.  This base class owns
that once-per-context memoization, the activation gate (a
whole-program checker only fires when the modules it reasons about are
actually in the scanned set, so linting a stray file never produces
half-blind verdicts), and finding construction without an AST node
(graph findings anchor on ``(path, line)`` pairs from effect sites).

Pragmas still work: a ``# repro: allow-<name>(reason)`` trailing the
anchored line, or standalone on the line above, suppresses the finding
exactly like any per-file checker.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.analysis.core import AnalysisContext, Finding, SourceFile
from repro.analysis.registry import Checker

#: The scalar reference implementation: per-op replay entry point.
SCALAR_ROOTS: Tuple[str, ...] = ("Machine.access",)

#: The batched kernels whose commits must mirror the scalar path.
BATCH_ROOTS: Tuple[str, ...] = (
    "BatchReplayer._miss_run",
    "BatchReplayer._commit",
)

#: The general kernel: interprets eligible ops against live structures
#: and must be able to produce *every* scalar stat key.  (`_commit`
#: only covers the all-fast-hit special case, so aggregation
#: completeness is judged against this root alone.)
BATCH_KERNEL_ROOT = "BatchReplayer._miss_run"

#: Modules the parity story is about; checkers gate on these being in
#: the scanned set.
SCALAR_MODULE = "repro.arch.machine"
BATCH_MODULE = "repro.replay.batch"


class WholeProgramChecker(Checker):
    """One whole-tree analysis, findings dealt out per file."""

    kinds = ("src",)
    #: modules that must be in the scanned set for the checker to run.
    required_modules: Tuple[str, ...] = (SCALAR_MODULE, BATCH_MODULE)

    def analyze(self, ctx: AnalysisContext) -> List[Finding]:
        raise NotImplementedError

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        for finding in self._findings(ctx):
            if finding.path == file.rel:
                yield finding

    def _findings(self, ctx: AnalysisContext) -> List[Finding]:
        store = getattr(ctx, "_wholeprogram_findings", None)
        if store is None:
            store = {}
            ctx._wholeprogram_findings = store  # type: ignore[attr-defined]
        if self.id not in store:
            if all(m in ctx.by_module for m in self.required_modules):
                found = self.analyze(ctx)
                found.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
                store[self.id] = found
            else:
                store[self.id] = []
        return store[self.id]

    def site_finding(
        self, path: str, line: int, rule: str, message: str, hint: str
    ) -> Finding:
        """A finding anchored on an effect site rather than an AST node."""
        return Finding(
            checker=self.id,
            rule=f"{self.id}.{rule}",
            path=path,
            line=line,
            col=0,
            message=message,
            hint=(
                f"{hint}; or annotate "
                f"'# repro: allow-{self.pragma}(<reason>)'"
            ),
            end_line=line,
        )


def resolve_roots(graph, qualnames: Tuple[str, ...]) -> List[str]:
    """Function ids for the configured root qualnames (missing roots
    are skipped — the activation gate already vouched for the modules)."""
    fids = []
    for qualname in qualnames:
        fid = graph.find_function(qualname)
        if fid is not None:
            fids.append(fid)
    return fids
