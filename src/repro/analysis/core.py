"""AST walking core shared by every checker.

A checker sees one :class:`SourceFile` at a time — parsed tree, raw
lines, dotted module name and suppression pragmas — plus the
:class:`AnalysisContext` holding the whole scanned set, so cross-file
checks (does this task target resolve to a top-level function?) stay
static.  Module resolution outside the scanned set reuses the
import-closure walker's source loader from
:mod:`repro.exec.fingerprint`: the same machinery that decides what a
cached result's code fingerprint covers decides here what the linter
can see.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exec.fingerprint import module_source

#: ``# repro: allow-<name>(<reason>)`` — suppresses findings of the
#: checker whose pragma name is ``<name>`` on the statement it ends.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow-([a-z-]+)\(([^()]*)\)")

_SKIP_DIRS = {"__pycache__", ".git", "artifacts", ".hypothesis"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    checker: str  #: checker id, e.g. ``"determinism"``
    rule: str  #: sub-rule id, e.g. ``"determinism.wallclock"``
    path: str  #: repo-relative posix path
    line: int
    col: int
    message: str
    hint: str
    #: Last physical line of the flagged statement (pragma scan range).
    end_line: int = 0

    def identity(self) -> Tuple[str, str, str]:
        """Baseline-matching key: stable across unrelated line shifts."""
        return (self.checker, self.path, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: [{self.rule}] "
            f"{self.message} (fix: {self.hint})"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class SourceFile:
    """One parsed python file under analysis."""

    path: Path
    rel: str
    kind: str  #: ``"src"`` or ``"test"``
    module: Optional[str]
    text: str
    tree: ast.Module
    #: line number -> pragma names allowed on that line.
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def suppressed(self, node: ast.AST, pragma: str) -> bool:
        """True if ``node``'s statement carries ``# repro: allow-<pragma>``.

        The pragma may sit on any physical line the node spans (trailing
        comments on continued lines land on the last line).
        """
        if not self.pragmas:
            return False
        first = getattr(node, "lineno", 0)
        last = getattr(node, "end_lineno", first) or first
        for line in range(first, last + 1):
            if pragma in self.pragmas.get(line, ()):
                return True
        return False


class SourceError(Exception):
    """A file under analysis could not be read or parsed."""


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name from the longest ``__init__.py`` chain."""
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    package_parts: List[str] = []
    while (current / "__init__.py").is_file():
        package_parts.append(current.name)
        current = current.parent
    if not package_parts:
        return None
    return ".".join(list(reversed(package_parts)) + parts)


def _classify(rel: str) -> str:
    parts = rel.split("/")
    if "tests" in parts or parts[-1].startswith("test_"):
        return "test"
    return "src"


def load_source_file(path: Path, repo_root: Path) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (pragmas included)."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise SourceError(f"{path}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise SourceError(f"{path}: syntax error: {exc}") from exc
    try:
        rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in PRAGMA_RE.finditer(line):
            name, reason = match.group(1), match.group(2).strip()
            if reason:  # a pragma without a reason does not count
                pragmas.setdefault(lineno, set()).add(name)
    return SourceFile(
        path=path,
        rel=rel,
        kind=_classify(rel),
        module=_module_name(path.resolve()),
        text=text,
        tree=tree,
        pragmas=pragmas,
    )


def discover(paths: Iterable[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through directly)."""
    found: List[Path] = []
    for base in paths:
        if base.is_file():
            if base.suffix == ".py":
                found.append(base)
            continue
        for candidate in sorted(base.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            found.append(candidate)
    # De-duplicate while preserving order (overlapping path arguments).
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in found:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


class AnalysisContext:
    """The scanned file set plus cross-file module resolution."""

    def __init__(self, files: List[SourceFile], repo_root: Path) -> None:
        self.files = files
        self.repo_root = repo_root
        self.by_module: Dict[str, SourceFile] = {
            f.module: f for f in files if f.module
        }
        self._tree_cache: Dict[str, Optional[ast.Module]] = {}

    def module_tree(self, name: str) -> Optional[ast.Module]:
        """Parsed AST of module ``name``, scanned set first, then the
        fingerprint walker's loader (import path, nothing executed)."""
        if name in self._tree_cache:
            return self._tree_cache[name]
        tree: Optional[ast.Module] = None
        scanned = self.by_module.get(name)
        if scanned is not None:
            tree = scanned.tree
        else:
            loaded = module_source(name)
            if loaded is not None:
                try:
                    tree = ast.parse(loaded[0])
                except SyntaxError:
                    tree = None
        self._tree_cache[name] = tree
        return tree

    def module_exists(self, name: str) -> bool:
        return self.module_tree(name) is not None


def build_context(paths: Iterable[Path], repo_root: Path) -> AnalysisContext:
    files = [load_source_file(p, repo_root) for p in discover(paths)]
    return AnalysisContext(files, repo_root)


# ----------------------------------------------------------------------
# small AST helpers shared by checkers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_basename(node: ast.AST) -> Optional[str]:
    """Last identifier of a call receiver: ``self.machine.physmem`` -> ``physmem``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
