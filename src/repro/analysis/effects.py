"""Per-module effect extraction for the whole-program analysis layer.

This module turns one parsed :class:`~repro.analysis.core.SourceFile`
into a :class:`ModuleSummary`: a purely *local* digest of every class
and function in the file — which stat counters each function bumps,
where it charges cycles, which structures it mutates, which calls it
makes and on what receiver chains, plus the class-level facts needed to
resolve those calls across modules (attribute types assigned in
``__init__``, precomputed ``*_key`` stat-key attributes, callback
bindings like ``self.tlb.on_evict = self._tlb_evict_hook``).

Locality is the load-bearing property: a summary depends only on the
module's own source text, never on any other module, so summaries are
cacheable per module (:mod:`repro.analysis.cache`) and the cross-module
work — receiver typing, call-graph edges, fixed-point propagation —
happens later in :mod:`repro.analysis.graph` from summaries alone.
Everything here is plain JSON data (lists, dicts, strings, ints) for
the same reason.

Receiver descriptors
--------------------

A call/mutation receiver is described as a chain ``[root, a, b, ...]``:

* ``["self", "machine", "timers"]`` — ``self.machine.timers``;
* ``["@view", "tlb"]`` — attribute ``tlb`` of local/parameter ``view``;
* ``["?"]`` — an expression the extractor does not model (a subscript,
  a call result, a literal); the graph treats calls on it as dynamic.

Counter-key specs
-----------------

A counter bump site records *how* the key was written, not a resolved
key: ``["const", "tlb.hit"]``, ``["attr", <receiver>, "_hit_key"]``
(a precomputed key attribute, resolved through class facts by the
graph), ``["local", "pair_key"]`` (a local whose source the graph
chases) or ``["dynamic"]``.  The graph normalizes specs into tokens so
the scalar and batched replay paths can be compared key by key.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import SourceFile

#: Methods of builtin containers (dict/list/set/deque) that mutate the
#: receiver in place.  Calls to these are recorded as mutations, and
#: the graph never name-resolves them to scanned classes (a class
#: method named ``pop`` would otherwise match every ``somedict.pop``).
CONTAINER_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

#: Non-mutating builtin-container methods the graph must also never
#: name-resolve (``Stats.get`` exists; ``somedict.get`` is not a call
#: to it).
CONTAINER_READERS = frozenset(
    {"copy", "count", "get", "index", "items", "keys", "values"}
)

#: Fresh-container constructors: an attribute only ever assigned one of
#: these is *owned* state of its class (observer-purity relies on the
#: own/foreign split).
_FRESH_CALLS = frozenset({"dict", "list", "set", "deque", "defaultdict", "Counter"})


def _is_counters_expr(node: ast.AST) -> bool:
    """Does this expression denote the live stat-counter mapping?"""
    if isinstance(node, ast.Name):
        return node.id == "counters" or node.id.endswith("_counters")
    if isinstance(node, ast.Attribute):
        return node.attr in ("counters", "_counters")
    return False


def receiver_chain(node: ast.AST) -> List[str]:
    """Descriptor chain for a receiver expression (see module doc)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        root = "self" if node.id == "self" else f"@{node.id}"
        return [root, *reversed(parts)]
    return ["?"]


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Innermost class name of an annotation: ``Optional[Stats]`` ->
    ``Stats``, ``List[X]`` -> ``list:X``, ``"Machine"`` -> ``Machine``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        outer = _annotation_name(node.value)
        inner = _annotation_name(node.slice)
        if outer in ("Optional", "Final", "ClassVar"):
            return inner
        if outer in ("List", "list", "Sequence", "Iterable", "Tuple", "tuple"):
            return f"list:{inner}" if inner else None
    return None


def _constructor_name(node: ast.AST) -> Optional[str]:
    """``Cache(...)`` -> ``Cache``; ``mod.Cls(...)`` -> ``mod.Cls``."""
    if isinstance(node, ast.Call):
        func = node.func
        parts: List[str] = []
        while isinstance(func, ast.Attribute):
            parts.append(func.attr)
            func = func.value
        if isinstance(func, ast.Name):
            parts.append(func.id)
            return ".".join(reversed(parts))
    return None


def _value_candidates(node: ast.AST) -> List[ast.AST]:
    """The expressions a value may come from (IfExp/BoolOp branches)."""
    if isinstance(node, ast.IfExp):
        return [*_value_candidates(node.body), *_value_candidates(node.orelse)]
    if isinstance(node, ast.BoolOp):
        out: List[ast.AST] = []
        for value in node.values:
            out.extend(_value_candidates(value))
        return out
    return [node]


def _static_key_suffix(node: ast.AST) -> Optional[str]:
    """Trailing constant of an f-string (``f"{x}.hit"`` -> ``.hit``)."""
    if isinstance(node, ast.JoinedStr) and node.values:
        last = node.values[-1]
        if isinstance(last, ast.Constant) and isinstance(last.value, str):
            return last.value
    return None


def _static_prefix(node: ast.AST) -> Optional[str]:
    """Leading constant of an f-string or a constant string."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


@dataclass
class ClassFacts:
    """Resolution-relevant facts about one class definition."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, int] = field(default_factory=dict)  #: name -> line
    #: attr -> constructor name as written (``self.l1 = Cache(...)``).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attr -> annotation of the parameter it copies (``self.stats = stats``).
    attr_params: Dict[str, str] = field(default_factory=dict)
    #: attr -> annotated type (``self.extensions: List[HardwareExtension]``).
    attr_annotations: Dict[str, str] = field(default_factory=dict)
    #: attrs only ever assigned fresh containers/literals (owned state).
    fresh_attrs: List[str] = field(default_factory=list)
    #: attrs assigned at least once from a non-fresh expression.
    foreign_attrs: List[str] = field(default_factory=list)
    #: ``*_key`` attr -> ["const", key] | ["suffix", sfx] | ["copy", chain+attr].
    key_attrs: Dict[str, List] = field(default_factory=dict)
    #: method -> static leading constant of the strings it returns.
    return_prefixes: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": self.attr_types,
            "attr_params": self.attr_params,
            "attr_annotations": self.attr_annotations,
            "fresh_attrs": self.fresh_attrs,
            "foreign_attrs": self.foreign_attrs,
            "key_attrs": self.key_attrs,
            "return_prefixes": self.return_prefixes,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "ClassFacts":
        return cls(**data)


@dataclass
class FunctionEffects:
    """Local (non-transitive) effects of one function or method."""

    qualname: str  #: ``Class.method`` or ``func`` (module-relative)
    line: int
    cls: Optional[str] = None
    #: [key_spec, line] — stat-counter bump sites (subscript writes on
    #: a counters mapping, plus ``stats.add(...)`` call sites).
    counters: List[List] = field(default_factory=list)
    #: [receiver, line] — ``<recv>.advance(...)`` call sites.
    advances: List[List] = field(default_factory=list)
    #: [receiver, line] — assignments to ``<recv>.clock``.
    clock_writes: List[List] = field(default_factory=list)
    #: [receiver, method, line] — every call on a receiver chain.
    calls: List[List] = field(default_factory=list)
    #: [receiver, op, line] — structure mutations: ``setattr`` (dotted
    #: attribute assignment), ``setitem`` (non-counter subscript write),
    #: or a container-mutator method name.
    mutations: List[List] = field(default_factory=list)
    #: local name -> constructor name as written (``m = Machine()``).
    local_types: Dict[str, str] = field(default_factory=dict)
    #: local name -> receiver chain it aliases (``walker = m.walker``),
    #: or ["!call", method] for ``x = self.m(...)``, or ["!iter", *chain]
    #: for ``for x in <chain>``.
    local_sources: Dict[str, List[str]] = field(default_factory=dict)
    #: parameter name -> annotation name.
    params: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "cls": self.cls,
            "counters": self.counters,
            "advances": self.advances,
            "clock_writes": self.clock_writes,
            "calls": self.calls,
            "mutations": self.mutations,
            "local_types": self.local_types,
            "local_sources": self.local_sources,
            "params": self.params,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "FunctionEffects":
        return cls(**data)


@dataclass
class ModuleSummary:
    """Everything the graph layer needs to know about one module."""

    module: str
    rel: str
    kind: str
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    functions: Dict[str, FunctionEffects] = field(default_factory=dict)
    #: local name -> dotted origin (``Cache`` -> ``repro.arch.cache.Cache``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: callback attr -> [Class.method, ...]: ``x.on_evict = self._hook``.
    bindings: Dict[str, List[str]] = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "module": self.module,
            "rel": self.rel,
            "kind": self.kind,
            "classes": {k: v.to_json() for k, v in self.classes.items()},
            "functions": {k: v.to_json() for k, v in self.functions.items()},
            "imports": self.imports,
            "bindings": self.bindings,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            rel=data["rel"],
            kind=data["kind"],
            classes={
                k: ClassFacts.from_json(v) for k, v in data["classes"].items()
            },
            functions={
                k: FunctionEffects.from_json(v)
                for k, v in data["functions"].items()
            },
            imports=data["imports"],
            bindings=data["bindings"],
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------


def _collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module.split(".")
                base_parts = parts[: len(parts) - node.level] or [package]
                base = ".".join(base_parts)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{target}.{alias.name}"
    return imports


def _key_spec(node: ast.AST) -> Optional[List]:
    """Class-level key-attribute spec from an assignment RHS."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ["const", node.value]
    suffix = _static_key_suffix(node)
    if suffix is not None:
        return ["suffix", suffix]
    if isinstance(node, ast.Attribute) and node.attr.endswith("_key"):
        return ["copy", receiver_chain(node.value) + [node.attr]]
    return None


class _ClassScanner:
    """Collects :class:`ClassFacts` from one class definition."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.facts = ClassFacts(name=cls.name, line=cls.lineno)
        for base in cls.bases:
            name = _annotation_name(base)
            if name:
                self.facts.bases.append(name)
        fresh: Dict[str, bool] = {}
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.facts.methods[item.name] = item.lineno
                self._scan_method(item, fresh)
        for attr, only_fresh in fresh.items():
            (self.facts.fresh_attrs if only_fresh else self.facts.foreign_attrs).append(attr)
        self.facts.fresh_attrs.sort()
        self.facts.foreign_attrs.sort()

    def _scan_method(self, fn: ast.AST, fresh: Dict[str, bool]) -> None:
        params = {
            a.arg: _annotation_name(a.annotation)
            for a in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        }
        returned_names: List[str] = []
        local_strings: Dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                annotation = (
                    node.annotation if isinstance(node, ast.AnnAssign) else None
                )
                for target in targets:
                    self._scan_attr_assign(
                        target, value, annotation, params, fresh
                    )
                    if (
                        isinstance(target, ast.Name)
                        and value is not None
                    ):
                        prefix = _static_prefix(value)
                        if prefix is not None:
                            local_strings[target.id] = prefix
            elif isinstance(node, ast.Return) and node.value is not None:
                prefix = _static_prefix(node.value)
                if prefix is not None:
                    returned_names.append(prefix and f"\x00const:{prefix}")
                elif isinstance(node.value, ast.Name):
                    returned_names.append(node.value.id)
        # A method returning only strings with one common static prefix
        # (directly, or via locals) advertises that prefix.
        prefixes = []
        for item in returned_names:
            if item.startswith("\x00const:"):
                prefixes.append(item[len("\x00const:"):])
            elif item in local_strings:
                prefixes.append(local_strings[item])
        if prefixes and len(prefixes) == len(returned_names):
            common = prefixes[0]
            for p in prefixes[1:]:
                while not p.startswith(common) and common:
                    common = common[:-1]
            if common:
                self.facts.return_prefixes[fn.name] = common

    def _scan_attr_assign(
        self,
        target: ast.AST,
        value: Optional[ast.AST],
        annotation: Optional[ast.AST],
        params: Dict[str, Optional[str]],
        fresh: Dict[str, bool],
    ) -> None:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        attr = target.attr
        if annotation is not None:
            name = _annotation_name(annotation)
            if name:
                self.facts.attr_annotations.setdefault(attr, name)
        if value is None:
            return
        if attr.endswith("_key"):
            spec = _key_spec(value)
            if spec is not None:
                self.facts.key_attrs.setdefault(attr, spec)
        is_fresh = True
        for candidate in _value_candidates(value):
            ctor = _constructor_name(candidate)
            if ctor is not None:
                short = ctor.split(".")[-1]
                if short not in _FRESH_CALLS:
                    self.facts.attr_types.setdefault(attr, ctor)
                    is_fresh = False
            elif isinstance(candidate, ast.Name):
                ann = params.get(candidate.id)
                if ann:
                    self.facts.attr_params.setdefault(attr, ann)
                is_fresh = False
            elif isinstance(candidate, (ast.Dict, ast.List, ast.Set, ast.Constant)):
                pass  # fresh/literal
            else:
                is_fresh = False
        fresh[attr] = fresh.get(attr, True) and is_fresh


class _FunctionScanner:
    """Collects :class:`FunctionEffects` from one def (nested defs are
    folded into the enclosing function: the kernel's inline helpers are
    part of its effect surface)."""

    def __init__(self, fn: ast.AST, qualname: str, cls: Optional[str]) -> None:
        self.effects = FunctionEffects(
            qualname=qualname, line=fn.lineno, cls=cls
        )
        self.effects.params = {
            a.arg: _annotation_name(a.annotation) or ""
            for a in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
            if _annotation_name(a.annotation)
        }
        for stmt in fn.body:
            self._scan(stmt)

    def _scan(self, node: ast.AST) -> None:
        handler = getattr(self, f"_scan_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
            return
        for child in ast.iter_child_nodes(node):
            self._scan(child)

    # -- statements ----------------------------------------------------

    def _scan_Assign(self, node: ast.Assign) -> None:
        self._scan(node.value)
        for target in node.targets:
            self._record_target(target, node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._record_local(node.targets[0].id, node.value)

    def _scan_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._scan(node.value)
            self._record_target(node.target, node)
            if isinstance(node.target, ast.Name):
                self._record_local(node.target.id, node.value)
                ann = _annotation_name(node.annotation)
                if ann:
                    self.effects.local_types.setdefault(node.target.id, ann)

    def _scan_AugAssign(self, node: ast.AugAssign) -> None:
        self._scan(node.value)
        self._record_target(node.target, node, aug=True)

    def _scan_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            chain = receiver_chain(node.iter)
            if chain != ["?"]:
                self.effects.local_sources.setdefault(
                    node.target.id, ["!iter", *chain]
                )
        for child in ast.iter_child_nodes(node):
            self._scan(child)

    def _scan_Call(self, node: ast.Call) -> None:
        for child in ast.iter_child_nodes(node):
            self._scan(child)
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = receiver_chain(func.value)
            method = func.attr
        elif isinstance(func, ast.Name) and func.id != "self":
            receiver = [f"@{func.id}"]
            method = "__call__"
        else:
            return
        line = node.lineno
        if method == "advance":
            self.effects.advances.append([receiver, line])
        if method in CONTAINER_MUTATORS and method != "add":
            self.effects.mutations.append([receiver, method, line])
        if method == "add" and self._is_stats_receiver(func.value):
            self._record_stats_add(node)
        self.effects.calls.append([receiver, method, line])

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _is_stats_receiver(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in ("stats", "_stats")
        if isinstance(node, ast.Name):
            return node.id in ("stats", "_stats")
        return False

    def _record_stats_add(self, call: ast.Call) -> None:
        spec: List = ["dynamic"]
        if call.args:
            specs = self._key_specs_from(call.args[0])
            for s in specs:
                self.effects.counters.append([s, call.lineno])
            return
        self.effects.counters.append([spec, call.lineno])

    def _key_specs_from(self, node: ast.AST) -> List[List]:
        specs: List[List] = []
        for candidate in _value_candidates(node):
            if isinstance(candidate, ast.Constant) and isinstance(
                candidate.value, str
            ):
                specs.append(["const", candidate.value])
            elif isinstance(candidate, ast.Attribute):
                specs.append(
                    ["attr", receiver_chain(candidate.value), candidate.attr]
                )
            elif isinstance(candidate, ast.Name):
                specs.append(["local", candidate.id])
            else:
                specs.append(["dynamic"])
        return specs

    def _record_target(
        self, target: ast.AST, stmt: ast.AST, aug: bool = False
    ) -> None:
        line = stmt.lineno
        if isinstance(target, ast.Subscript):
            if _is_counters_expr(target.value):
                for spec in self._key_specs_from(target.slice):
                    self.effects.counters.append([spec, line])
            else:
                self.effects.mutations.append(
                    [receiver_chain(target.value), "setitem", line]
                )
        elif isinstance(target, ast.Attribute):
            if target.attr == "clock":
                self.effects.clock_writes.append(
                    [receiver_chain(target.value), line]
                )
            chain = receiver_chain(target.value)
            self.effects.mutations.append([chain + [target.attr], "setattr", line])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, stmt, aug=aug)

    def _record_local(self, name: str, value: ast.AST) -> None:
        for candidate in _value_candidates(value):
            ctor = _constructor_name(candidate)
            if ctor is not None and ctor.split(".")[-1] not in _FRESH_CALLS:
                if (
                    isinstance(candidate, ast.Call)
                    and isinstance(candidate.func, ast.Attribute)
                    and isinstance(candidate.func.value, ast.Name)
                    and candidate.func.value.id == "self"
                ):
                    # x = self.method(...): remember for return-prefix
                    # resolution (interference pair keys).
                    self.effects.local_sources.setdefault(
                        name, ["!call", candidate.func.attr]
                    )
                else:
                    self.effects.local_types.setdefault(name, ctor)
                return
            if isinstance(candidate, (ast.Attribute, ast.Name)):
                chain = receiver_chain(candidate)
                if chain != ["?"] and chain != [f"@{name}"]:
                    self.effects.local_sources.setdefault(name, chain)
                    return


def _scan_binding(node: ast.Assign, bindings: Dict[str, List[str]], cls: Optional[str]) -> None:
    """``<expr>.attr = self.method`` registers a callback binding."""
    value = node.value
    if not (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
        and cls is not None
    ):
        return
    method = value.attr
    for target in node.targets:
        if isinstance(target, ast.Attribute) and not (
            isinstance(target.value, ast.Name) and target.value.id == "self"
        ):
            bindings.setdefault(target.attr, [])
            ref = f"{cls}.{method}"
            if ref not in bindings[target.attr]:
                bindings[target.attr].append(ref)


def summarize(file: SourceFile) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one source file."""
    module = file.module or file.rel
    summary = ModuleSummary(module=module, rel=file.rel, kind=file.kind)
    summary.imports = _collect_imports(file.tree, module)

    def scan_function(fn: ast.AST, cls: Optional[str]) -> None:
        qual = f"{cls}.{fn.name}" if cls else fn.name
        summary.functions[qual] = _FunctionScanner(fn, qual, cls).effects
        if file.kind == "src":
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    _scan_binding(node, summary.bindings, cls)

    for node in file.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, None)
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _ClassScanner(node).facts
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(item, node.name)
    return summary
