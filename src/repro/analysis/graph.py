"""Cross-module call graph and transitive effect summaries.

:class:`ProjectGraph` stitches the per-module
:class:`~repro.analysis.effects.ModuleSummary` digests into a
whole-program view: receiver chains are typed through constructor
assignments, parameter annotations and local aliases; attribute calls
resolve to concrete methods (including callback bindings like
``self.tlb.on_evict = self._tlb_evict_hook``); and a fixed-point
worklist propagates effect summaries through helpers so a checker can
ask "which stat counters does the scalar replay path bump,
transitively?" and compare the answer against the batched kernels.

Resolution is deliberately tiered, strongest evidence first:

1. ``self`` receivers resolve within the caller's class (walking base
   classes);
2. typed chains (``self.machine.timers`` → ``TimerWheel``) through
   constructor/annotation facts, following local aliases
   (``machine = self.machine``) and loop elements
   (``for ext in self.extensions`` with a ``List[...]`` annotation);
3. callback bindings collected from src modules;
4. *modeled boundaries*: attributes that hold injected OS behavior
   (``walker``, ``fault_handler``, ``persist_hook``, timer
   ``callback``) and calls on :class:`HardwareExtension`-typed
   receivers are recorded as named dynamic boundaries, not edges — the
   fallback-coverage checker reasons about exactly these;
5. a last-resort *may-edge* tier by unique method name over scanned
   classes, which never matches builtin-container method names.

Unresolvable calls degrade to anonymous dynamics; checkers treat them
as opaque rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import AnalysisContext, SourceFile, load_source_file
from repro.analysis.effects import (
    CONTAINER_MUTATORS,
    CONTAINER_READERS,
    ClassFacts,
    FunctionEffects,
    ModuleSummary,
    summarize,
)
from repro.exec.fingerprint import module_source

#: Attribute names that hold injected OS-model callables.  A call
#: through one of these is a *modeled boundary* — scalar-only behavior
#: the batch kernel must either reproduce or guard against.
BOUNDARY_ATTRS: Dict[str, str] = {
    "walker": "walker",
    "_walker_peek": "walker",
    "walker_peek": "walker",
    "fault_handler": "fault_handler",
    "persist_hook": "persist_hook",
    "callback": "timer_callback",
}

#: Base classes whose virtual hook methods form the hardware-extension
#: bus; calls dispatched on them are the ``extensions`` boundary.
BOUNDARY_CLASSES = frozenset({"HardwareExtension"})

#: Method names the may-edge tier refuses to match (builtin-container
#: collisions) plus anything dunder.
_NO_NAME_MATCH = CONTAINER_MUTATORS | CONTAINER_READERS

_MAX_NAME_CANDIDATES = 4
_CHASE_DEPTH = 8


@dataclass(frozen=True)
class Edge:
    """One outgoing call record of a function."""

    kind: str  #: ``call`` | ``boundary`` | ``dynamic``
    target: str  #: function id, boundary category, or method name
    line: int


@dataclass
class TransitiveEffects:
    """Effects of a function including everything it (may-)calls."""

    #: counter token -> bump sites ``(module rel path, line)``.
    counters: Dict[str, Set[Tuple[str, int]]] = field(default_factory=dict)
    #: static key *prefixes* (e.g. ``interference.``) -> sites.
    prefix_counters: Dict[str, Set[Tuple[str, int]]] = field(default_factory=dict)
    #: bump sites whose key could not be resolved at all.
    dynamic_counters: Set[Tuple[str, int]] = field(default_factory=set)
    #: boundary category -> call sites.
    boundaries: Dict[str, Set[Tuple[str, int]]] = field(default_factory=dict)

    def merge(self, other: "TransitiveEffects") -> bool:
        grew = False
        for mine, theirs in (
            (self.counters, other.counters),
            (self.prefix_counters, other.prefix_counters),
            (self.boundaries, other.boundaries),
        ):
            for key, sites in theirs.items():
                bucket = mine.setdefault(key, set())
                if not sites <= bucket:
                    bucket.update(sites)
                    grew = True
        if not other.dynamic_counters <= self.dynamic_counters:
            self.dynamic_counters.update(other.dynamic_counters)
            grew = True
        return grew


class ProjectGraph:
    """Whole-program resolution over a set of module summaries."""

    def __init__(self, ctx: AnalysisContext) -> None:
        self.ctx = ctx
        self.summaries: Dict[str, ModuleSummary] = {}
        self._load_failed: Set[str] = set()
        cache = getattr(ctx, "_summary_cache", None)
        for file in ctx.files:
            if file.module:
                self.summaries[file.module] = (
                    cache.summary_for(file) if cache is not None else summarize(file)
                )
        self._index()
        self._edges: Dict[str, List[Edge]] = {}
        self._transitive: Dict[str, TransitiveEffects] = {}
        self._propagated = False

    # -- indexing ------------------------------------------------------

    def _index(self) -> None:
        self.class_index: Dict[str, List[Tuple[str, str]]] = {}
        self.method_index: Dict[str, List[str]] = {}
        self.bindings: Dict[str, List[str]] = {}
        for module, summary in self.summaries.items():
            for cls in summary.classes.values():
                self.class_index.setdefault(cls.name, []).append((module, cls.name))
                if summary.kind != "src":
                    continue
                for method in cls.methods:
                    if method.startswith("__") or method in _NO_NAME_MATCH:
                        continue
                    self.method_index.setdefault(method, []).append(
                        f"{module}:{cls.name}.{method}"
                    )
            for attr, targets in summary.bindings.items():
                bucket = self.bindings.setdefault(attr, [])
                for target in targets:
                    if target not in bucket:
                        bucket.append(target)

    def _ensure_module(self, name: str) -> Optional[ModuleSummary]:
        """Summary for ``name``, loading through the fingerprint walker's
        source loader when the module is outside the scanned set."""
        if name in self.summaries:
            return self.summaries[name]
        if name in self._load_failed:
            return None
        loaded = module_source(name)
        summary: Optional[ModuleSummary] = None
        if loaded is not None:
            try:
                tree = ast.parse(loaded[0])
            except SyntaxError:
                tree = None
            if tree is not None:
                file = SourceFile(
                    path=self.ctx.repo_root,
                    rel=f"<module:{name}>",
                    kind="src",
                    module=name,
                    text="",
                    tree=tree,
                )
                summary = summarize(file)
        if summary is None:
            self._load_failed.add(name)
            return None
        self.summaries[name] = summary
        # Index the new module so later lookups see it (method index
        # stays src-scanned-only on purpose: may-edges should not grow
        # as resolution pulls in more modules).
        for cls in summary.classes.values():
            self.class_index.setdefault(cls.name, []).append((name, cls.name))
        return summary

    # -- class/method resolution ---------------------------------------

    def resolve_class(
        self, name: str, module: str, depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """``(module, class)`` for a constructor/annotation name as
        written inside ``module``; follows imports and re-exports."""
        if depth > 3 or not name:
            return None
        short = name.split(".")[-1]
        summary = self.summaries.get(module)
        if summary is not None:
            if short in summary.classes and "." not in name:
                return (module, short)
            target = summary.imports.get(name.split(".")[0])
            if target is not None:
                if "." in name:
                    dotted = f"{target}.{'.'.join(name.split('.')[1:])}"
                else:
                    dotted = target
                owner, _, cls_name = dotted.rpartition(".")
                owner_summary = self._ensure_module(owner)
                if owner_summary is not None:
                    if cls_name in owner_summary.classes:
                        return (owner, cls_name)
                    # Re-export: follow one more import hop.
                    return self.resolve_class(cls_name, owner, depth + 1)
        candidates = [
            (mod, cls)
            for mod, cls in self.class_index.get(short, [])
            if self.summaries[mod].kind == "src"
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def class_facts(self, ref: Tuple[str, str]) -> Optional[ClassFacts]:
        summary = self.summaries.get(ref[0])
        return summary.classes.get(ref[1]) if summary else None

    def is_boundary_class(self, ref: Tuple[str, str], depth: int = 0) -> bool:
        if ref[1] in BOUNDARY_CLASSES:
            return True
        if depth > 3:
            return False
        facts = self.class_facts(ref)
        for base in facts.bases if facts else ():
            base_ref = self.resolve_class(base, ref[0])
            if base_ref and self.is_boundary_class(base_ref, depth + 1):
                return True
        return False

    def resolve_method(
        self, ref: Tuple[str, str], name: str, depth: int = 0
    ) -> Optional[str]:
        """Function id of ``name`` on class ``ref``, walking bases."""
        if depth > 4:
            return None
        facts = self.class_facts(ref)
        if facts is None:
            return None
        if name in facts.methods:
            return f"{ref[0]}:{ref[1]}.{name}"
        for base in facts.bases:
            base_ref = self.resolve_class(base, ref[0])
            if base_ref:
                found = self.resolve_method(base_ref, name, depth + 1)
                if found:
                    return found
        return None

    def find_function(self, qualname: str) -> Optional[str]:
        """Function id for a ``Class.method``/``func`` qualname, searching
        src modules (scanned set first)."""
        hits = [
            f"{module}:{qualname}"
            for module, summary in self.summaries.items()
            if summary.kind == "src" and qualname in summary.functions
        ]
        scanned = [fid for fid in hits if fid.split(":", 1)[0] in self.ctx.by_module]
        pool = scanned or hits
        return pool[0] if len(pool) == 1 else (pool[0] if pool else None)

    def function(self, fid: str) -> Optional[FunctionEffects]:
        module, _, qual = fid.partition(":")
        summary = self.summaries.get(module)
        return summary.functions.get(qual) if summary else None

    def module_rel(self, module: str) -> str:
        summary = self.summaries.get(module)
        return summary.rel if summary else module

    # -- receiver typing -----------------------------------------------

    def _type_of_chain(
        self, module: str, fn: FunctionEffects, chain: Sequence[str], depth: int = 0
    ) -> Optional[object]:
        """Type of a receiver chain: ``("class", ref)``, ``("boundary",
        category)`` or None."""
        if depth > _CHASE_DEPTH or not chain:
            return None
        root, rest = chain[0], list(chain[1:])
        current: Optional[Tuple[str, str]] = None
        if root == "self":
            current = (module, fn.cls) if fn.cls else None
            if current and self.class_facts(current) is None:
                current = None
        elif root.startswith("@"):
            name = root[1:]
            ctor = fn.local_types.get(name)
            if ctor:
                resolved = self.resolve_class(ctor, module)
                if resolved is None:
                    return None
                if ctor.startswith(("List[", "list[")):
                    return None
                current = resolved
            elif name in fn.params:
                return self._type_of_annotation(module, fn, fn.params[name], rest, depth)
            else:
                source = fn.local_sources.get(name)
                if source is None:
                    return None
                if source[0] == "!call":
                    return None
                if source[0] == "!iter":
                    iter_type = self._type_of_chain(module, fn, source[1:], depth + 1)
                    if (
                        isinstance(iter_type, tuple)
                        and iter_type[0] == "element"
                    ):
                        current = iter_type[1]
                    else:
                        return None
                else:
                    return self._type_of_chain(
                        module, fn, list(source) + rest, depth + 1
                    )
        else:
            return None
        return self._walk_attrs(module, current, rest, depth)

    def _type_of_annotation(
        self,
        module: str,
        fn: FunctionEffects,
        annotation: str,
        rest: List[str],
        depth: int,
    ) -> Optional[object]:
        if annotation.startswith("list:"):
            return None  # a list itself has no model attributes
        ref = self.resolve_class(annotation, module)
        if ref is None:
            return None
        return self._walk_attrs(module, ref, rest, depth)

    def _walk_attrs(
        self,
        module: str,
        current: Optional[Tuple[str, str]],
        rest: List[str],
        depth: int,
    ) -> Optional[object]:
        for index, attr in enumerate(rest):
            if current is None:
                return None
            facts = self.class_facts(current)
            if facts is None:
                return None
            annotation = (
                facts.attr_types.get(attr)
                or facts.attr_params.get(attr)
                or facts.attr_annotations.get(attr)
            )
            if annotation is None:
                if attr in BOUNDARY_ATTRS and index == len(rest) - 1:
                    return ("boundary", BOUNDARY_ATTRS[attr])
                return None
            if annotation.startswith("list:"):
                element = self.resolve_class(annotation[5:], current[0])
                if index == len(rest) - 1 and element is not None:
                    return ("element", element)
                return None
            current = self.resolve_class(annotation, current[0])
        if current is None:
            return None
        return ("class", current)

    # -- call resolution -----------------------------------------------

    def edges(self, fid: str) -> List[Edge]:
        if fid in self._edges:
            return self._edges[fid]
        module, _, _ = fid.partition(":")
        fn = self.function(fid)
        out: List[Edge] = []
        if fn is not None:
            for receiver, method, line in fn.calls:
                out.extend(self._resolve_call(module, fn, receiver, method, line))
        self._edges[fid] = out
        return out

    def _resolve_call(
        self,
        module: str,
        fn: FunctionEffects,
        receiver: Sequence[str],
        method: str,
        line: int,
    ) -> List[Edge]:
        if method == "__call__":
            return self._resolve_plain_call(module, receiver, line)
        typed = self._type_of_chain(module, fn, receiver)
        if isinstance(typed, tuple) and typed[0] == "boundary":
            # The chain itself ends on a boundary attr; calling any
            # method on it stays inside the boundary.
            return [Edge("boundary", typed[1], line)]
        if isinstance(typed, tuple) and typed[0] in ("class", "element"):
            ref = typed[1]
            if self.is_boundary_class(ref):
                return [Edge("boundary", "extensions", line)]
            target = self.resolve_method(ref, method)
            if target is not None:
                return [Edge("call", target, line)]
            if method in BOUNDARY_ATTRS:
                # A boundary slot stays a boundary even when some
                # component binds a concrete callable into it — the
                # kernel's contract is the guard, not the callee.
                return [Edge("boundary", BOUNDARY_ATTRS[method], line)]
            bound_targets = [
                resolved
                for bound in self.bindings.get(method, ())
                for resolved in [self._resolve_bound(bound)]
                if resolved
            ]
            if bound_targets:  # callback slot wired up elsewhere
                return [Edge("call", t, line) for t in bound_targets]
            return [Edge("dynamic", method, line)]
        # Untyped receiver: boundary attr name, then unique-name tier.
        if method in BOUNDARY_ATTRS:
            return [Edge("boundary", BOUNDARY_ATTRS[method], line)]
        if receiver and receiver[-1] in BOUNDARY_ATTRS:
            return [Edge("boundary", BOUNDARY_ATTRS[receiver[-1]], line)]
        if method in self.bindings:
            targets = [
                r
                for b in self.bindings[method]
                for r in [self._resolve_bound(b)]
                if r
            ]
            if targets:
                return [Edge("call", t, line) for t in targets]
        if not method.startswith("__") and method not in _NO_NAME_MATCH:
            candidates = []
            for candidate in self.method_index.get(method, []):
                mod, _, qual = candidate.partition(":")
                if not self.is_boundary_class((mod, qual.split(".")[0])):
                    candidates.append(candidate)
            if 1 <= len(candidates) <= _MAX_NAME_CANDIDATES:
                return [Edge("call", fid, line) for fid in candidates]
        return [Edge("dynamic", method, line)]

    def _resolve_bound(self, bound: str) -> Optional[str]:
        """``Class.method`` binding target -> function id."""
        cls_name, _, method = bound.partition(".")
        candidates = [
            (mod, cls)
            for mod, cls in self.class_index.get(cls_name, [])
            if self.summaries[mod].kind == "src"
        ]
        for ref in candidates:
            fid = self.resolve_method(ref, method)
            if fid:
                return fid
        return None

    def _resolve_plain_call(
        self, module: str, receiver: Sequence[str], line: int
    ) -> List[Edge]:
        if len(receiver) != 1 or not receiver[0].startswith("@"):
            return []
        name = receiver[0][1:]
        summary = self.summaries.get(module)
        if summary is None:
            return []
        if name in summary.functions:
            return [Edge("call", f"{module}:{name}", line)]
        target = summary.imports.get(name)
        if target:
            owner, _, func = target.rpartition(".")
            owner_summary = self._ensure_module(owner)
            if owner_summary and func in owner_summary.functions:
                return [Edge("call", f"{owner}:{func}", line)]
        return []

    # -- counter-token resolution --------------------------------------

    def _resolve_key_attr(
        self,
        module: str,
        fn: FunctionEffects,
        receiver: Sequence[str],
        attr: str,
        depth: int = 0,
    ) -> Optional[str]:
        """Normalize a precomputed ``*_key`` attribute read into a token:
        a literal key, or ``Class:*<suffix>`` for f-string keys."""
        if depth > _CHASE_DEPTH:
            return None
        typed = self._type_of_chain(module, fn, receiver)
        ref = typed[1] if isinstance(typed, tuple) and typed[0] == "class" else None
        if ref is not None:
            return self._key_from_class(ref, attr, depth)
        # Untyped receiver: unique defining class across src summaries.
        owners = [
            (mod, cls.name)
            for mod, summary in self.summaries.items()
            if summary.kind == "src"
            for cls in summary.classes.values()
            if attr in cls.key_attrs
        ]
        tokens = {
            token
            for owner in owners
            for token in [self._key_from_class(owner, attr, depth)]
            if token
        }
        if len(tokens) == 1:
            return tokens.pop()
        return None

    def _key_from_class(
        self, ref: Tuple[str, str], attr: str, depth: int
    ) -> Optional[str]:
        facts = self.class_facts(ref)
        if facts is None:
            return None
        spec = facts.key_attrs.get(attr)
        if spec is None:
            for base in facts.bases:
                base_ref = self.resolve_class(base, ref[0])
                if base_ref:
                    token = self._key_from_class(base_ref, attr, depth + 1)
                    if token:
                        return token
            return None
        if spec[0] == "const":
            return spec[1]
        if spec[0] == "suffix":
            return f"{ref[1]}:*{spec[1]}"
        if spec[0] == "copy":
            chain = spec[1]
            init = self.summaries[ref[0]].functions.get(f"{ref[1]}.__init__")
            scope = init or FunctionEffects(qualname="", line=0, cls=ref[1])
            return self._resolve_key_attr(
                ref[0], scope, chain[:-1], chain[-1], depth + 1
            )
        return None

    def local_effects(self, fid: str) -> TransitiveEffects:
        """This function's own effects with counter keys normalized."""
        module, _, _ = fid.partition(":")
        fn = self.function(fid)
        rel = self.module_rel(module)
        effects = TransitiveEffects()
        if fn is None:
            return effects
        for spec, line in fn.counters:
            site = (rel, line)
            token = self._token_for_spec(module, fn, spec)
            if token is None:
                effects.dynamic_counters.add(site)
            elif isinstance(token, tuple):  # ("prefix", p)
                effects.prefix_counters.setdefault(token[1], set()).add(site)
            else:
                effects.counters.setdefault(token, set()).add(site)
        for edge in self.edges(fid):
            if edge.kind == "boundary":
                effects.boundaries.setdefault(edge.target, set()).add((rel, edge.line))
        return effects

    def _token_for_spec(
        self, module: str, fn: FunctionEffects, spec: Sequence
    ) -> Optional[object]:
        if spec[0] == "const":
            return spec[1]
        if spec[0] == "attr":
            return self._resolve_key_attr(module, fn, spec[1], spec[2])
        if spec[0] == "local":
            source = fn.local_sources.get(spec[1])
            if source is None:
                return None
            if source[0] == "!call" and fn.cls:
                facts = self.class_facts((module, fn.cls))
                prefix = facts.return_prefixes.get(source[1]) if facts else None
                return ("prefix", prefix) if prefix else None
            if source[0] not in ("!call", "!iter") and len(source) >= 2:
                return self._resolve_key_attr(module, fn, source[:-1], source[-1])
            return None
        return None

    # -- propagation -----------------------------------------------------

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Function ids reachable from ``roots`` via resolved edges."""
        seen: Set[str] = set()
        queue = [fid for fid in roots if self.function(fid) is not None]
        while queue:
            fid = queue.pop()
            if fid in seen:
                continue
            seen.add(fid)
            for edge in self.edges(fid):
                if edge.kind == "call" and edge.target not in seen:
                    queue.append(edge.target)
        return seen

    def transitive(self, roots: Sequence[str]) -> TransitiveEffects:
        """Union of local effects over everything reachable from roots.

        Computed by a fixed-point worklist over the call graph so
        summaries flow through helper chains and survive cycles."""
        total = TransitiveEffects()
        for fid in roots:
            total.merge(self._transitive_one(fid))
        return total

    def _transitive_one(self, root: str) -> TransitiveEffects:
        if root in self._transitive:
            return self._transitive[root]
        members = self.reachable([root])
        state: Dict[str, TransitiveEffects] = {
            fid: self.local_effects(fid) for fid in members
        }
        callers: Dict[str, Set[str]] = {fid: set() for fid in members}
        for fid in members:
            for edge in self.edges(fid):
                if edge.kind == "call" and edge.target in callers:
                    callers[edge.target].add(fid)
        pending = set(members)
        while pending:
            fid = pending.pop()
            for edge in self.edges(fid):
                if edge.kind == "call" and edge.target in state:
                    if state[fid].merge(state[edge.target]):
                        pending.update(callers.get(fid, ()))
        result = state.get(root, TransitiveEffects())
        self._transitive[root] = result
        return result


def project_graph(ctx: AnalysisContext) -> ProjectGraph:
    """The memoized :class:`ProjectGraph` for an analysis context (all
    whole-program checkers share one graph per run)."""
    graph = getattr(ctx, "_project_graph", None)
    if graph is None:
        graph = ProjectGraph(ctx)
        ctx._project_graph = graph  # type: ignore[attr-defined]
    return graph
