"""``python -m repro.analysis`` — run the invariant checkers.

Usage::

    python -m repro.analysis [paths ...] [options]

Paths default to ``src tests``.  Exit status is 0 when no
non-baselined finding remains, 1 when findings are reported, 2 on
usage or environment errors — so CI gates on the exit code and humans
read the text.

Options:

``--format text|json|sarif``
    text renders one ``path:line:col: [rule] message (fix: hint)``
    line per finding; json emits findings plus a summary document;
    sarif emits a SARIF 2.1.0 log for CI code-review annotation.
``--cache-dir DIR`` / ``--cache-stats FILE``
    incremental effect-summary cache keyed on import-closure
    fingerprints — warm runs re-extract only changed modules — plus
    an optional hit/miss statistics dump for CI assertions.
``--baseline FILE``
    suppress findings recorded in a baseline file (stale entries are
    reported so the file shrinks over time).
``--write-baseline FILE``
    write the current findings as a new baseline and exit 0.
``--changed``
    lint only files modified or added relative to ``git HEAD`` — the
    pre-commit fast path.
``--checkers a,b``
    run a subset of checkers.
``--list-checkers``
    print the registered checkers and their pragma names.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis import cache as cache_mod
from repro.analysis import sarif as sarif_mod
from repro.analysis.core import (
    AnalysisContext,
    Finding,
    SourceError,
    build_context,
)
from repro.analysis.registry import all_checkers


def _repo_root(start: Path) -> Path:
    """Nearest ancestor holding a ``.git`` (or ``start`` itself)."""
    for candidate in [start, *start.parents]:
        if (candidate / ".git").exists():
            return candidate
    return start


def _changed_files(root: Path) -> List[Path]:
    """Files modified/added vs HEAD plus untracked files, via git.

    NUL-separated output (``-z``) so paths with spaces or characters
    git would quote survive; paths deleted vs HEAD (``git rm``, plain
    deletions) and non-``.py`` entries are skipped instead of being
    handed to the parser.
    """
    changed: List[Path] = []
    for args in (
        ["git", "diff", "--name-only", "-z", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    ):
        proc = subprocess.run(
            args, cwd=root, capture_output=True, text=True, check=True
        )
        for entry in proc.stdout.split("\0"):
            if not entry:
                continue
            path = root / entry
            if path.suffix == ".py" and path.is_file():
                changed.append(path)
    return changed


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static invariant analysis for the simulator tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "incremental summary cache directory (keyed on import-closure "
            "fingerprints; warm runs re-analyze only changed modules)"
        ),
    )
    parser.add_argument(
        "--cache-stats",
        type=Path,
        default=None,
        help="write cache hit/miss statistics as JSON to this file",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="suppression file of acknowledged findings",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="write current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs git HEAD (fast pre-commit path)",
    )
    parser.add_argument(
        "--checkers",
        default=None,
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered checkers and exit",
    )
    return parser


def _collect(ctx: AnalysisContext, checker_ids: Optional[List[str]]) -> List[Finding]:
    checkers = all_checkers()
    if checker_ids is not None:
        known = {c.id for c in checkers}
        unknown = [i for i in checker_ids if i not in known]
        if unknown:
            raise SystemExit(
                f"unknown checker id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        checkers = [c for c in checkers if c.id in checker_ids]
    findings: List[Finding] = []
    for file in ctx.files:
        for checker in checkers:
            findings.extend(checker.run(file, ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_checkers:
        for checker in all_checkers():
            scope = "+".join(checker.kinds)
            print(
                f"{checker.id:15s} pragma=allow-{checker.pragma:10s} "
                f"[{scope}] {checker.description}"
            )
        return 0

    root = _repo_root(Path.cwd())
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    if args.changed:
        try:
            changed = _changed_files(root)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(f"error: --changed needs a git checkout: {exc}", file=sys.stderr)
            return 2
        scope = [p.resolve() for p in paths]
        paths = [
            c
            for c in changed
            if any(
                c.resolve() == s or s in c.resolve().parents for s in scope
            )
        ]
        if not paths:
            print("analysis: no changed python files in scope")
            return 0

    try:
        ctx = build_context(paths, root)
    except SourceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cache = cache_mod.attach_cache(ctx, args.cache_dir)

    checker_ids = (
        [c.strip() for c in args.checkers.split(",") if c.strip()]
        if args.checkers
        else None
    )
    findings = _collect(ctx, checker_ids)

    if args.write_baseline is not None:
        baseline_mod.save(findings, args.write_baseline)
        print(
            f"analysis: wrote baseline with {len(findings)} entr"
            f"{'y' if len(findings) == 1 else 'ies'} to {args.write_baseline}"
        )
        return 0

    suppressed = 0
    stale: List[dict] = []
    if args.baseline is not None:
        try:
            entries = baseline_mod.load(args.baseline)
        except baseline_mod.BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, stale = baseline_mod.apply(findings, entries)

    if cache is not None and args.cache_stats is not None:
        args.cache_stats.parent.mkdir(parents=True, exist_ok=True)
        args.cache_stats.write_text(
            json.dumps(cache.stats(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if args.fmt == "sarif":
        document = sarif_mod.render(findings, all_checkers())
        print(json.dumps(document, indent=2, sort_keys=True))
    elif args.fmt == "json":
        document = {
            "files": len(ctx.files),
            "findings": [f.as_dict() for f in findings],
            "suppressed_by_baseline": suppressed,
            "stale_baseline_entries": stale,
            "exit_code": 1 if findings else 0,
        }
        print(json.dumps(document, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        for entry in stale:
            print(
                f"stale baseline entry (fixed? remove it): "
                f"[{entry['checker']}] {entry['path']}: {entry['message']}"
            )
        summary = (
            f"analysis: {len(ctx.files)} files, {len(findings)} finding"
            f"{'' if len(findings) == 1 else 's'}"
        )
        if suppressed:
            summary += f", {suppressed} baselined"
        print(summary)
    return 1 if findings else 0
