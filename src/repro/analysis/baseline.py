"""Baseline suppression files.

A baseline records findings that are acknowledged but not yet fixed
(or justified without an inline pragma), so CI can gate on *new*
findings only.  Entries match on ``(checker, path, message)`` — not
line numbers, which shift under unrelated edits — and matching is a
multiset: two identical findings need two entries, so a baseline can
never hide a newly introduced duplicate of an acknowledged violation.

Stale entries (nothing in the tree matches them anymore) are reported
so baselines shrink over time instead of fossilizing.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

FORMAT = "repro-analysis-baseline/v1"


class BaselineError(Exception):
    """The baseline file is unreadable or malformed."""


def save(findings: List[Finding], path: Path) -> None:
    """Write ``findings`` as a baseline file (sorted, stable)."""
    entries = sorted(
        (
            {"checker": f.checker, "path": f.path, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["path"], e["checker"], e["message"]),
    )
    payload = {"format": FORMAT, "entries": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load(path: Path) -> List[Dict[str, str]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise BaselineError(
            f"baseline {path} is not a {FORMAT} document"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} has no entry list")
    for entry in entries:
        if not isinstance(entry, dict) or not {
            "checker",
            "path",
            "message",
        } <= set(entry):
            raise BaselineError(f"malformed baseline entry: {entry!r}")
    return entries


def apply(
    findings: List[Finding], entries: List[Dict[str, str]]
) -> Tuple[List[Finding], int, List[Dict[str, str]]]:
    """Split findings into (new, suppressed count, stale entries)."""
    budget = Counter(
        (e["checker"], e["path"], e["message"]) for e in entries
    )
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.identity()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    stale = [
        {"checker": c, "path": p, "message": m}
        for (c, p, m), count in sorted(budget.items())
        for _ in range(count)
        if count > 0
    ]
    return fresh, suppressed, stale
