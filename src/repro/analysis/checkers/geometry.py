"""Magic-geometry checker.

Page and cache-line geometry is owned by :mod:`repro.common.units`
(``PAGE_SIZE``, ``CACHE_LINE``, ``page_of``, ``line_of``, ...).  A
hardcoded ``4096`` or ``addr >> 12`` next to it is a latent bug of the
exact class PR 1 fixed in the memory controller: the wear/row-miss
accounting silently disagreed with the configured page size.  This
checker flags:

* any integer literal spelled ``4096`` (in this codebase a decimal
  4096 is always the page size — pool sizes and the like use other
  values; hex spellings like the ``0x1000`` program-counter values in
  crash scenarios are addresses, not geometry, and pass);
* shifts by 12 (``>> 12`` / ``<< 12``: page-number arithmetic);
* ``// 64`` / ``% 64`` and shifts by 6 (cache-line arithmetic).

Bare ``64``/``512`` literals in other positions are deliberately *not*
flagged: they are associativities, entry counts and megabyte knobs far
more often than they are geometry, and a checker people silence on
sight enforces nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import AnalysisContext, Finding, SourceFile
from repro.analysis.registry import Checker, register

#: The owning module is the one place the literals may appear.
ALLOWED_MODULES = {"repro.common.units"}

_HINT_PAGE = "use repro.common.units.PAGE_SIZE / page_of / pages_in"
_HINT_LINE = "use repro.common.units.CACHE_LINE / line_of / lines_in"


def _int_const(node: ast.AST) -> object:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


@register
class GeometryChecker(Checker):
    id = "geometry"
    pragma = "geometry"
    kinds = ("src", "test")
    description = (
        "literal page/cache-line arithmetic (4096, >> 12, // 64) where "
        "repro.common.units constants exist"
    )

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        if file.module in ALLOWED_MODULES:
            return
        for node in ast.walk(file.tree):
            if isinstance(node, ast.BinOp):
                right = _int_const(node.right)
                if isinstance(node.op, (ast.RShift, ast.LShift)):
                    if right == 12:
                        yield self.finding(
                            file,
                            node,
                            "page-shift",
                            "hardcoded page-size shift (by 12)",
                            _HINT_PAGE,
                        )
                    elif right == 6:
                        yield self.finding(
                            file,
                            node,
                            "line-shift",
                            "hardcoded cache-line shift (by 6)",
                            _HINT_LINE,
                        )
                elif isinstance(node.op, (ast.FloorDiv, ast.Mod)) and right == 64:
                    yield self.finding(
                        file,
                        node,
                        "line-arith",
                        f"hardcoded cache-line {'division' if isinstance(node.op, ast.FloorDiv) else 'modulo'} by 64",
                        _HINT_LINE,
                    )
            elif isinstance(node, ast.Constant):
                if (
                    type(node.value) is int
                    and node.value == 4096  # repro: allow-geometry(the checker's own needle)
                ):
                    spelled = ast.get_source_segment(file.text, node) or ""
                    if spelled.lower().startswith(("0x", "0o", "0b")):
                        continue  # an address that happens to equal 4096
                    yield self.finding(
                        file,
                        node,
                        "page-size",
                        "hardcoded page size 4096",
                        _HINT_PAGE,
                    )
