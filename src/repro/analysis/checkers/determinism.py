"""Determinism sanitizer.

Everything the simulator computes must be a pure function of code +
kwargs: that is what makes ``repro.exec`` task fingerprints sound,
parallel output byte-identical to serial, and the golden-equivalence
test meaningful.  This checker flags the ambient-nondeterminism escape
hatches — wall-clock reads, the process-global RNG stream, environment
reads, per-process-salted ``hash()``, and iteration over unordered sets
— everywhere outside the two modules that exist to own
nondeterminism-shaped concerns deterministically:
``repro.common.rng`` (seed-derived streams) and ``repro.common.timers``
(simulated time).

Seeded ``random.Random(seed)`` instances are allowed: they are
deterministic by construction and are exactly what ``derive_rng``
hands out.  Intentional wall-clock reads (bench measurement, host
metadata) carry ``# repro: allow-nondet(<reason>)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import AnalysisContext, Finding, SourceFile, dotted_name
from repro.analysis.registry import Checker, register

#: Modules whose job is to wrap nondeterminism deterministically.
ALLOWED_MODULES = {"repro.common.rng", "repro.common.timers"}

#: module -> banned attribute names (``None`` = every attribute).
BANNED_ATTRS = {
    "random": None,  # exceptions handled below (Random is allowed)
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
        "strftime",
        "sleep",
    },
    "uuid": {"uuid1", "uuid4"},
    "os": {"urandom", "getenv"},
    "secrets": None,
}

#: ``random`` attributes that are deterministic by construction.
RANDOM_ALLOWED = {"Random"}

#: wall-clock constructors on datetime/date objects.
DATETIME_NOW = {"now", "utcnow", "today"}

_HINT_RNG = "derive a stream with repro.common.rng.derive_rng(seed, label)"
_HINT_CLOCK = "use simulated time (machine clock / repro.common.timers)"
_HINT_ENV = "thread configuration through explicit kwargs"
_HINT_SET = "wrap the set in sorted(...) before iterating"
_HINT_HASH = "use hashlib over canonical bytes (see repro.exec.task)"


def _set_valued(node: ast.AST) -> bool:
    """Heuristic: does this expression produce an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return _set_valued(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        return _set_valued(node.left) or _set_valued(node.right)
    return False


@register
class DeterminismChecker(Checker):
    id = "determinism"
    pragma = "nondet"
    kinds = ("src", "test")
    description = (
        "wall-clock, global RNG, environ, hash() and set-order reads that "
        "would break task fingerprints and parallel==serial byte-exactness"
    )

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        if file.module in ALLOWED_MODULES:
            return
        for node in ast.walk(file.tree):
            finding = self._visit(file, node)
            if finding is not None:
                yield finding

    def _visit(self, file: SourceFile, node: ast.AST) -> Optional[Finding]:
        if isinstance(node, ast.Attribute):
            return self._attribute(file, node)
        if isinstance(node, ast.ImportFrom):
            return self._import_from(file, node)
        if isinstance(node, ast.Call):
            return self._call(file, node)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _set_valued(node.iter):
                return self.finding(
                    file,
                    node.iter,
                    "set-order",
                    "iteration over an unordered set (order varies per process)",
                    _HINT_SET,
                )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _set_valued(gen.iter):
                    return self.finding(
                        file,
                        gen.iter,
                        "set-order",
                        "comprehension over an unordered set (order varies per process)",
                        _HINT_SET,
                    )
        return None

    def _attribute(self, file: SourceFile, node: ast.Attribute) -> Optional[Finding]:
        base = dotted_name(node.value)
        if base is None:
            return None
        if base == "os" and node.attr == "environ":
            return self.finding(
                file,
                node,
                "environ",
                "os.environ read makes results depend on ambient environment",
                _HINT_ENV,
            )
        root = base.split(".")[-1]
        if base in BANNED_ATTRS or root in ("datetime", "date"):
            if base == "random" and node.attr in RANDOM_ALLOWED:
                return None
            if root in ("datetime", "date") and node.attr in DATETIME_NOW:
                return self.finding(
                    file,
                    node,
                    "wallclock",
                    f"wall-clock read {base}.{node.attr}()",
                    _HINT_CLOCK,
                )
            banned = BANNED_ATTRS.get(base)
            if banned is None and base in BANNED_ATTRS:
                rule, hint = self._rule_for(base)
                return self.finding(
                    file,
                    node,
                    rule,
                    f"nondeterministic call target {base}.{node.attr}",
                    hint,
                )
            if banned is not None and node.attr in banned:
                rule, hint = self._rule_for(base)
                return self.finding(
                    file,
                    node,
                    rule,
                    f"nondeterministic call target {base}.{node.attr}",
                    hint,
                )
        return None

    def _import_from(
        self, file: SourceFile, node: ast.ImportFrom
    ) -> Optional[Finding]:
        banned = BANNED_ATTRS.get(node.module or "")
        if node.module == "random":
            names = [a.name for a in node.names if a.name not in RANDOM_ALLOWED]
        elif banned is None and node.module in BANNED_ATTRS:
            names = [a.name for a in node.names]
        elif banned:
            names = [a.name for a in node.names if a.name in banned]
        else:
            names = []
        if node.module == "os":
            names.extend(
                a.name for a in node.names if a.name in ("environ", "getenv")
            )
        if not names:
            return None
        rule, hint = self._rule_for(node.module or "")
        return self.finding(
            file,
            node,
            rule,
            f"imports nondeterministic name(s) {', '.join(sorted(set(names)))} "
            f"from {node.module}",
            hint,
        )

    def _call(self, file: SourceFile, node: ast.Call) -> Optional[Finding]:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            return self.finding(
                file,
                node,
                "salted-hash",
                "built-in hash() is salted per process for str/bytes",
                _HINT_HASH,
            )
        return None

    @staticmethod
    def _rule_for(module: str):
        if module in ("random", "secrets", "uuid"):
            return "global-rng", _HINT_RNG
        if module == "time":
            return "wallclock", _HINT_CLOCK
        if module == "os":
            return "environ", _HINT_ENV
        return "wallclock", _HINT_CLOCK
