"""fallback-coverage: every unmodelable scalar effect has a guard.

The batch kernel interprets ops against live structures, but some
scalar behavior is *injected* — page walkers, fault handlers, persist
hooks, hardware-extension buses, timer callbacks, os-mode accounting.
The kernel cannot model those; its contract is to detect them in the
eligibility precheck and fall back to the scalar path.

This checker closes the loop three ways for every dynamic boundary the
call graph finds reachable from `Machine.access`:

1. the boundary must belong to a known fallback *category* (an
   unclassified boundary means someone added a new injection point the
   kernel has never heard of);
2. the batch module must carry a guard for the category — the
   attribute(s) the eligibility/probe code inspects (`_fast_ok`,
   `_mode_stack`, `persist_hook`, `_pure_walker`/`_walker_peek`,
   timer-deadline peeks) must actually appear in its condition
   expressions;
3. the category must be documented as a row of the scalar-fallback
   taxonomy table in EXPERIMENTS.md, so the docs and the code cannot
   drift apart silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.core import AnalysisContext, Finding
from repro.analysis.graph import project_graph
from repro.analysis.registry import register
from repro.analysis.wholeprogram import (
    BATCH_MODULE,
    BATCH_ROOTS,
    SCALAR_ROOTS,
    WholeProgramChecker,
    resolve_roots,
)

_TAXONOMY_HEADING = "scalar-fallback taxonomy"


@dataclass(frozen=True)
class Category:
    """One fallback class: guard evidence + taxonomy row pattern."""

    #: attributes, any of which counts as the kernel-side guard when it
    #: appears inside a condition expression of the batch module.
    guard_attrs: Tuple[str, ...]
    #: case-insensitive regex that must match inside the taxonomy table.
    taxonomy: str


CATEGORIES: Dict[str, Category] = {
    "extensions": Category(("_fast_ok",), r"hardware extension"),
    "persist_hook": Category(("persist_hook",), r"persist hook"),
    "walker": Category(("_pure_walker", "_walker_peek"), r"pure walker"),
    "fault_handler": Category(("_pure_walker", "_walker_peek"), r"page fault"),
    "timer_callback": Category(("timers", "fire_due"), r"timer deadline"),
    "os-mode": Category(("_mode_stack",), r"os-mode transition"),
}


def _condition_attrs(tree: ast.Module) -> Set[str]:
    """Attribute/name identifiers appearing inside condition expressions
    (``if``/``while``/ternary/assert/comparison/boolean operands) plus
    called method names — the vocabulary of the kernel's guards."""
    attrs: Set[str] = set()

    def harvest(expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                attrs.add(node.attr)
            elif isinstance(node, ast.Name):
                attrs.add(node.id)

    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            harvest(node.test)
        elif isinstance(node, ast.Assert):
            harvest(node.test)
        elif isinstance(node, (ast.Compare, ast.BoolOp)):
            harvest(node)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attrs.add(node.func.attr)
    return attrs


@register
class FallbackCoverageChecker(WholeProgramChecker):
    id = "fallback-coverage"
    pragma = "fallback-coverage"
    description = (
        "every scalar-only effect (walker, fault, persist, extensions, "
        "timers, os-mode) has a kernel fallback guard and a taxonomy row"
    )

    def analyze(self, ctx: AnalysisContext) -> List[Finding]:
        graph = project_graph(ctx)
        scalar = graph.transitive(resolve_roots(graph, SCALAR_ROOTS))
        batch_file = ctx.by_module[BATCH_MODULE]
        guard_attrs = _condition_attrs(batch_file.tree)
        kernel_fid = graph.find_function(BATCH_ROOTS[0])
        kernel_fn = graph.function(kernel_fid) if kernel_fid else None
        kernel_line = kernel_fn.line if kernel_fn else 1

        taxonomy = self._taxonomy_text(ctx)
        findings: List[Finding] = []

        observed: Dict[str, Set[Tuple[str, int]]] = dict(scalar.boundaries)
        # Os-mode is a boundary in accounting rather than in calls: the
        # scalar path billing to `cycles.os.total` is the evidence.
        for token, sites in scalar.counters.items():
            if token == "cycles.os.total":
                observed.setdefault("os-mode", set()).update(sites)

        for category in sorted(observed):
            sites = observed[category]
            spec = CATEGORIES.get(category)
            if spec is None:
                path, line = sorted(sites)[0]
                findings.append(
                    self.site_finding(
                        path,
                        line,
                        "unclassified",
                        f"scalar replay path crosses dynamic boundary "
                        f"{category!r} that no fallback category covers",
                        "add the boundary to the fallback taxonomy and "
                        "guard it in the batch eligibility precheck",
                    )
                )
                continue
            if not set(spec.guard_attrs) & guard_attrs:
                findings.append(
                    self.site_finding(
                        batch_file.rel,
                        kernel_line,
                        "unguarded",
                        f"batch module has no scalar-fallback guard for "
                        f"category {category!r} (expected one of "
                        f"{'/'.join(spec.guard_attrs)} in a condition)",
                        "re-add the eligibility guard so these ops fall "
                        "back to the scalar path",
                    )
                )
            if taxonomy is not None and not re.search(
                spec.taxonomy, taxonomy, re.IGNORECASE
            ):
                findings.append(
                    self.site_finding(
                        batch_file.rel,
                        kernel_line,
                        "undocumented",
                        f"fallback category {category!r} has no row in "
                        f"the EXPERIMENTS.md scalar-fallback taxonomy "
                        f"(pattern /{spec.taxonomy}/ not found)",
                        "document the trigger in the taxonomy table",
                    )
                )
        if taxonomy is None:
            findings.append(
                self.site_finding(
                    batch_file.rel,
                    kernel_line,
                    "no-taxonomy",
                    "EXPERIMENTS.md scalar-fallback taxonomy section not "
                    "found; fallback categories cannot be cross-checked",
                    "restore the 'scalar-fallback taxonomy' section",
                )
            )
        return findings

    def _taxonomy_text(self, ctx: AnalysisContext) -> str:
        path = ctx.repo_root / "EXPERIMENTS.md"
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        lowered = text.lower()
        start = lowered.find(_TAXONOMY_HEADING)
        if start < 0:
            return None
        # The section runs to the next same-or-higher-level heading.
        end = text.find("\n## ", start)
        return text[start : end if end > 0 else len(text)]
