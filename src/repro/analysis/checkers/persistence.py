"""Persist-barrier checker.

Crash-point enumeration (:mod:`repro.faults`) is only exhaustive if
every durable NVM mutation flows through a hooked path: the
:class:`~repro.arch.machine.Machine` persist events (``clwb``/``wb``/
``bulk``/``fence``), the :mod:`repro.persist.primitives` wrappers, or
the :class:`~repro.mem.nvmstore.NvmObjectStore` mutators (which report
to the store hook).  New code that pokes the byte image or the object
store directly produces state the crash matrix never kills at — the
failure mode is not a test failure but a *hole in the test*.

Flagged escapes (outside the modules that own the hooked paths):

* ``physmem.write(...)`` / ``physmem.copy_page(...)`` — raw byte-image
  mutation bypassing machine timing and the persist hook;
* ``controller.write(...)`` — device write bypassing the persist-hook
  emission in ``Machine._writeback``;
* ``<store>._objects`` — reaching around ``NvmObjectStore.put`` /
  ``remove``, so the store hook never fires;
* assigning ``machine.persist_hook`` / ``store.hook`` — only the crash
  injector may install or clear the instrumentation.
* direct ``allocator.free()`` of frames outside the reclamation API —
  a frame named by a committed checkpoint must be *parked* until the
  next checkpoint commit retires the reclamation epoch
  (:mod:`repro.persist.reclaim`); an immediate free reintroduces the
  munmap-after-checkpoint recovery corruption.  Unmap paths go through
  ``kernel.frame_release`` instead.

``physmem.zero_page`` on fault-time frame allocation is deliberately
not flagged: it is pre-mutation initialization of a frame no durable
structure references yet, and the existing crash matrix vets it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    SourceFile,
    receiver_basename,
)
from repro.analysis.registry import Checker, register

#: Modules that implement the hooked paths themselves.
ALLOWED_MODULES = {
    "repro.arch.machine",
    "repro.mem.physmem",
    "repro.mem.nvmstore",
    "repro.persist.primitives",
}

#: The fault-injection package manipulates the NVM image and the hooks
#: by design (that is the instrument, not an escape).
ALLOWED_PREFIXES = ("repro.faults",)

#: (receiver basename, method) pairs that bypass the hooked write path.
BANNED_CALLS = {
    ("physmem", "write"),
    ("physmem", "copy_page"),
    ("controller", "write"),
}

_HINT_WRITE = (
    "route the write through Machine.store/bulk_lines or a "
    "repro.persist.primitives wrapper so the persist hook sees it"
)
_HINT_STORE = (
    "mutate the store via NvmObjectStore.put/remove/setdefault so the "
    "store hook fires"
)
_HINT_HOOK = (
    "only repro.faults.CrashInjector.install/remove may manage persist "
    "instrumentation"
)
_HINT_FREE = (
    "release frames through kernel.frame_release (release_page/"
    "release_frame) so repro.persist.reclaim can park checkpoint-"
    "reachable frames until the epoch retires"
)

#: Frame-allocator receivers whose ``.free`` is lifecycle-sensitive
#: (``dram_alloc`` is exempt: DRAM frames are volatile, no checkpoint
#: can name them).
_ALLOCATOR_RECEIVERS = {"nvm_alloc", "allocator"}

#: Modules that *are* the frame-reclamation machinery: the reclaim API
#: itself, and the page table (its ``free`` calls recycle empty table
#: nodes, which the scheme's consistency mechanism already covers).
_FREE_ALLOWED_MODULES = {
    "repro.persist.reclaim",
    "repro.gemos.pagetable",
}


def _allowed(module) -> bool:
    if module is None:
        return False
    if module in ALLOWED_MODULES:
        return True
    return any(
        module == p or module.startswith(p + ".") for p in ALLOWED_PREFIXES
    )


@register
class PersistBarrierChecker(Checker):
    id = "persist-barrier"
    pragma = "persist"
    kinds = ("src",)
    description = (
        "NVM-state mutations that bypass the persist hook and escape "
        "crash-point enumeration"
    )

    @staticmethod
    def _allocator_receiver(value: ast.AST, receiver) -> bool:
        """True for ``nvm_alloc.free`` / ``allocator.free`` /
        ``allocator_for(...).free`` shaped receivers."""
        if receiver in _ALLOCATOR_RECEIVERS:
            return True
        return (
            isinstance(value, ast.Call)
            and receiver_basename(value.func) == "allocator_for"
        )

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        if _allowed(file.module):
            return
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = receiver_basename(node.func.value)
                if (receiver, node.func.attr) in BANNED_CALLS:
                    yield self.finding(
                        file,
                        node,
                        "unhooked-write",
                        f"direct {receiver}.{node.func.attr}() bypasses the "
                        "persist-hooked write path",
                        _HINT_WRITE,
                    )
                elif node.func.attr == "free" and self._allocator_receiver(
                    node.func.value, receiver
                ):
                    if file.module not in _FREE_ALLOWED_MODULES:
                        yield self.finding(
                            file,
                            node,
                            "unmanaged-free",
                            "direct allocator free outside the reclamation "
                            "API can recycle a frame the committed "
                            "checkpoint still names",
                            _HINT_FREE,
                        )
            if isinstance(node, ast.Attribute) and node.attr == "_objects":
                yield self.finding(
                    file,
                    node,
                    "store-bypass",
                    "direct access to NvmObjectStore._objects skips the "
                    "store persist hook",
                    _HINT_STORE,
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr == "persist_hook" or (
                        target.attr == "hook"
                        and (receiver_basename(target.value) or "").endswith(
                            "store"
                        )
                    ):
                        yield self.finding(
                            file,
                            target,
                            "hook-tamper",
                            f"assignment to {target.attr} outside the crash "
                            "injector can silence crash-point enumeration",
                            _HINT_HOOK,
                        )
