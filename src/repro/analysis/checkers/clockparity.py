"""clock-parity: batch commits charge cycles only via bulk adds.

The kernel's accounting contract: during a miss-run or fast-run
commit, the machine clock moves exactly once — `clock_base + cycles`
— and user-time lands in one bulk `counters["cycles.user"] += ...`.
A stray `advance()` (or direct clock write) anywhere in code the
commit path can reach would double-charge cycles or interleave timer
fires mid-commit, which is precisely the drift the golden-equivalence
tests exist to catch at runtime.  This checker catches it statically:
walk everything reachable from the batch kernels through resolved
call edges and flag any `advance()` call site or clock assignment
outside the batch module itself.

The batch module's own bulk writes are the sanctioned mechanism and
are exempt; the scalar path (`Machine.access`, `advance`) is not
reachable from the kernels by construction — if an edge ever makes it
reachable, every advance site inside it lights up, which is the point.
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import AnalysisContext, Finding
from repro.analysis.graph import project_graph
from repro.analysis.registry import register
from repro.analysis.wholeprogram import (
    BATCH_MODULE,
    BATCH_ROOTS,
    WholeProgramChecker,
    resolve_roots,
)


@register
class ClockParityChecker(WholeProgramChecker):
    id = "clock-parity"
    pragma = "clock-parity"
    description = (
        "code reachable from batch run commits charges cycles only via "
        "run-commit bulk adds, never advance() or stray clock writes"
    )

    def analyze(self, ctx: AnalysisContext) -> List[Finding]:
        graph = project_graph(ctx)
        findings: List[Finding] = []
        for fid in sorted(graph.reachable(resolve_roots(graph, BATCH_ROOTS))):
            module, _, qualname = fid.partition(":")
            if module == BATCH_MODULE:
                continue  # the kernel's own bulk add is the contract
            fn = graph.function(fid)
            rel = graph.module_rel(module)
            for _receiver, line in fn.advances:
                findings.append(
                    self.site_finding(
                        rel,
                        line,
                        "advance-in-commit-path",
                        f"{qualname} calls advance() but is reachable "
                        f"from a batch run commit; cycles must flow "
                        f"through the kernel's bulk add",
                        "hoist the charge into the kernel commit or cut "
                        "the call edge from the commit path",
                    )
                )
            for _receiver, line in fn.clock_writes:
                findings.append(
                    self.site_finding(
                        rel,
                        line,
                        "clock-write-in-commit-path",
                        f"{qualname} writes the machine clock but is "
                        f"reachable from a batch run commit",
                        "only the kernel commit may move the clock "
                        "(clock_base + bulk cycles)",
                    )
                )
        return findings
