"""observer-purity: machine-hook observers read but never mutate.

`InterferenceMonitor` (and any future observer wired into machine hook
points — `note_llc_fill`, `note_device`, `note_tlb_evict`,
`power_cycle`) runs *inside* both the scalar access path and the batch
kernel.  The fast path is only legal while observers are pure with
respect to simulated state: they may read machine structures and keep
their own bookkeeping, and they may bump counters in their own
``interference.`` namespace — but they must never mutate machine
hardware state, move the clock, charge cycles, or write foreign stat
keys, because the kernel replays their hook invocations at batched
commit points where any such mutation would diverge from scalar order.

Concretely, inside an observer class's hook closure this checker
flags: `advance()` calls and clock writes; counter bumps whose key is
not statically namespaced under ``interference.``; mutations that
reach through a *foreign* attribute (one assigned from machine-derived
objects in `bind`, e.g. `self._dram_channel`) rather than the
observer's own fresh containers; and resolved calls into methods of
other classes that are themselves impure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.core import AnalysisContext, Finding
from repro.analysis.graph import ProjectGraph, project_graph
from repro.analysis.registry import register
from repro.analysis.wholeprogram import SCALAR_MODULE, WholeProgramChecker

#: Defining any of these marks a class as a machine-hook observer.
HOOK_METHODS = ("note_device", "note_llc_fill", "note_tlb_evict")

#: All hook entry points whose closure must stay pure.
OBSERVER_ROOTS = HOOK_METHODS + ("power_cycle",)

#: The one counter namespace observers own.
OBSERVER_PREFIX = "interference."


def _self_chain(
    fn, chain: Sequence[str], depth: int = 0
) -> Optional[Tuple[str, ...]]:
    """Rewrite a receiver chain to be self-rooted via local aliases, or
    None when it does not lead back to ``self``."""
    if depth > 6 or not chain:
        return None
    root = chain[0]
    if root == "self":
        return tuple(chain)
    if root.startswith("@"):
        source = fn.local_sources.get(root[1:])
        if source and source[0] not in ("!call", "!iter"):
            return _self_chain(fn, list(source) + list(chain[1:]), depth + 1)
    return None


def _is_impure(graph: ProjectGraph, fid: str) -> bool:
    """Would calling this make an observer impure?  True when the callee
    itself advances, writes clocks, mutates, or bumps foreign keys."""
    fn = graph.function(fid)
    if fn is None:
        return False
    if fn.advances or fn.clock_writes or fn.mutations:
        return True
    effects = graph.local_effects(fid)
    if effects.dynamic_counters:
        return True
    for token in effects.counters:
        if not token.startswith(OBSERVER_PREFIX):
            return True
    for prefix in effects.prefix_counters:
        if not prefix.startswith(OBSERVER_PREFIX):
            return True
    return False


@register
class ObserverPurityChecker(WholeProgramChecker):
    id = "observer-purity"
    pragma = "observer-purity"
    description = (
        "machine-hook observers (InterferenceMonitor) read but never "
        "mutate machine state, the clock, or foreign stat keys"
    )
    required_modules = (SCALAR_MODULE,)

    def analyze(self, ctx: AnalysisContext) -> List[Finding]:
        graph = project_graph(ctx)
        findings: List[Finding] = []
        for module, summary in sorted(graph.summaries.items()):
            if summary.kind != "src":
                continue
            for cls in summary.classes.values():
                if not any(hook in cls.methods for hook in HOOK_METHODS):
                    continue
                findings.extend(self._check_observer(graph, module, cls))
        return findings

    def _check_observer(self, graph: ProjectGraph, module: str, cls) -> List[Finding]:
        summary = graph.summaries[module]
        rel = summary.rel
        # Same-class closure of the hook entry points: follow resolved
        # edges only while they stay on this class; cross-class edges
        # are judged, not traversed.
        closure: Set[str] = set()
        queue = [
            f"{module}:{cls.name}.{root}"
            for root in OBSERVER_ROOTS
            if root in cls.methods
        ]
        cross_edges: List[Tuple[str, str, int]] = []
        while queue:
            fid = queue.pop()
            if fid in closure or graph.function(fid) is None:
                continue
            closure.add(fid)
            for edge in graph.edges(fid):
                if edge.kind != "call":
                    continue
                target_module, _, target_qual = edge.target.partition(":")
                if target_module == module and target_qual.startswith(
                    f"{cls.name}."
                ):
                    queue.append(edge.target)
                else:
                    cross_edges.append((fid, edge.target, edge.line))

        findings: List[Finding] = []
        for fid in sorted(closure):
            findings.extend(self._check_member(graph, module, cls, rel, fid))
        for fid, target, line in sorted(cross_edges):
            if _is_impure(graph, target):
                qualname = fid.partition(":")[2]
                target_qual = target.partition(":")[2]
                findings.append(
                    self.site_finding(
                        rel,
                        line,
                        "impure-call",
                        f"observer {qualname} calls {target_qual}, which "
                        f"mutates simulated state or foreign stat keys",
                        "observers may only read machine structures and "
                        "update their own bookkeeping",
                    )
                )
        return findings

    def _check_member(
        self, graph: ProjectGraph, module: str, cls, rel: str, fid: str
    ) -> List[Finding]:
        fn = graph.function(fid)
        qualname = fid.partition(":")[2]
        findings: List[Finding] = []
        for _receiver, line in fn.advances:
            findings.append(
                self.site_finding(
                    rel,
                    line,
                    "advance",
                    f"observer {qualname} charges cycles via advance()",
                    "observers must not move simulated time",
                )
            )
        for _receiver, line in fn.clock_writes:
            findings.append(
                self.site_finding(
                    rel,
                    line,
                    "clock-write",
                    f"observer {qualname} writes a machine clock",
                    "observers must not move simulated time",
                )
            )
        effects = graph.local_effects(fid)
        for token, sites in sorted(effects.counters.items()):
            if token.startswith(OBSERVER_PREFIX):
                continue
            line = min(line for _path, line in sites)
            findings.append(
                self.site_finding(
                    rel,
                    line,
                    "foreign-counter",
                    f"observer {qualname} bumps stat key {token!r} "
                    f"outside the '{OBSERVER_PREFIX}*' namespace",
                    "observers own only interference.* keys",
                )
            )
        for prefix, sites in sorted(effects.prefix_counters.items()):
            if prefix.startswith(OBSERVER_PREFIX):
                continue
            line = min(line for _path, line in sites)
            findings.append(
                self.site_finding(
                    rel,
                    line,
                    "foreign-counter",
                    f"observer {qualname} bumps dynamically-built stat "
                    f"keys under prefix {prefix!r} outside "
                    f"'{OBSERVER_PREFIX}*'",
                    "observers own only interference.* keys",
                )
            )
        for sites in [sorted(effects.dynamic_counters)]:
            for _path, line in sites:
                findings.append(
                    self.site_finding(
                        rel,
                        line,
                        "opaque-counter",
                        f"observer {qualname} bumps a stat key the "
                        f"analysis cannot resolve statically",
                        "derive observer keys from interference.* "
                        "constants or prefixed builders",
                    )
                )
        for receiver, op, line in fn.mutations:
            chain = _self_chain(fn, receiver)
            if chain is None or len(chain) < 2:
                continue
            first = chain[1]
            if op == "setattr" and len(chain) == 2:
                continue  # rebinding an own slot on self
            if first in cls.foreign_attrs:
                findings.append(
                    self.site_finding(
                        rel,
                        line,
                        "foreign-mutation",
                        f"observer {qualname} mutates machine-derived "
                        f"state through self.{first} ({op})",
                        "observers may only mutate their own fresh "
                        "containers",
                    )
                )
        return findings
