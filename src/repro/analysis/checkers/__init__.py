"""Repo-specific invariant checkers.

Importing this package registers every checker with
:mod:`repro.analysis.registry`.
"""

from __future__ import annotations

from repro.analysis.checkers import (  # noqa: F401 - registration imports
    determinism,
    geometry,
    persistence,
    statskeys,
    tasksafety,
)
