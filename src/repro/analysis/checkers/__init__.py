"""Repo-specific invariant checkers.

Importing this package registers every checker with
:mod:`repro.analysis.registry`.
"""

from __future__ import annotations

from repro.analysis.checkers import (  # noqa: F401 - registration imports
    clockparity,
    counterparity,
    determinism,
    fallbackcov,
    geometry,
    observerpurity,
    persistence,
    statskeys,
    tasksafety,
)
