"""Stats-key drift checker.

The replay hot paths (:class:`~repro.arch.cache.Cache`,
:class:`~repro.arch.tlb.Tlb`,
:class:`~repro.mem.controller.MemoryChannel`,
:class:`~repro.arch.machine.Machine`) skip ``Stats.add`` and bump the
shared counter dict directly through *precomputed key attributes*
(``self._hit_key = f"{name}.hit"``).  The attribute shadows a counter
name that tests, the harness and the golden-equivalence dump all read
by string — if the two drift ("hit" vs "hits"), the hot path feeds a
counter nobody reports and the reported counter silently stays zero.

Enforced contract, checkable without executing anything:

* a ``self._<stem>_key`` assignment must carry a *static suffix* whose
  last dotted component matches the attribute's stem
  (``self._read_row_hit_key = f"{name}.read_row_hit"``), or copy
  another ``*_key`` attribute whose stem it extends
  (``self._l1_hit_key = self.l1._hit_key``);
* a subscript into a cached counters mapping may only use a
  precomputed ``*_key`` attribute (assigned in the class), a string
  constant, or a locally precomputed name — never an inline f-string,
  which both reformats per access and creates a second spelling to
  drift.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.core import AnalysisContext, Finding, SourceFile
from repro.analysis.registry import Checker, register

_HINT_MATCH = (
    "name the attribute after the counter's last component "
    "(self._<suffix>_key = f\"{...}.<suffix>\")"
)
_HINT_PRECOMPUTE = (
    "precompute the key once in __init__ as a self._<suffix>_key attribute"
)


def _stem(attr: str) -> Optional[str]:
    """``_l1_hit_key`` -> ``l1_hit``; None when there is no stem."""
    if not attr.endswith("_key"):
        return None
    stem = attr[: -len("_key")].lstrip("_")
    return stem or None


def _static_suffix(value: ast.AST) -> Optional[str]:
    """The constant tail of a key expression (``f"{x}.hit"`` -> ``.hit``)."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    if isinstance(value, ast.JoinedStr) and value.values:
        last = value.values[-1]
        if isinstance(last, ast.Constant) and isinstance(last.value, str):
            return last.value
    return None


def _is_counters_value(value: ast.AST) -> bool:
    """Does this RHS expression hand out the live counter mapping?"""
    return isinstance(value, ast.Attribute) and value.attr in (
        "counters",
        "_counters",
    )


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register
class StatsKeyChecker(Checker):
    id = "stats-key"
    pragma = "stats-key"
    kinds = ("src",)
    description = (
        "precomputed hot-path stat-key attributes must match the counter "
        "names they shadow"
    )

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(file, node)

    def _check_class(
        self, file: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        functions = [
            n
            for n in ast.walk(cls)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        assigned: Set[str] = set()
        counters_attrs: Set[str] = set()
        key_assigns: List[ast.Assign] = []
        for fn in functions:
            for stmt in ast.walk(fn):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    assigned.add(attr)
                    if _is_counters_value(stmt.value):
                        counters_attrs.add(attr)
                    if attr.endswith("_key"):
                        key_assigns.append(stmt)
        for stmt in key_assigns:
            finding = self._check_key_assign(file, stmt)
            if finding is not None:
                yield finding
        for fn in functions:
            yield from self._check_subscripts(
                file, fn, counters_attrs, assigned
            )

    def _check_key_assign(
        self, file: SourceFile, stmt: ast.Assign
    ) -> Optional[Finding]:
        attr = next(a for a in map(_self_attr, stmt.targets) if a)
        stem = _stem(attr)
        if stem is None:
            return None
        value = stmt.value
        copied = None
        if isinstance(value, ast.Attribute) and value.attr.endswith("_key"):
            copied = _stem(value.attr)
        if copied is not None:
            if stem == copied or stem.endswith("_" + copied):
                return None
            return self.finding(
                file,
                stmt,
                "shadow-mismatch",
                f"self.{attr} copies {value.attr} but their stems disagree "
                f"({stem!r} vs {copied!r})",
                _HINT_MATCH,
            )
        suffix = _static_suffix(value)
        if suffix is None:
            # Dynamic values (None sentinels, locals) are not stat keys.
            return None
        component = suffix.rsplit(".", 1)[-1]
        if not component:
            return self.finding(
                file,
                stmt,
                "no-suffix",
                f"self.{attr} is formatted with no static counter suffix",
                _HINT_MATCH,
            )
        if stem == component or stem.endswith("_" + component):
            return None
        return self.finding(
            file,
            stmt,
            "key-mismatch",
            f"self.{attr} shadows counter suffix {component!r} but is named "
            f"for {stem!r}",
            _HINT_MATCH,
        )

    def _check_subscripts(
        self,
        file: SourceFile,
        fn: ast.AST,
        counters_attrs: Set[str],
        assigned: Set[str],
    ) -> Iterator[Finding]:
        local_aliases: Set[str] = set()
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and (
                        _is_counters_value(stmt.value)
                        or _self_attr(stmt.value) in counters_attrs
                    ):
                        local_aliases.add(target.id)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Subscript):
                continue
            value_attr = _self_attr(node.value)
            is_counters = value_attr in counters_attrs or (
                isinstance(node.value, ast.Name)
                and node.value.id in local_aliases
            )
            if not is_counters:
                continue
            index = node.slice
            if isinstance(index, ast.JoinedStr):
                yield self.finding(
                    file,
                    node,
                    "inline-format",
                    "counter key formatted inline at the bump site",
                    _HINT_PRECOMPUTE,
                )
                continue
            index_attr = _self_attr(index)
            if index_attr is None:
                continue  # constants, locals, conditional constants
            if not index_attr.endswith("_key"):
                yield self.finding(
                    file,
                    node,
                    "non-key-attr",
                    f"counter indexed by self.{index_attr}, which is not a "
                    "*_key attribute",
                    _HINT_PRECOMPUTE,
                )
            elif index_attr not in assigned:
                yield self.finding(
                    file,
                    node,
                    "unassigned-key",
                    f"counter key attribute self.{index_attr} is never "
                    "assigned in this class",
                    _HINT_PRECOMPUTE,
                )
