"""counter-parity: scalar and batched replay must bump the same keys.

The batched kernels (`BatchReplayer._miss_run` / `._commit`) promise
byte-identical stats to the scalar `Machine.access` path.  This checker
proves the *key-set* half of that promise statically: every stat
counter the scalar path can bump, transitively through helpers
(`Cache.lookup`, `MemoryChannel.read_latency`, the TLB-evict callback
chain, interference hooks...), must be aggregated by some batch
run-commit kernel — and the kernels must not invent batch-only keys.

Keys are compared as normalized tokens: literal keys verbatim
(``"tlb.hit"``), precomputed per-instance key attributes by their
defining class and static suffix (``Cache:*.hit`` covers ``l1.hit``,
``l2.hit``, ``llc.hit`` at once), and methods returning namespaced keys
by their static prefix (``interference.``).  Keys that cannot be
resolved statically are ignored on both sides rather than guessed.

Known, *deliberate* asymmetries are excluded by name and tied to their
scalar-fallback category — the fallback-coverage checker independently
verifies those categories stay guarded in the kernel.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.core import AnalysisContext, Finding
from repro.analysis.graph import project_graph
from repro.analysis.registry import register
from repro.analysis.wholeprogram import (
    BATCH_KERNEL_ROOT,
    BATCH_MODULE,
    BATCH_ROOTS,
    SCALAR_ROOTS,
    WholeProgramChecker,
    resolve_roots,
)

#: Scalar-only keys that are *supposed* to be scalar-only, mapped to
#: the fallback-taxonomy category that makes the asymmetry safe: the
#: kernel refuses the whole run before the key could matter.
SCALAR_ONLY_EXCLUSIONS: Dict[str, str] = {
    # Batched runs execute strictly in user mode; the eligibility
    # precheck bails on any mode stack, so os-time never accrues
    # inside a kernel.
    "cycles.os.total": "os-mode",
}


@register
class CounterParityChecker(WholeProgramChecker):
    id = "counter-parity"
    pragma = "counter-parity"
    description = (
        "every stat key the scalar replay path bumps is aggregated by a "
        "batch run-commit kernel, and vice versa"
    )

    def analyze(self, ctx: AnalysisContext) -> List[Finding]:
        graph = project_graph(ctx)
        scalar = graph.transitive(resolve_roots(graph, SCALAR_ROOTS))
        # Completeness is judged against the general miss-run kernel:
        # it must be able to aggregate every scalar key.  The inverse
        # direction considers every kernel (no root may invent keys).
        kernel = graph.transitive(resolve_roots(graph, (BATCH_KERNEL_ROOT,)))
        batch = graph.transitive(resolve_roots(graph, BATCH_ROOTS))
        batch_rel = graph.module_rel(BATCH_MODULE)
        kernel_fid = graph.find_function(BATCH_KERNEL_ROOT)
        kernel_fn = graph.function(kernel_fid) if kernel_fid else None
        kernel_line = kernel_fn.line if kernel_fn else 1

        findings: List[Finding] = []
        scalar_tokens = {
            **{t: s for t, s in scalar.counters.items()},
            **{f"prefix:{p}": s for p, s in scalar.prefix_counters.items()},
        }
        kernel_tokens = {
            **{t: s for t, s in kernel.counters.items()},
            **{f"prefix:{p}": s for p, s in kernel.prefix_counters.items()},
        }
        batch_tokens = {
            **{t: s for t, s in batch.counters.items()},
            **{f"prefix:{p}": s for p, s in batch.prefix_counters.items()},
        }
        for token in sorted(set(scalar_tokens) - set(kernel_tokens)):
            if token in SCALAR_ONLY_EXCLUSIONS:
                continue
            where = sorted({path for path, _ in scalar_tokens[token]})[0]
            findings.append(
                self.site_finding(
                    batch_rel,
                    kernel_line,
                    "missing-aggregation",
                    f"scalar replay path bumps stat key {token!r} "
                    f"(via {where}) but no batch run-commit kernel "
                    f"aggregates it",
                    "add the key to the paired *_run/commit_run kernel "
                    "or make the eligibility precheck fall back to scalar",
                )
            )
        for token in sorted(set(batch_tokens) - set(scalar_tokens)):
            path, line = sorted(batch_tokens[token])[0]
            findings.append(
                self.site_finding(
                    path,
                    line,
                    "batch-only",
                    f"batch kernel bumps stat key {token!r} that the "
                    f"scalar replay path never produces",
                    "mirror the key on the scalar path or drop it from "
                    "the kernel",
                )
            )
        return findings
