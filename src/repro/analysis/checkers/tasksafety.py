"""Cross-process task-safety checker.

:mod:`repro.exec` dispatches cells to worker processes as
``"module.path:function"`` strings (nothing heavier than plain data
crosses the process boundary), so a task target must be a *top-level,
import-resolvable function*.  A lambda, a closure, a method or a
misspelled path fails only at dispatch time — and only on the parallel
path, which is exactly the kind of serial-vs-parallel divergence the
engine promises cannot happen.  Mutable default arguments are flagged
too: a worker reuses its process for many cells, so default-state
mutation leaks between cells and breaks run-to-run determinism.

The checker statically resolves every task target it can see — string
literals (or module-level string constants) passed to ``Task(...)`` or
``sweep(...)`` — against the scanned tree, falling back to the
import-closure walker's source loader for modules outside the scanned
paths.  Dynamically computed targets cannot be verified and are
flagged for an explicit pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional

from repro.analysis.core import AnalysisContext, Finding, SourceFile
from repro.analysis.registry import Checker, register

#: ``module.path:function.attr`` task-target shape.
CALL_SPEC_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_.]*:[A-Za-z_][A-Za-z0-9_.]*$"
)

_HINT_TOP_LEVEL = (
    "define the cell as a top-level def in an importable module "
    "(see repro.exec.task.resolve)"
)
_HINT_DEFAULT = (
    "replace the mutable default with None and build the value inside "
    "the function"
)
_HINT_DYNAMIC = "pass a literal 'module:function' string"

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}


def _module_constants(tree: ast.Module) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` bindings (task-target aliases)."""
    constants: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            if isinstance(stmt.value.value, str):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = stmt.value.value
    return constants


def _callable_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _call_spec_arg(node: ast.Call) -> Optional[ast.AST]:
    """The task-target argument of a ``Task``/``sweep`` call, if any."""
    name = _callable_name(node.func)
    if name == "Task":
        for kw in node.keywords:
            if kw.arg == "call":
                return kw.value
        if node.args:
            return node.args[0]
    elif name == "sweep":
        for kw in node.keywords:
            if kw.arg == "call":
                return kw.value
        if len(node.args) >= 2:
            return node.args[1]
    return None


def _mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _callable_name(node.func)
        return name in _MUTABLE_CALLS
    return False


@register
class TaskSafetyChecker(Checker):
    id = "task-safety"
    pragma = "task"
    kinds = ("src", "test")
    description = (
        "repro.exec task targets must be top-level, import-resolvable "
        "functions without mutable defaults"
    )

    def check(self, file: SourceFile, ctx: AnalysisContext) -> Iterator[Finding]:
        constants = _module_constants(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            arg = _call_spec_arg(node)
            if arg is None:
                continue
            spec: Optional[str] = None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                spec = arg.value
            elif isinstance(arg, ast.Name):
                spec = constants.get(arg.id)
                if spec is None:
                    continue  # runtime-threaded target, checked at its source
            elif isinstance(arg, ast.JoinedStr):
                yield self.finding(
                    file,
                    node,
                    "dynamic-target",
                    "task target is built with an f-string and cannot be "
                    "statically verified",
                    _HINT_DYNAMIC,
                )
                continue
            else:
                continue
            finding = self._check_spec(file, node, spec, ctx)
            if finding is not None:
                yield finding

    def _check_spec(
        self, file: SourceFile, node: ast.Call, spec: str, ctx: AnalysisContext
    ) -> Optional[Finding]:
        if not CALL_SPEC_RE.match(spec):
            return self.finding(
                file,
                node,
                "malformed-target",
                f"task target {spec!r} is not 'module.path:function'",
                _HINT_TOP_LEVEL,
            )
        module_name, _, attr_path = spec.partition(":")
        tree = ctx.module_tree(module_name)
        if tree is None:
            return self.finding(
                file,
                node,
                "unresolvable",
                f"task target module {module_name!r} is not importable from "
                "source",
                _HINT_TOP_LEVEL,
            )
        first = attr_path.split(".", 1)[0]
        definition = self._top_level_def(tree, first)
        if definition is None:
            return self.finding(
                file,
                node,
                "not-top-level",
                f"task target {spec!r} does not name a top-level function of "
                f"{module_name}",
                _HINT_TOP_LEVEL,
            )
        if isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(definition.args.defaults) + [
                d for d in definition.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _mutable_default(default):
                    return self.finding(
                        file,
                        node,
                        "mutable-default",
                        f"task target {spec!r} has a mutable default "
                        "argument (state leaks across cells in a reused "
                        "worker)",
                        _HINT_DEFAULT,
                    )
        return None

    @staticmethod
    def _top_level_def(tree: ast.Module, name: str) -> Optional[ast.AST]:
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if stmt.name == name:
                    return stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return stmt
        return None
