"""Sparse physical memory contents with value-level persistence.

Data pages hold real bytes so that persistence claims can be validated
by value, not just by cycle accounting: a store to an NVM frame must
read back identically after a simulated power failure, while DRAM
frames lose their contents.

Frames are materialized lazily (zero-filled) the first time they are
touched, so configuring 5 GB of simulated memory costs nothing until
pages are used.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import FaultError
from repro.common.units import PAGE_SIZE
from repro.mem.hybrid import HybridLayout, MemType


class PhysicalMemory:
    """Byte-addressable backing store over a :class:`HybridLayout`."""

    def __init__(self, layout: HybridLayout) -> None:
        self.layout = layout
        self._frames: Dict[int, bytearray] = {}

    def _frame(self, pfn: int) -> bytearray:
        if not self.layout.contains_pfn(pfn):
            raise FaultError(f"pfn {pfn:#x} outside memory map")
        frame = self._frames.get(pfn)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[pfn] = frame
        return frame

    def write(self, paddr: int, data: bytes) -> None:
        """Store ``data`` at physical address ``paddr`` (may span pages)."""
        offset = paddr % PAGE_SIZE
        pfn = paddr // PAGE_SIZE
        pos = 0
        while pos < len(data):
            chunk = min(len(data) - pos, PAGE_SIZE - offset)
            self._frame(pfn)[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk
            pfn += 1
            offset = 0

    def read(self, paddr: int, size: int) -> bytes:
        """Load ``size`` bytes from physical address ``paddr``."""
        if size < 0:
            raise ValueError(f"negative read size {size}")
        offset = paddr % PAGE_SIZE
        pfn = paddr // PAGE_SIZE
        out = bytearray()
        remaining = size
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE - offset)
            frame = self._frames.get(pfn)
            if frame is None:
                if not self.layout.contains_pfn(pfn):
                    raise FaultError(f"pfn {pfn:#x} outside memory map")
                out.extend(b"\x00" * chunk)
            else:
                out.extend(frame[offset : offset + chunk])
            remaining -= chunk
            pfn += 1
            offset = 0
        return bytes(out)

    def copy_page(self, src_pfn: int, dst_pfn: int) -> None:
        """Copy one whole frame (used by HSCC migration and SSP merge)."""
        src = self._frames.get(src_pfn)
        if src is None:
            # Source never written: destination becomes zeroes.
            if not self.layout.contains_pfn(src_pfn):
                raise FaultError(f"pfn {src_pfn:#x} outside memory map")
            self._frames.pop(dst_pfn, None)
            self._frame(dst_pfn)  # materialize zeroed
            return
        dst = self._frame(dst_pfn)
        dst[:] = src

    def zero_page(self, pfn: int) -> None:
        """Clear one frame (fresh allocation)."""
        frame = self._frames.get(pfn)
        if frame is not None:
            for i in range(PAGE_SIZE):
                frame[i] = 0
        else:
            self._frame(pfn)

    def page_snapshot(self, pfn: int) -> Optional[bytes]:
        """Immutable copy of a frame's bytes, or ``None`` if untouched."""
        frame = self._frames.get(pfn)
        return bytes(frame) if frame is not None else None

    def power_fail(self) -> int:
        """Simulate power loss: DRAM frames lose their contents.

        NVM frames survive untouched.  Returns the number of frames
        dropped.
        """
        dram_lo, dram_hi = self.layout.pfn_range(MemType.DRAM)
        dropped = [pfn for pfn in self._frames if dram_lo <= pfn < dram_hi]
        for pfn in dropped:
            del self._frames[pfn]
        return len(dropped)

    @property
    def resident_frames(self) -> int:
        """Number of frames materialized so far."""
        return len(self._frames)
