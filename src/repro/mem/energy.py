"""Memory-system energy accounting.

Hybrid memory's energy case (the paper's introduction: NVM "reduce[s]
energy cost" because it needs no refresh and idles near zero) is made
quantitative here.  The model is post-hoc: it reads the event counters
the machine already collects (demand line reads/writes per technology,
bulk kernel lines, cache hits) plus the elapsed simulated time, and
prices them with per-event energies after Lee et al. [21] (PCM
architecture) and standard DDR4 datasheet figures.

Dynamic energies are per 64-byte line transfer; background power
covers refresh + standby and is charged per (GB x second).  NVM
background is negligible by design — that asymmetry is the entire
capacity-energy argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.stats import Stats
from repro.common.units import GiB, ns_from_cycles


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energies (nanojoules per 64 B line) and background
    power (milliwatts per gigabyte)."""

    dram_read_nj: float = 1.2
    dram_write_nj: float = 1.2
    #: PCM array read: current sensing, ~2x DRAM.
    nvm_read_nj: float = 2.1
    #: PCM SET/RESET programming: the dominant energy asymmetry.
    nvm_write_nj: float = 16.0
    l1_access_nj: float = 0.05
    l2_access_nj: float = 0.18
    llc_access_nj: float = 0.6
    #: DDR4 refresh + standby background.
    dram_background_mw_per_gb: float = 90.0
    #: NVM standby (no refresh).
    nvm_background_mw_per_gb: float = 1.0


@dataclass
class EnergyReport:
    """Energy breakdown in millijoules."""

    components_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mj(self) -> float:
        return sum(self.components_mj.values())

    @property
    def dynamic_mj(self) -> float:
        return sum(
            v
            for k, v in self.components_mj.items()
            if not k.endswith("background")
        )

    @property
    def background_mj(self) -> float:
        return self.total_mj - self.dynamic_mj

    def render(self) -> str:
        lines = [
            f"{name:>18}: {value:10.4f} mJ"
            for name, value in sorted(self.components_mj.items())
        ]
        lines.append(f"{'total':>18}: {self.total_mj:10.4f} mJ")
        return "\n".join(lines)


class EnergyModel:
    """Prices a run's stats counters into an :class:`EnergyReport`."""

    def __init__(self, config: EnergyConfig = EnergyConfig()) -> None:
        self.config = config

    def report(
        self,
        stats: Stats,
        elapsed_cycles: int,
        dram_bytes: int,
        nvm_bytes: int,
    ) -> EnergyReport:
        cfg = self.config
        nj: Dict[str, float] = {}

        dram_reads = stats["dram.reads"] + stats["bulk.dram.read_lines"]
        dram_writes = stats["dram.writes"] + stats["bulk.dram.write_lines"]
        nvm_reads = stats["nvm.reads"] + stats["bulk.nvm.read_lines"]
        nvm_writes = stats["nvm.writes"] + stats["bulk.nvm.write_lines"]
        nj["dram.dynamic"] = (
            dram_reads * cfg.dram_read_nj + dram_writes * cfg.dram_write_nj
        )
        nj["nvm.dynamic"] = (
            nvm_reads * cfg.nvm_read_nj + nvm_writes * cfg.nvm_write_nj
        )
        nj["cache.dynamic"] = (
            (stats["l1.hit"] + stats["l1.miss"]) * cfg.l1_access_nj
            + (stats["l2.hit"] + stats["l2.miss"]) * cfg.l2_access_nj
            + (stats["llc.hit"] + stats["llc.miss"]) * cfg.llc_access_nj
        )

        seconds = ns_from_cycles(elapsed_cycles) / 1e9
        nj["dram.background"] = (
            cfg.dram_background_mw_per_gb * (dram_bytes / GiB) * seconds * 1e6
        )
        nj["nvm.background"] = (
            cfg.nvm_background_mw_per_gb * (nvm_bytes / GiB) * seconds * 1e6
        )
        return EnergyReport({k: v / 1e6 for k, v in nj.items()})
