"""Object-granularity model of NVM-resident kernel data structures.

The paper's persistence machinery keeps several kernel structures in
NVM: per-process saved states (consistent + working context copies),
the redo log, the virtual-to-NVM-physical mapping list, and the
physical page allocation metadata (Section II-A).  Modeling each of
those at byte level would add nothing to the evaluation, so this store
holds them as named Python objects with the one property that matters:
**objects registered here survive a power failure**, while everything
the kernel keeps in ordinary (DRAM) attributes is lost when the kernel
object is discarded at crash time.

Timing is *not* modeled here — components charge their own NVM access
costs on the machine when they mutate registered objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")


class NvmObjectStore:
    """Named persistent objects (the modeling analog of NVM placement)."""

    def __init__(self) -> None:
        self._objects: Dict[str, object] = {}

    def put(self, key: str, obj: T) -> T:
        """Register ``obj`` as NVM-resident under ``key``."""
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> Optional[object]:
        return self._objects.get(key)

    def setdefault(self, key: str, obj: T) -> T:
        existing = self._objects.get(key)
        if existing is None:
            self._objects[key] = obj
            return obj
        return existing  # type: ignore[return-value]

    def remove(self, key: str) -> None:
        self._objects.pop(key, None)

    def keys_with_prefix(self, prefix: str) -> Iterator[Tuple[str, object]]:
        """Iterate ``(key, object)`` pairs whose key starts with ``prefix``."""
        for key in sorted(self._objects):
            if key.startswith(prefix):
                yield key, self._objects[key]

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def wipe(self) -> None:
        """Factory reset (NOT a crash — crashes preserve this store)."""
        self._objects.clear()
