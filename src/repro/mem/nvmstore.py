"""Object-granularity model of NVM-resident kernel data structures.

The paper's persistence machinery keeps several kernel structures in
NVM: per-process saved states (consistent + working context copies),
the redo log, the virtual-to-NVM-physical mapping list, and the
physical page allocation metadata (Section II-A).  Modeling each of
those at byte level would add nothing to the evaluation, so this store
holds them as named Python objects with the one property that matters:
**objects registered here survive a power failure**, while everything
the kernel keeps in ordinary (DRAM) attributes is lost when the kernel
object is discarded at crash time.

Timing is *not* modeled here — components charge their own NVM access
costs on the machine when they mutate registered objects.

Fault injection hooks in here at two granularities:

* every registration/removal is a persist boundary reported to an
  optional :attr:`NvmObjectStore.hook` (the crash injector numbers
  these as crash points — killing *at* the point models the mutation
  never reaching NVM);
* the media fault models below (:class:`TornWriteFault`,
  :class:`BitRotFault`) act on the byte-level NVM image in
  :class:`~repro.mem.physmem.PhysicalMemory` at power-fail time, and
  :meth:`NvmObjectStore.poison` models whole-object media loss, which
  recovery must detect (see :mod:`repro.persist.recovery`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Set, Tuple, TypeVar

from repro.common.rng import derive_rng
from repro.common.units import CACHE_LINE, PAGE_SIZE

T = TypeVar("T")

#: ``hook(kind, key)`` — persist-boundary notification for object
#: registration (``"store.put"``) and removal (``"store.remove"``).
StoreHook = Callable[[str, str], None]


class CorruptObject:
    """Sentinel left behind when media faults destroy a stored object."""

    def __init__(self, key: str, reason: str) -> None:
        self.key = key
        self.reason = reason

    def __repr__(self) -> str:
        return f"CorruptObject({self.key!r}, {self.reason!r})"


class NvmObjectStore:
    """Named persistent objects (the modeling analog of NVM placement)."""

    def __init__(self) -> None:
        self._objects: Dict[str, object] = {}
        #: Persist-boundary hook; ``None`` (default) costs one attribute
        #: test per mutation.  Installed by the crash injector.
        self.hook: Optional[StoreHook] = None

    def put(self, key: str, obj: T) -> T:
        """Register ``obj`` as NVM-resident under ``key``."""
        if self.hook is not None:
            self.hook("store.put", key)
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> Optional[object]:
        return self._objects.get(key)

    def setdefault(self, key: str, obj: T) -> T:
        existing = self._objects.get(key)
        if existing is None:
            if self.hook is not None:
                self.hook("store.put", key)
            self._objects[key] = obj
            return obj
        return existing  # type: ignore[return-value]

    def remove(self, key: str) -> None:
        if key in self._objects and self.hook is not None:
            self.hook("store.remove", key)
        self._objects.pop(key, None)

    def keys_with_prefix(self, prefix: str) -> Iterator[Tuple[str, object]]:
        """Iterate ``(key, object)`` pairs whose key starts with ``prefix``."""
        for key in sorted(self._objects):
            if key.startswith(prefix):
                yield key, self._objects[key]

    def poison(self, key: str, reason: str = "media fault") -> bool:
        """Replace a stored object with a :class:`CorruptObject`.

        Models uncorrectable media loss of one NVM-resident structure;
        recovery must notice instead of deserializing garbage.  Returns
        False when ``key`` is not registered.
        """
        if key not in self._objects:
            return False
        self._objects[key] = CorruptObject(key, reason)
        return True

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def wipe(self) -> None:
        """Factory reset (NOT a crash — crashes preserve this store)."""
        self._objects.clear()


# ----------------------------------------------------------------------
# media fault models (applied by the crash injector at power-fail time)
# ----------------------------------------------------------------------


class NvmFaultModel:
    """One byte-level NVM media fault model.

    ``apply`` runs at the instant power drops, before volatile state is
    discarded, and may scramble the NVM byte image; it returns the
    number of cache lines it damaged (surfaced through
    ``faults.<name>.lines`` in :mod:`repro.common.stats`).
    """

    name = "abstract"

    def apply(self, machine, pending_lines: Set[int]) -> int:
        raise NotImplementedError


class TornWriteFault(NvmFaultModel):
    """Unfenced line writes tear: power fails mid-program of the line.

    Every line written since the last persist barrier (``pending_lines``
    — the write-buffer contents the barrier would have drained) survives
    only with ``survival`` probability; a lost line reads back as an
    interleave of stale and new data, modeled by scrambling alternating
    8-byte words.  Fenced data is never touched: the model tests that
    persistence protocols order their fences correctly, not that they
    survive arbitrary corruption.
    """

    name = "torn_write"

    def __init__(self, seed: int = 0, survival: float = 0.5) -> None:
        if not 0.0 <= survival <= 1.0:
            raise ValueError(f"survival probability out of range: {survival}")
        self.seed = seed
        self.survival = survival

    def apply(self, machine, pending_lines: Set[int]) -> int:
        rng = derive_rng(self.seed, "torn-write")
        physmem = machine.physmem
        torn = 0
        for line in sorted(pending_lines):
            if rng.random() < self.survival:
                continue
            paddr = line * CACHE_LINE
            data = bytearray(physmem.read(paddr, CACHE_LINE))
            # Odd 8-byte words keep the new value, even ones tear to an
            # inverted (visibly wrong, deterministic) pattern.
            for word in range(0, CACHE_LINE, 16):
                for i in range(word, word + 8):
                    data[i] ^= 0xFF
            physmem.write(paddr, bytes(data))
            torn += 1
        if torn:
            machine.stats.add(f"faults.{self.name}.lines", torn)
        return torn


class BitRotFault(NvmFaultModel):
    """Wear-correlated retention loss: worn-out cells flip bits.

    PCM endurance degrades with write count, so the probability that a
    page loses a bit at power-fail scales with the wear the memory
    controller has recorded for it (``nvm_page_writes``).  Each page's
    flip chance is ``min(1, page_writes / writes_per_flip)``; one random
    bit of an afflicted page flips.
    """

    name = "bit_rot"

    def __init__(self, seed: int = 0, writes_per_flip: int = 10_000) -> None:
        if writes_per_flip <= 0:
            raise ValueError("writes_per_flip must be positive")
        self.seed = seed
        self.writes_per_flip = writes_per_flip

    def apply(self, machine, pending_lines: Set[int]) -> int:
        rng = derive_rng(self.seed, "bit-rot")
        physmem = machine.physmem
        wear = machine.controller.nvm_page_writes
        flipped = 0
        for page in sorted(wear):
            chance = min(1.0, wear[page] / self.writes_per_flip)
            if rng.random() >= chance:
                continue
            bit = rng.randrange(PAGE_SIZE * 8)
            paddr = page * PAGE_SIZE + bit // 8
            byte = physmem.read(paddr, 1)[0]
            physmem.write(paddr, bytes([byte ^ (1 << (bit % 8))]))
            flipped += 1
        if flipped:
            machine.stats.add(f"faults.{self.name}.bits", flipped)
        return flipped
