"""Hybrid memory substrate: timing, controllers, physical storage, layout.

Reproduces the gem5 memory configuration of Table I: a flat physical
address space with 3 GB of DDR4-2400 DRAM followed by 2 GB of PCM NVM,
each behind its own channel model.  The NVM channel has a 48-entry
write buffer and a 64-entry read buffer.  Physical page contents are
held in a sparse store that distinguishes volatile (DRAM) from
persistent (NVM) frames so crashes can be simulated by value.
"""

from repro.mem.controller import HybridMemoryController, MemoryChannel, NvmWriteBuffer
from repro.mem.energy import EnergyConfig, EnergyModel, EnergyReport
from repro.mem.hybrid import E820Entry, E820Type, HybridLayout, MemType
from repro.mem.nvmstore import NvmObjectStore
from repro.mem.physmem import PhysicalMemory

__all__ = [
    "HybridMemoryController",
    "MemoryChannel",
    "NvmWriteBuffer",
    "EnergyConfig",
    "EnergyModel",
    "EnergyReport",
    "E820Entry",
    "E820Type",
    "HybridLayout",
    "MemType",
    "NvmObjectStore",
    "PhysicalMemory",
]
