"""Memory channel timing models.

Two channels sit behind the LLC: a DRAM channel (DDR4-2400) and an NVM
channel (PCM, timing after Song et al. [39]).  Each models per-bank open
rows, so consecutive accesses within an 8 KiB row pay the row-hit
latency.  The NVM channel additionally models the 48-entry write buffer
from Table I: buffered writes complete at insert cost and drain in the
background at device write latency; when the buffer is full the
requester stalls until a slot drains.

The replay CPU is in-order and blocking, so device occupancy from
demand reads is implicit (one outstanding miss at a time); the write
buffer is where queueing genuinely changes results, because PCM write
latency is ~10x read latency and checkpoint/consistency machinery is
write-heavy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict  # noqa: F401 (Dict used in annotations)

from repro.common import units
from repro.common.config import MemTimingConfig, NvmBufferConfig
from repro.common.stats import Stats
from repro.common.units import cycles_from_ns


class MemoryChannel:
    """One memory technology behind an open-row bank model."""

    def __init__(
        self,
        timing: MemTimingConfig,
        stats: Stats,
        name: str,
        banks: int = 16,
    ) -> None:
        self.timing = timing
        self.stats = stats
        self.name = name
        self.banks = banks
        self._open_rows: Dict[int, int] = {}
        #: Row-buffer outcome of the most recent access, for callers
        #: tracking per-page locality (the RBLA policy, after [49]).
        #: False until the first access — policies may legitimately poll
        #: it before any traffic has been issued.
        self.last_row_hit = False
        self._read_hit = cycles_from_ns(timing.read_row_hit_ns)
        self._read_miss = cycles_from_ns(timing.read_row_miss_ns)
        self._write_hit = cycles_from_ns(timing.write_row_hit_ns)
        self._write_miss = cycles_from_ns(timing.write_row_miss_ns)
        self._row_size = timing.row_size
        self._counters = stats.counters
        self._read_row_hit_key = f"{name}.read_row_hit"
        self._read_row_miss_key = f"{name}.read_row_miss"
        self._write_row_hit_key = f"{name}.write_row_hit"
        self._write_row_miss_key = f"{name}.write_row_miss"

    def _row_lookup(self, addr: int) -> bool:
        """Open the row containing ``addr``; True if it was already open."""
        row = addr // self._row_size
        bank = row % self.banks
        hit = self._open_rows.get(bank) == row
        self._open_rows[bank] = row
        self.last_row_hit = hit
        return hit

    def read_latency(self, addr: int) -> int:
        """Cycles for a demand line read at ``addr``."""
        if self._row_lookup(addr):
            self._counters[self._read_row_hit_key] += 1
            return self._read_hit
        self._counters[self._read_row_miss_key] += 1
        return self._read_miss

    def write_latency(self, addr: int) -> int:
        """Cycles for a line write at ``addr`` hitting the device array."""
        if self._row_lookup(addr):
            self._counters[self._write_row_hit_key] += 1
            return self._write_hit
        self._counters[self._write_row_miss_key] += 1
        return self._write_miss

    def reset_rows(self) -> None:
        """Close all rows (power cycle); the row-hit flag starts over too."""
        self._open_rows.clear()
        self.last_row_hit = False

    # -- batched miss-run API (repro.replay.batch) ---------------------

    def run_view(self):
        """Row-buffer state + timing snapshot for a batched miss run.

        Returns ``(open_rows, row_size, banks, read_hit, read_miss,
        write_hit, write_miss)``.  ``open_rows`` is the *live* per-bank
        dict: the kernel mutates it in step with the accesses it
        executes, exactly as the scalar path would, and
        :meth:`reset_rows` clears it in place — so a power cycle
        arriving mid-run (from a timer callback) acts on the same
        object the kernel holds.
        """
        return (
            self._open_rows,
            self._row_size,
            self.banks,
            self._read_hit,
            self._read_miss,
            self._write_hit,
            self._write_miss,
        )

    def read_run(self, hits: int, misses: int) -> None:
        """Commit a batched run's demand-read row outcomes in bulk.

        Each counter add is guarded: a zero-valued add would *create*
        keys a scalar replay of the same trace never touches, breaking
        the byte-identical stats dump the batch engine is gated on.
        """
        if hits:
            self._counters[self._read_row_hit_key] += hits
        if misses:
            self._counters[self._read_row_miss_key] += misses

    def write_run(self, hits: int, misses: int) -> None:
        """Commit a batched run's write row outcomes in bulk (guarded
        like :meth:`read_run`)."""
        if hits:
            self._counters[self._write_row_hit_key] += hits
        if misses:
            self._counters[self._write_row_miss_key] += misses

    def end_run(self, last_row_hit: bool) -> None:
        """Record the row-buffer outcome of a run's final access on
        this channel (what ``last_row_hit`` would read after the scalar
        replay of the same ops)."""
        self.last_row_hit = last_row_hit


class NvmWriteBuffer:
    """The NVM controller's write buffer (48 entries, Table I).

    Writes enqueue at a small insert cost and drain serially at device
    write latency.  ``enqueue`` returns the latency visible to the
    requester: the insert cost, plus any stall waiting for a free slot.
    """

    #: Cost of landing a write into an SRAM buffer slot.
    INSERT_NS = 15.0

    def __init__(self, capacity: int, channel: MemoryChannel, stats: Stats) -> None:
        if capacity < 1:
            raise ValueError("write buffer capacity must be >= 1")
        self.capacity = capacity
        self.channel = channel
        self.stats = stats
        self._counters = stats.counters
        self._insert_cycles = cycles_from_ns(self.INSERT_NS)
        #: Completion times of in-flight drains, oldest first.
        self._drains: Deque[int] = deque()
        self._last_drain_end = 0

    def _reap(self, now: int) -> None:
        while self._drains and self._drains[0] <= now:
            self._drains.popleft()

    def enqueue(self, addr: int, now: int) -> int:
        """Accept a line write at cycle ``now``; return observed latency."""
        self._reap(now)
        stall = 0
        if len(self._drains) >= self.capacity:
            # Wait for the oldest drain to complete, freeing a slot.
            stall = self._drains.popleft() - now
            self._counters["nvm.write_buffer_full"] += 1
        drain_start = max(now + stall, self._last_drain_end)
        drain_end = drain_start + self.channel.write_latency(addr)
        self._drains.append(drain_end)
        self._last_drain_end = drain_end
        self._counters["nvm.buffered_writes"] += 1
        return stall + self._insert_cycles

    def drain_all(self, now: int) -> int:
        """Block until every buffered write has reached the device.

        Models the tail of a persist barrier (sfence after clwb): the
        caller cannot proceed until the NVM controller's queue is empty.
        Returns the stall in cycles.
        """
        self._reap(now)
        if not self._drains:
            return 0
        stall = max(0, self._last_drain_end - now)
        self._drains.clear()
        self.stats.add("nvm.drain_barriers")
        return stall

    @property
    def occupancy(self) -> int:
        return len(self._drains)

    # -- batched miss-run API (repro.replay.batch) ---------------------

    def run_view(self):
        """Occupancy-horizon state for a batched miss run.

        Returns ``(drains, capacity, insert_cycles)``.  ``drains`` is
        the *live* completion-time deque: the kernel reaps and appends
        it per buffered write exactly as :meth:`enqueue` would, so a
        :meth:`reset` from a mid-run timer callback clears the same
        object.  The drain horizon (``_last_drain_end``) is
        deliberately *not* part of the view — it is a scalar the kernel
        must re-read at every run start and commit back via
        :meth:`commit_run`.
        """
        return self._drains, self.capacity, self._insert_cycles

    def commit_run(
        self, last_drain_end: int, buffered: int, full_stalls: int
    ) -> None:
        """Commit a batched run's write-buffer activity.

        ``last_drain_end`` is the kernel's final drain horizon; the
        counter adds are guarded so zero-valued keys are never created
        (byte-identical dumps vs scalar).
        """
        self._last_drain_end = last_drain_end
        if buffered:
            self._counters["nvm.buffered_writes"] += buffered
        if full_stalls:
            self._counters["nvm.write_buffer_full"] += full_stalls

    def reset(self) -> None:
        """Power cycle: in-flight contents are gone (hence they must be
        drained *before* a crash for data to be durable)."""
        self._drains.clear()
        self._last_drain_end = 0


class HybridMemoryController:
    """Front-end that routes line requests to the DRAM or NVM channel.

    Tracks per-page NVM write counts: PCM cells endure a bounded number
    of SET/RESET cycles, so write skew — which pages absorb the
    persistence machinery's traffic — is a first-order design concern
    (see :meth:`wear_report`).
    """

    def __init__(
        self,
        dram_timing: MemTimingConfig,
        nvm_timing: MemTimingConfig,
        buffers: NvmBufferConfig,
        stats: Stats,
    ) -> None:
        self.stats = stats
        self.dram = MemoryChannel(dram_timing, stats, "dram")
        self.nvm = MemoryChannel(nvm_timing, stats, "nvm")
        self.nvm_write_buffer = NvmWriteBuffer(
            buffers.write_buffer_entries, self.nvm, stats
        )
        self.read_buffer_entries = buffers.read_buffer_entries
        #: NVM page -> line writes that reached the device (wear).
        self.nvm_page_writes: Dict[int, int] = {}
        #: NVM page -> demand-read row-buffer misses (row locality; the
        #: RBLA migration policy [49] ranks pages by this).
        self.nvm_page_row_misses: Dict[int, int] = {}
        # Wear/locality accounting is per page, so the shift must follow
        # the configured page size (read at construction time, so tests
        # can patch ``repro.common.units.PAGE_SIZE``), not a 4K literal.
        page_size = units.PAGE_SIZE
        self._page_shift = page_size.bit_length() - 1
        if 1 << self._page_shift != page_size:
            raise ValueError(f"PAGE_SIZE must be a power of two: {page_size}")
        self._counters = stats.counters

    def read(self, addr: int, is_nvm: bool, now: int) -> int:
        """Demand line read; returns latency in cycles."""
        if is_nvm:
            self._counters["nvm.reads"] += 1
            latency = self.nvm.read_latency(addr)
            if not self.nvm.last_row_hit:
                page = addr >> self._page_shift
                self.nvm_page_row_misses[page] = (
                    self.nvm_page_row_misses.get(page, 0) + 1
                )
            return latency
        self._counters["dram.reads"] += 1
        return self.dram.read_latency(addr)

    def write(self, addr: int, is_nvm: bool, now: int) -> int:
        """Line write (writeback or streaming store); returns latency."""
        if is_nvm:
            self._counters["nvm.writes"] += 1
            page = addr >> self._page_shift
            self.nvm_page_writes[page] = self.nvm_page_writes.get(page, 0) + 1
            return self.nvm_write_buffer.enqueue(addr, now)
        self._counters["dram.writes"] += 1
        # DRAM writes are posted: the write queue in a DDR4 controller
        # absorbs them; charge the row activity cost only.
        return self.dram.write_latency(addr)

    # -- batched miss-run API (repro.replay.batch) ---------------------

    def run_view(self):
        """Routing state for a batched miss run: the wear/locality page
        maps (live dicts, mutated per access like the scalar path) and
        the page shift they are keyed by."""
        return self.nvm_page_writes, self.nvm_page_row_misses, self._page_shift

    def read_run(self, nvm_reads: int, dram_reads: int) -> None:
        """Commit a batched run's demand-read routing counts in bulk
        (guarded: zero adds must not create counter keys)."""
        if nvm_reads:
            self._counters["nvm.reads"] += nvm_reads
        if dram_reads:
            self._counters["dram.reads"] += dram_reads

    def write_run(self, nvm_writes: int, dram_writes: int) -> None:
        """Commit a batched run's write routing counts in bulk (guarded
        like :meth:`read_run`)."""
        if nvm_writes:
            self._counters["nvm.writes"] += nvm_writes
        if dram_writes:
            self._counters["dram.writes"] += dram_writes

    def persist_barrier(self, now: int) -> int:
        """Stall until all buffered NVM writes are durable."""
        return self.nvm_write_buffer.drain_all(now)

    def power_cycle(self) -> None:
        """Close rows and discard buffered (volatile) writes.

        Wear counters survive: cell wear is physical, not state.
        """
        self.dram.reset_rows()
        self.nvm.reset_rows()
        self.nvm_write_buffer.reset()

    def wear_report(self, top: int = 10) -> Dict[str, object]:
        """NVM endurance summary: totals, skew and the hottest pages."""
        writes = self.nvm_page_writes
        if not writes:
            return {
                "pages_written": 0,
                "total_line_writes": 0,
                "max_page_writes": 0,
                "mean_page_writes": 0.0,
                "skew": 0.0,
                "hottest_pages": [],
            }
        total = sum(writes.values())
        peak = max(writes.values())
        mean = total / len(writes)
        hottest = sorted(writes.items(), key=lambda kv: kv[1], reverse=True)
        return {
            "pages_written": len(writes),
            "total_line_writes": total,
            "max_page_writes": peak,
            "mean_page_writes": mean,
            #: max/mean: 1.0 means perfectly level wear.
            "skew": peak / mean,
            "hottest_pages": hottest[:top],
        }
