"""Flat hybrid physical address space and the BIOS (e820) memory map.

Kindle "partitions the physical memory address range between NVM and
DRAM, and inserts corresponding entries in the gem5 BIOS implementation
of e820" (Section II).  :class:`HybridLayout` is that partition: DRAM
occupies the low range, NVM the high range, and :meth:`e820_map`
produces the table the (simulated) OS reads at boot to discover both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.common.config import HybridLayoutConfig
from repro.common.errors import FaultError
from repro.common.units import PAGE_SIZE


class MemType(enum.Enum):
    """Which technology backs a physical address."""

    DRAM = "dram"
    NVM = "nvm"


class E820Type(enum.IntEnum):
    """BIOS memory map entry types (subset of the ACPI-defined set)."""

    USABLE = 1
    RESERVED = 2
    #: ACPI 6.0 type 7: persistent memory.
    PMEM = 7


@dataclass(frozen=True)
class E820Entry:
    """One BIOS memory map row: ``[base, base+length)`` of ``kind``."""

    base: int
    length: int
    kind: E820Type


class HybridLayout:
    """Physical address partition between DRAM and NVM.

    Addresses in ``[dram_base, nvm_base)`` are DRAM; addresses in
    ``[nvm_base, end)`` are NVM.  Page frame numbers (pfns) are global
    across both ranges.
    """

    def __init__(self, config: HybridLayoutConfig) -> None:
        self.config = config
        self.dram_base = config.dram_base
        self.nvm_base = config.nvm_base
        self.end = config.dram_base + config.total_bytes
        self._nvm_base_pfn = self.nvm_base // PAGE_SIZE
        self._dram_base_pfn = self.dram_base // PAGE_SIZE
        self._end_pfn = self.end // PAGE_SIZE

    def mem_type_of_addr(self, addr: int) -> MemType:
        """Technology backing physical address ``addr``."""
        if self.dram_base <= addr < self.nvm_base:
            return MemType.DRAM
        if self.nvm_base <= addr < self.end:
            return MemType.NVM
        raise FaultError(f"physical address {addr:#x} outside memory map")

    def mem_type_of_pfn(self, pfn: int) -> MemType:
        """Technology backing page frame ``pfn``."""
        if self._dram_base_pfn <= pfn < self._nvm_base_pfn:
            return MemType.DRAM
        if self._nvm_base_pfn <= pfn < self._end_pfn:
            return MemType.NVM
        raise FaultError(f"pfn {pfn:#x} outside memory map")

    def pfn_range(self, mem_type: MemType) -> Tuple[int, int]:
        """Half-open pfn range ``[first, last)`` of one technology."""
        if mem_type is MemType.DRAM:
            return (self._dram_base_pfn, self._nvm_base_pfn)
        return (self._nvm_base_pfn, self._end_pfn)

    def contains_pfn(self, pfn: int) -> bool:
        return self._dram_base_pfn <= pfn < self._end_pfn

    def e820_map(self) -> List[E820Entry]:
        """The BIOS memory map the simulated OS parses at boot."""
        return [
            E820Entry(self.dram_base, self.config.dram_bytes, E820Type.USABLE),
            E820Entry(self.nvm_base, self.config.nvm_bytes, E820Type.PMEM),
        ]
