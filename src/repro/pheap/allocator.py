"""A crash-recoverable first-fit heap over one NVM mapping.

On-media layout (all integers little-endian u64):

```
offset 0   : magic (HEAP_MAGIC)
offset 8   : root offset (0 = unset) — the persistent-object-store
             entry point, as in HeapO [15]
offset 16  : first block header
block      : [header u64][payload ...]
             header = payload_size << 1 | used_bit
```

Blocks tile the region exactly; traversal walks header-to-header.
Every metadata store is followed by clwb + fence (the user-space
persist path), so a completed operation is durable; operations are
made failure-atomic by ordering: a block's header is persisted
*before* any split remainder or link depends on it, and ``free`` is a
single persisted header write.

All reads and writes go through :meth:`Machine.load`/``store``:
charged like any application access, value-faithful, and therefore
honestly crash-testable — recovery is literally re-reading the bytes.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import KindleError
from repro.common.units import PAGE_SIZE, align_up
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE

HEAP_MAGIC = 0x4B494E444C450001  # "KINDLE" v1
_WORD = 8
_HEADER_BYTES = 8
_DATA_START = 16
#: Minimum payload so freed blocks can always host a header on split.
_MIN_PAYLOAD = 16


class HeapCorruption(KindleError):
    """The on-media heap structure failed validation."""


class PersistentHeap:
    """One persistent heap inside an ``mmap(MAP_NVM)`` region."""

    def __init__(self, kernel: Kernel, process: Process, base: int, size: int):
        self.kernel = kernel
        self.machine = kernel.machine
        self.process = process
        self.base = base
        self.size = size

    # ------------------------------------------------------------------
    # construction / reattachment
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        kernel: Kernel,
        process: Process,
        size: int = 1 << 20,
        name: str = "pheap",
    ) -> "PersistentHeap":
        """mmap a fresh NVM region and format it as an empty heap."""
        if size < _DATA_START + _HEADER_BYTES + _MIN_PAYLOAD:
            raise KindleError(f"heap size {size} too small")
        base = kernel.sys_mmap(
            process, None, size, PROT_READ | PROT_WRITE, MAP_NVM, name=name
        )
        heap = cls(kernel, process, base, align_up(size, PAGE_SIZE))
        heap._write_u64(0, HEAP_MAGIC)
        heap._write_u64(8, 0)  # no root yet
        whole = heap.size - _DATA_START - _HEADER_BYTES
        heap._write_header(_DATA_START, whole, used=False)
        heap._persist(0, _DATA_START + _HEADER_BYTES)
        return heap

    @classmethod
    def attach(
        cls, kernel: Kernel, process: Process, base: int
    ) -> "PersistentHeap":
        """Reattach to an existing heap (e.g. after crash recovery)."""
        vma = process.address_space.find(base)
        if vma is None or vma.start != base:
            raise HeapCorruption(f"no mapping at {base:#x}")
        heap = cls(kernel, process, base, vma.length)
        if heap._read_u64(0) != HEAP_MAGIC:
            raise HeapCorruption("bad heap magic")
        heap.check()
        return heap

    # ------------------------------------------------------------------
    # raw media access
    # ------------------------------------------------------------------

    def _read_u64(self, offset: int) -> int:
        data = self.machine.load(self.base + offset, _WORD)
        return struct.unpack("<Q", data)[0]

    def _write_u64(self, offset: int, value: int) -> None:
        self.machine.store(self.base + offset, struct.pack("<Q", value))

    def _persist(self, offset: int, size: int) -> None:
        self.machine.clwb_virtual(self.base + offset, size)
        self.machine.persist_barrier()

    def _write_header(self, offset: int, payload: int, used: bool) -> None:
        self._write_u64(offset, (payload << 1) | int(used))

    def _read_header(self, offset: int) -> Tuple[int, bool]:
        raw = self._read_u64(offset)
        return raw >> 1, bool(raw & 1)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _blocks(self) -> Iterator[Tuple[int, int, bool]]:
        """Yield ``(header_offset, payload_size, used)`` for every block."""
        offset = _DATA_START
        while offset + _HEADER_BYTES <= self.size:
            payload, used = self._read_header(offset)
            if payload == 0 or offset + _HEADER_BYTES + payload > self.size:
                raise HeapCorruption(f"bad block at offset {offset:#x}")
            yield offset, payload, used
            offset += _HEADER_BYTES + payload

    def alloc(self, nbytes: int) -> int:
        """First-fit allocate; returns the payload's virtual address."""
        if nbytes <= 0:
            raise KindleError("allocation size must be positive")
        need = align_up(max(nbytes, _MIN_PAYLOAD), _WORD)
        for offset, payload, used in self._blocks():
            if used or payload < need:
                continue
            remainder = payload - need
            if remainder >= _HEADER_BYTES + _MIN_PAYLOAD:
                # Split: persist the tail's header first, then shrink
                # this block (ordering keeps traversal valid at every
                # instant).
                tail = offset + _HEADER_BYTES + need
                self._write_header(
                    tail, remainder - _HEADER_BYTES, used=False
                )
                self._persist(tail, _HEADER_BYTES)
                self._write_header(offset, need, used=True)
            else:
                self._write_header(offset, payload, used=True)
            self._persist(offset, _HEADER_BYTES)
            self.machine.stats.add("pheap.allocs")
            return self.base + offset + _HEADER_BYTES
        raise KindleError(f"persistent heap full ({nbytes} bytes requested)")

    def free(self, vaddr: int) -> None:
        """Free a payload address, forward-coalescing with a free
        successor.

        Each step is one persisted header write and the block chain is
        valid at every instant: after the first write the block is
        free; after the optional merge the two free neighbours are one.
        (Backward coalescing would need per-block back-links on media;
        first-fit plus forward merges keeps fragmentation bounded for
        the allocation mixes persistent heaps see.)
        """
        offset = vaddr - self.base - _HEADER_BYTES
        payload, used = self._find_block(offset)
        if not used:
            raise KindleError(f"double free at {vaddr:#x}")
        self._write_header(offset, payload, used=False)
        self._persist(offset, _HEADER_BYTES)
        self._coalesce_forward(offset)
        self.machine.stats.add("pheap.frees")

    def _coalesce_forward(self, offset: int) -> None:
        payload, used = self._read_header(offset)
        if used:
            return
        next_offset = offset + _HEADER_BYTES + payload
        if next_offset + _HEADER_BYTES > self.size:
            return
        next_payload, next_used = self._read_header(next_offset)
        if next_used:
            return
        merged = payload + _HEADER_BYTES + next_payload
        self._write_header(offset, merged, used=False)
        self._persist(offset, _HEADER_BYTES)
        self.machine.stats.add("pheap.coalesces")

    def realloc(self, vaddr: int, nbytes: int) -> int:
        """Resize an allocation; returns the (possibly moved) address.

        Grows in place when the successor block is free and large
        enough; otherwise allocates fresh, copies the old payload and
        frees the original.
        """
        if nbytes <= 0:
            raise KindleError("realloc size must be positive")
        offset = vaddr - self.base - _HEADER_BYTES
        payload, used = self._find_block(offset)
        if not used:
            raise KindleError(f"realloc of free block at {vaddr:#x}")
        need = align_up(max(nbytes, _MIN_PAYLOAD), _WORD)
        if need <= payload:
            return vaddr  # shrink-in-place: keep the block as is
        next_offset = offset + _HEADER_BYTES + payload
        if next_offset + _HEADER_BYTES <= self.size:
            next_payload, next_used = self._read_header(next_offset)
            total = payload + _HEADER_BYTES + next_payload
            if not next_used and total >= need:
                remainder = total - need
                if remainder >= _HEADER_BYTES + _MIN_PAYLOAD:
                    tail = offset + _HEADER_BYTES + need
                    self._write_header(
                        tail, remainder - _HEADER_BYTES, used=False
                    )
                    self._persist(tail, _HEADER_BYTES)
                    self._write_header(offset, need, used=True)
                else:
                    self._write_header(offset, total, used=True)
                self._persist(offset, _HEADER_BYTES)
                self.machine.stats.add("pheap.reallocs_inplace")
                return vaddr
        # Move: classic alloc + copy + free.
        new_vaddr = self.alloc(nbytes)
        self.write(new_vaddr, self.read(vaddr, payload))
        self.free(vaddr)
        self.machine.stats.add("pheap.reallocs_moved")
        return new_vaddr

    def _find_block(self, header_offset: int) -> Tuple[int, bool]:
        for offset, payload, used in self._blocks():
            if offset == header_offset:
                return payload, used
        raise KindleError(f"no block with header at offset {header_offset:#x}")

    # ------------------------------------------------------------------
    # persistent object-store root (HeapO-style)
    # ------------------------------------------------------------------

    def set_root(self, vaddr: int) -> None:
        """Persistently record the application's entry-point object."""
        if vaddr and not (self.base <= vaddr < self.base + self.size):
            raise KindleError(f"root {vaddr:#x} outside the heap")
        self._write_u64(8, vaddr - self.base if vaddr else 0)
        self._persist(8, _WORD)

    def get_root(self) -> Optional[int]:
        offset = self._read_u64(8)
        return self.base + offset if offset else None

    # ------------------------------------------------------------------
    # data convenience
    # ------------------------------------------------------------------

    def write(self, vaddr: int, data: bytes, persist: bool = True) -> None:
        self.machine.store(vaddr, data)
        if persist:
            self.machine.clwb_virtual(vaddr, len(data))
            self.machine.persist_barrier()

    def read(self, vaddr: int, size: int) -> bytes:
        return self.machine.load(vaddr, size)

    def _page_mappings(self) -> List[Tuple[int, int]]:
        """Live (vpn, pfn) translations of the heap region.

        Test/recovery plumbing: lets a caller replant the exact frame
        mappings after a reboot that bypassed the persistence layer,
        isolating the on-media format under test.
        """
        table = self.process.page_table
        assert table is not None
        base_vpn = self.base // PAGE_SIZE
        end_vpn = (self.base + self.size) // PAGE_SIZE
        mappings = []
        for vpn in range(base_vpn, end_vpn):
            pte = table.lookup(vpn)
            if pte is not None:
                mappings.append((vpn, pte.pfn))
        return mappings

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def check(self) -> List[Tuple[int, int, bool]]:
        """Full traversal; raises :class:`HeapCorruption` on damage."""
        blocks = list(self._blocks())
        end = blocks[-1][0] + _HEADER_BYTES + blocks[-1][1] if blocks else 0
        if end != self.size:
            raise HeapCorruption(
                f"blocks tile {end} bytes of a {self.size}-byte heap"
            )
        return blocks

    @property
    def free_bytes(self) -> int:
        return sum(p for _o, p, used in self._blocks() if not used)

    @property
    def used_blocks(self) -> int:
        return sum(1 for _o, _p, used in self._blocks() if used)
