"""User-space persistent heap (after nvm_malloc [38] and HeapO [15]).

The paper's related work lists "specialized memory allocation routines"
and persistent object stores as the application-level face of NVM data
persistence.  :class:`PersistentHeap` is that layer built on Kindle's
``mmap(MAP_NVM)``: a byte-level heap whose *entire* metadata (magic,
root pointer, block headers) lives as real bytes inside the simulated
NVM region — so after a crash and reboot the heap is reattached by
reading those bytes back, with no volatile bookkeeping to reconstruct.
"""

from repro.pheap.allocator import HeapCorruption, PersistentHeap

__all__ = ["PersistentHeap", "HeapCorruption"]
