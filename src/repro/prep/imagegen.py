"""The disk-image generator (component ② of Fig. 3).

"It processes the trace file to generate a tuple containing (period,
offset, operation, size, area) for each memory access ... The image
generator labels each memory area in the virtual memory layout
information captured using maps pseudo file and then associates memory
accesses in trace to an area name by checking whether access lies
within the address range of that area."
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union

from repro.common.errors import TraceFormatError
from repro.prep.maps import AddressLayout
from repro.prep.trace import READ, WRITE, TraceRecord


@dataclass(frozen=True)
class ReplayTuple:
    """One (period, offset, operation, size, area) image entry."""

    period: int
    offset: int
    op: str
    size: int
    area: str

    @property
    def is_write(self) -> bool:
        return self.op == WRITE


@dataclass(frozen=True)
class AreaSpec:
    """One heap/stack allocation the template program must recreate."""

    name: str
    size: int
    kind: str


@dataclass
class DiskImage:
    """The gem5 disk image contents: areas + replay tuples."""

    name: str
    areas: List[AreaSpec]
    tuples: List[ReplayTuple]

    @property
    def total_ops(self) -> int:
        return len(self.tuples)

    @property
    def write_fraction(self) -> float:
        if not self.tuples:
            return 0.0
        return sum(1 for t in self.tuples if t.is_write) / len(self.tuples)

    def mix(self) -> tuple:
        """(read %, write %) rounded like Table II."""
        writes = round(self.write_fraction * 100)
        return 100 - writes, writes

    def area(self, name: str) -> AreaSpec:
        for spec in self.areas:
            if spec.name == name:
                return spec
        raise KeyError(name)


def generate_image(
    name: str, trace: Sequence[TraceRecord], layout: AddressLayout
) -> DiskImage:
    """Label every trace record with its area and rebase to offsets."""
    areas = [AreaSpec(r.name, r.size, r.kind) for r in layout]
    tuples: List[ReplayTuple] = []
    for record in trace:
        region = layout.region_for(record.addr)
        if region is None:
            raise TraceFormatError(
                f"trace access at {record.addr:#x} outside every region"
            )
        if record.addr + record.size > region.end:
            raise TraceFormatError(
                f"trace access at {record.addr:#x} spills out of "
                f"region {region.name!r}"
            )
        tuples.append(
            ReplayTuple(
                period=record.period,
                offset=record.addr - region.start,
                op=record.op,
                size=record.size,
                area=region.name,
            )
        )
    return DiskImage(name=name, areas=areas, tuples=tuples)


_HEADER = "# kindle-image v1"


def save_image(image: DiskImage, path: Union[str, Path]) -> None:
    """Serialize an image to text (the artifact gem5 would mount)."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(_HEADER + "\n")
        fh.write(f"name {image.name}\n")
        for area in image.areas:
            fh.write(f"area {area.name} {area.size} {area.kind}\n")
        for t in image.tuples:
            fh.write(f"{t.period} {t.offset} {t.op} {t.size} {t.area}\n")


def load_image(path: Union[str, Path]) -> DiskImage:
    """Parse an image written by :func:`save_image`."""
    areas: List[AreaSpec] = []
    tuples: List[ReplayTuple] = []
    name = "image"
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().rstrip("\n")
        if header != _HEADER:
            raise TraceFormatError(f"unrecognized image header {header!r}")
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "name":
                name = parts[1]
            elif parts[0] == "area":
                if len(parts) != 4:
                    raise TraceFormatError(f"line {lineno}: bad area row")
                areas.append(AreaSpec(parts[1], int(parts[2]), parts[3]))
            else:
                if len(parts) != 5 or parts[2] not in (READ, WRITE):
                    raise TraceFormatError(f"line {lineno}: bad tuple row")
                tuples.append(
                    ReplayTuple(
                        period=int(parts[0]),
                        offset=int(parts[1]),
                        op=parts[2],
                        size=int(parts[3]),
                        area=parts[4],
                    )
                )
    return DiskImage(name=name, areas=areas, tuples=tuples)
