"""The disk-image generator (component ② of Fig. 3).

"It processes the trace file to generate a tuple containing (period,
offset, operation, size, area) for each memory access ... The image
generator labels each memory area in the virtual memory layout
information captured using maps pseudo file and then associates memory
accesses in trace to an area name by checking whether access lies
within the address range of that area."
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from repro.common.errors import TraceFormatError
from repro.prep.maps import AddressLayout
from repro.prep.trace import READ, WRITE, TraceRecord


@dataclass(frozen=True)
class ReplayTuple:
    """One (period, offset, operation, size, area) image entry."""

    period: int
    offset: int
    op: str
    size: int
    area: str

    @property
    def is_write(self) -> bool:
        return self.op == WRITE


@dataclass(frozen=True)
class AreaSpec:
    """One heap/stack allocation the template program must recreate."""

    name: str
    size: int
    kind: str


@dataclass
class DiskImage:
    """The gem5 disk image contents: areas + replay tuples."""

    name: str
    areas: List[AreaSpec]
    tuples: List[ReplayTuple]

    @property
    def total_ops(self) -> int:
        return len(self.tuples)

    @property
    def write_fraction(self) -> float:
        if not self.tuples:
            return 0.0
        return sum(1 for t in self.tuples if t.is_write) / len(self.tuples)

    def mix(self) -> tuple:
        """(read %, write %) rounded like Table II."""
        writes = round(self.write_fraction * 100)
        return 100 - writes, writes

    def area(self, name: str) -> AreaSpec:
        for spec in self.areas:
            if spec.name == name:
                return spec
        raise KeyError(name)


def generate_image(
    name: str, trace: Sequence[TraceRecord], layout: AddressLayout
) -> DiskImage:
    """Label every trace record with its area and rebase to offsets."""
    areas = [AreaSpec(r.name, r.size, r.kind) for r in layout]
    tuples: List[ReplayTuple] = []
    for record in trace:
        region = layout.region_for(record.addr)
        if region is None:
            raise TraceFormatError(
                f"trace access at {record.addr:#x} outside every region"
            )
        if record.addr + record.size > region.end:
            raise TraceFormatError(
                f"trace access at {record.addr:#x} spills out of "
                f"region {region.name!r}"
            )
        tuples.append(
            ReplayTuple(
                period=record.period,
                offset=record.addr - region.start,
                op=record.op,
                size=record.size,
                area=region.name,
            )
        )
    return DiskImage(name=name, areas=areas, tuples=tuples)


_HEADER = "# kindle-image v1"


def save_image(image: DiskImage, path: Union[str, Path]) -> None:
    """Serialize an image to text (the artifact gem5 would mount)."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(_HEADER + "\n")
        fh.write(f"name {image.name}\n")
        for area in image.areas:
            fh.write(f"area {area.name} {area.size} {area.kind}\n")
        for t in image.tuples:
            fh.write(f"{t.period} {t.offset} {t.op} {t.size} {t.area}\n")


def load_image(path: Union[str, Path]) -> DiskImage:
    """Parse an image written by :func:`save_image`."""
    areas: List[AreaSpec] = []
    tuples: List[ReplayTuple] = []
    name = "image"
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().rstrip("\n")
        if header != _HEADER:
            raise TraceFormatError(f"unrecognized image header {header!r}")
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "name":
                name = parts[1]
            elif parts[0] == "area":
                if len(parts) != 4:
                    raise TraceFormatError(f"line {lineno}: bad area row")
                areas.append(AreaSpec(parts[1], int(parts[2]), parts[3]))
            else:
                if len(parts) != 5 or parts[2] not in (READ, WRITE):
                    raise TraceFormatError(f"line {lineno}: bad tuple row")
                tuples.append(
                    ReplayTuple(
                        period=int(parts[0]),
                        offset=int(parts[1]),
                        op=parts[2],
                        size=int(parts[3]),
                        area=parts[4],
                    )
                )
    return DiskImage(name=name, areas=areas, tuples=tuples)


# ----------------------------------------------------------------------
# packed binary image container (compact replay artifacts)
# ----------------------------------------------------------------------

#: Magic + version for the binary image container.  The body is a JSON
#: metadata block (name, area table, tuple count) followed by one packed
#: numpy record per replay tuple — 24 bytes instead of ~20 characters,
#: which is what makes multi-million-op image artifacts practical.
IMG_MAGIC = b"KNDLIMGB"
IMG_VERSION = 1

#: Header: magic(8) + version(u2) + reserved(u2) + json_len(u4), LE.
_IMG_HEADER = struct.Struct("<8sHHI")

#: One packed replay tuple; ``area`` indexes the JSON area table and
#: ``flags`` bit 0 is the write bit.
IMG_DTYPE = np.dtype(
    [
        ("period", "<u8"),
        ("offset", "<u8"),
        ("size", "<u4"),
        ("area", "<u2"),
        ("flags", "<u2"),
    ]
)

_IMG_FLAG_WRITE = 1


def save_image_binary(image: DiskImage, path: Union[str, Path]) -> int:
    """Serialize an image to the packed binary container.

    Returns the number of replay tuples written.
    """
    area_index = {spec.name: i for i, spec in enumerate(image.areas)}
    if len(area_index) > 0xFFFF:
        raise TraceFormatError("binary image supports at most 65535 areas")
    meta = {
        "name": image.name,
        "areas": [[a.name, a.size, a.kind] for a in image.areas],
        "tuples": len(image.tuples),
    }
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    body = np.zeros(len(image.tuples), dtype=IMG_DTYPE)
    for i, t in enumerate(image.tuples):
        try:
            area = area_index[t.area]
        except KeyError:
            raise TraceFormatError(
                f"tuple {i} references unknown area {t.area!r}"
            ) from None
        body[i] = (
            t.period,
            t.offset,
            t.size,
            area,
            _IMG_FLAG_WRITE if t.is_write else 0,
        )
    with open(path, "wb") as fh:
        fh.write(_IMG_HEADER.pack(IMG_MAGIC, IMG_VERSION, 0, len(meta_bytes)))
        fh.write(meta_bytes)
        fh.write(body.tobytes())
    return len(body)


def load_image_binary(path: Union[str, Path]) -> DiskImage:
    """Parse an image written by :func:`save_image_binary`.

    Corrupt headers, truncated payloads and dangling area references
    all raise :class:`TraceFormatError` — a damaged artifact must never
    silently replay a prefix.
    """
    with open(path, "rb") as fh:
        header = fh.read(_IMG_HEADER.size)
        if len(header) < _IMG_HEADER.size:
            raise TraceFormatError("binary image truncated inside header")
        magic, version, _reserved, meta_len = _IMG_HEADER.unpack(header)
        if magic != IMG_MAGIC:
            raise TraceFormatError(f"unrecognized binary image magic {magic!r}")
        if version != IMG_VERSION:
            raise TraceFormatError(f"unsupported binary image version {version}")
        meta_bytes = fh.read(meta_len)
        if len(meta_bytes) < meta_len:
            raise TraceFormatError("binary image truncated inside metadata")
        body = fh.read()
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
        name = meta["name"]
        areas = [AreaSpec(n, int(size), kind) for n, size, kind in meta["areas"]]
        count = int(meta["tuples"])
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceFormatError(f"bad binary image metadata: {exc}") from exc
    expected = count * IMG_DTYPE.itemsize
    if len(body) != expected:
        raise TraceFormatError(
            f"binary image payload is {len(body)} bytes, expected {expected}"
        )
    packed = np.frombuffer(body, dtype=IMG_DTYPE)
    tuples: List[ReplayTuple] = []
    for i in range(count):
        record = packed[i]
        area = int(record["area"])
        if area >= len(areas):
            raise TraceFormatError(f"tuple {i} references missing area {area}")
        tuples.append(
            ReplayTuple(
                period=int(record["period"]),
                offset=int(record["offset"]),
                op=WRITE if record["flags"] & _IMG_FLAG_WRITE else READ,
                size=int(record["size"]),
                area=areas[area].name,
            )
        )
    return DiskImage(name=name, areas=areas, tuples=tuples)
