"""Host address-space layout (the /proc/pid/maps substitute).

Kindle's driver saves the traced application's virtual memory layout by
reading ``/proc/pid/maps``; the image generator later labels every
traced access with the *area* (which heap or stack region) it falls in.
:class:`AddressLayout` is that layout: named, non-overlapping regions
with render/parse in a maps-like text format.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common.errors import TraceFormatError

HEAP = "heap"
STACK = "stack"
OTHER = "other"

_KINDS = (HEAP, STACK, OTHER)


@dataclass(frozen=True)
class Region:
    """One mapped region of the traced host process."""

    start: int
    end: int
    name: str
    kind: str = HEAP

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty region {self.name!r}")
        if self.kind not in _KINDS:
            raise ValueError(f"bad region kind {self.kind!r}")

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


class AddressLayout:
    """Sorted, non-overlapping named regions."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def add(self, region: Region) -> Region:
        for existing in self._regions:
            if existing.start < region.end and region.start < existing.end:
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
            if existing.name == region.name:
                raise ValueError(f"duplicate region name {region.name!r}")
        bisect.insort(self._regions, region, key=lambda r: r.start)
        return region

    def region_for(self, addr: int) -> Optional[Region]:
        starts = [r.start for r in self._regions]
        idx = bisect.bisect_right(starts, addr) - 1
        if idx >= 0 and self._regions[idx].contains(addr):
            return self._regions[idx]
        return None

    def by_name(self, name: str) -> Optional[Region]:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    # ------------------------------------------------------------------
    # maps-file text format
    # ------------------------------------------------------------------

    def render(self) -> str:
        """A /proc/pid/maps-flavoured dump."""
        lines = [
            f"{r.start:012x}-{r.end:012x} rw-p {r.kind} [{r.name}]"
            for r in self._regions
        ]
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "AddressLayout":
        layout = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span, _perm, kind, bracket = line.split()
                lo, hi = span.split("-")
                name = bracket.strip("[]")
                layout.add(Region(int(lo, 16), int(hi, 16), name, kind))
            except ValueError as exc:
                raise TraceFormatError(f"maps line {lineno}: {exc}") from exc
        return layout
