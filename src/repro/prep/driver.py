"""The preparation driver (component ① of Fig. 3).

"The preparation sub-system consists of a driver program to trace the
instructions executed by the application of interest using Intel's
dynamic binary instrumentation tool Pin.  The driver program (using
fork and exec) coordinates an application's execution and memory
access tracing with Pin while saving the virtual memory layout by
reading the /proc/pid/maps pseudo file."

:class:`PreparationDriver` is that coordinator over the substituted
tools: it runs a workload under the tracing runtime, saves the trace
and the maps snapshot, generates the disk image and the template gemOS
source, and leaves all four artifacts in an output directory —
exactly the artifact set Kindle's bash scripts produce.  ``python -m
repro.prep <workload>`` exposes it from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.common.errors import KindleError
from repro.prep.codegen import PlacementPolicy, ReplayProgram, render_c_template
from repro.prep.imagegen import DiskImage, generate_image, load_image, save_image
from repro.prep.trace import save_trace
from repro.prep.tracer import TracedProcess


@dataclass(frozen=True)
class PreparedArtifacts:
    """Paths of everything the driver produced for one application."""

    name: str
    trace_path: Path
    maps_path: Path
    image_path: Path
    source_path: Path
    total_ops: int

    def load_program(
        self, placement: PlacementPolicy = PlacementPolicy.ALL_NVM
    ) -> ReplayProgram:
        """Reload the disk image into a runnable template program."""
        return ReplayProgram(load_image(self.image_path), placement)


class PreparationDriver:
    """Coordinates tracing and artifact generation for one workload."""

    def __init__(self, output_dir: Union[str, Path]) -> None:
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)

    def prepare_traced(
        self,
        traced: TracedProcess,
        placement: PlacementPolicy = PlacementPolicy.ALL_NVM,
    ) -> PreparedArtifacts:
        """Turn a finished tracing run into the four on-disk artifacts."""
        if not traced.trace:
            raise KindleError(f"{traced.name}: empty trace, nothing to prepare")
        name = traced.name
        trace_path = self.output_dir / f"{name}.trace"
        maps_path = self.output_dir / f"{name}.maps"
        image_path = self.output_dir / f"{name}.img"
        source_path = self.output_dir / f"{name}.c"

        save_trace(traced.trace, trace_path)
        maps_path.write_text(traced.layout.render() + "\n")
        image = generate_image(name, traced.trace, traced.layout)
        save_image(image, image_path)
        source_path.write_text(render_c_template(image, placement))
        return PreparedArtifacts(
            name=name,
            trace_path=trace_path,
            maps_path=maps_path,
            image_path=image_path,
            source_path=source_path,
            total_ops=image.total_ops,
        )

    def prepare_image(
        self,
        image: DiskImage,
        placement: PlacementPolicy = PlacementPolicy.ALL_NVM,
    ) -> PreparedArtifacts:
        """Persist artifacts for an already-generated image (workload
        generators emit images directly; the trace/maps pair is not
        reconstructable, so only image + source are written)."""
        image_path = self.output_dir / f"{image.name}.img"
        source_path = self.output_dir / f"{image.name}.c"
        save_image(image, image_path)
        source_path.write_text(render_c_template(image, placement))
        return PreparedArtifacts(
            name=image.name,
            trace_path=self.output_dir / f"{image.name}.trace",  # absent
            maps_path=self.output_dir / f"{image.name}.maps",  # absent
            image_path=image_path,
            source_path=source_path,
            total_ops=image.total_ops,
        )

    def prepare_workload(
        self,
        name: str,
        total_ops: int = 60_000,
        generator: Optional[Callable[..., DiskImage]] = None,
    ) -> PreparedArtifacts:
        """Prepare one of the named Table II workloads."""
        from repro.workloads import WORKLOAD_GENERATORS

        if generator is None:
            try:
                generator = WORKLOAD_GENERATORS[name]
            except KeyError:
                raise KindleError(
                    f"unknown workload {name!r}; "
                    f"choose from {sorted(WORKLOAD_GENERATORS)}"
                ) from None
        image = generator(total_ops=total_ops)
        return self.prepare_image(image)
