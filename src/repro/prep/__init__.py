"""The preparation sub-system (Fig. 3, left half).

Kindle cannot run standard application binaries on gemOS (it has almost
no userspace libraries), so it *traces* the application's memory
behaviour on a host — with Intel Pin for the accesses, /proc/pid/maps
for the address-space layout, and SniP for thread stacks — and then
generates (a) a disk image of ``(period, offset, op, size, area)``
tuples and (b) a template gemOS program whose heap/stack allocations
match the traced application and which replays the tuples.

This package is that pipeline with the host tools substituted:

* :class:`TracedProcess` — a tracing runtime workloads are written
  against (the Pin substitute);
* :class:`AddressLayout` — the /proc/pid/maps model;
* :class:`StackTracker` — the SniP substitute for per-thread stacks;
* :func:`generate_image` — the image generator (①→② in Fig. 3);
* :class:`ReplayProgram` — the generated template program that runs on
  the simulated gemOS.
"""

from repro.prep.codegen import PlacementPolicy, ReplayProgram, render_c_template
from repro.prep.imagegen import AreaSpec, DiskImage, ReplayTuple, generate_image
from repro.prep.maps import AddressLayout, Region
from repro.prep.snip import StackTracker
from repro.prep.trace import TraceRecord, load_trace, save_trace
from repro.prep.tracer import TracedBuffer, TracedProcess

__all__ = [
    "TracedProcess",
    "TracedBuffer",
    "AddressLayout",
    "Region",
    "StackTracker",
    "TraceRecord",
    "save_trace",
    "load_trace",
    "AreaSpec",
    "DiskImage",
    "ReplayTuple",
    "generate_image",
    "ReplayProgram",
    "PlacementPolicy",
    "render_c_template",
]
