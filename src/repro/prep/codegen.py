"""The code generator: template gemOS programs that replay an image.

"The code generator prepares a template gemOS code containing heap and
stack allocations matching the number and size of allocations in the
application.  The generated code also contains routines to access
(period, offset, operation, size, area) tuples from the disk image for
mimicking the memory access in the application."

:class:`ReplayProgram` is the runnable form of that template: it mmaps
one VMA per image area (NVM or DRAM according to a placement policy)
and replays the tuples through the simulated machine.  The replay
position lives in the process's ``pc`` register, so programs checkpoint
and resume exactly like the paper's persistent processes.
:func:`render_c_template` additionally emits the C source Kindle's
generator would produce, for inspection.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.common.errors import KindleError
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.mem.hybrid import MemType
from repro.prep.imagegen import DiskImage
from repro.prep.maps import STACK


class PlacementPolicy(enum.Enum):
    """Where the replayed application's areas are allocated."""

    #: Everything in NVM (flat-space studies: SSP, HSCC, persistence).
    ALL_NVM = "all_nvm"
    #: Everything in DRAM (the no-NVM baseline).
    ALL_DRAM = "all_dram"
    #: Heaps in NVM, stacks in DRAM.
    HEAP_NVM = "heap_nvm"

    def mem_type_for(self, kind: str) -> MemType:
        if self is PlacementPolicy.ALL_NVM:
            return MemType.NVM
        if self is PlacementPolicy.ALL_DRAM:
            return MemType.DRAM
        return MemType.DRAM if kind == STACK else MemType.NVM


class ReplayProgram:
    """A generated template program bound to one disk image."""

    def __init__(
        self,
        image: DiskImage,
        placement: PlacementPolicy = PlacementPolicy.ALL_NVM,
        compute_cycles_per_period: int = 0,
    ) -> None:
        if compute_cycles_per_period < 0:
            raise ValueError("compute cycles per period cannot be negative")
        self.image = image
        self.placement = placement
        self.compute_cycles_per_period = compute_cycles_per_period

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, kernel: Kernel, process: Process) -> Dict[str, int]:
        """mmap one VMA per image area; returns area base addresses."""
        bases: Dict[str, int] = {}
        for area in self.image.areas:
            flags = 0
            if self.placement.mem_type_for(area.kind) is MemType.NVM:
                flags |= MAP_NVM
            bases[area.name] = kernel.sys_mmap(
                process,
                None,
                area.size,
                PROT_READ | PROT_WRITE,
                flags,
                name=area.name,
            )
        return bases

    def area_bases(self, process: Process) -> Dict[str, int]:
        """Resolve area base addresses from the live VMA layout.

        Resolution by VMA *name* makes replay resumable across crash
        and recovery: the restored layout carries the same names.
        """
        bases: Dict[str, int] = {}
        wanted = {area.name for area in self.image.areas}
        for vma in process.address_space:
            if vma.name in wanted:
                bases[vma.name] = vma.start
        missing = wanted - set(bases)
        if missing:
            raise KindleError(
                f"replay areas not mapped: {sorted(missing)}; call install()"
            )
        return bases

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        kernel: Kernel,
        process: Process,
        max_ops: Optional[int] = None,
    ) -> int:
        """Replay from the process's current ``pc``.

        Returns the number of operations executed.  Stops at the image
        end, after ``max_ops`` operations, or when the process is
        preempted (a scheduler quantum switched the machine to another
        address space mid-run) — in every case ``pc`` points at the
        next operation so a later call (or a recovered process) resumes
        where it left off.
        """
        machine = kernel.machine
        if kernel.current is not process:
            kernel.switch_to(process)
        bases = self.area_bases(process)
        tuples = self.image.tuples
        start = process.registers.get("pc", 0)
        if start >= len(tuples):
            return 0
        end = len(tuples)
        if max_ops is not None:
            end = min(end, start + max_ops)
        compute = self.compute_cycles_per_period
        prev_period = tuples[start].period
        executed = 0
        registers = process.registers
        for index in range(start, end):
            if kernel.current is not process:
                break  # preempted: user execution pauses here
            t = tuples[index]
            if compute:
                gap = t.period - prev_period
                if gap > 1:
                    machine.advance((gap - 1) * compute)
                prev_period = t.period
            machine.access(bases[t.area] + t.offset, t.size, t.is_write)
            registers["pc"] = index + 1
            executed += 1
        return executed

    @property
    def finished_pc(self) -> int:
        return len(self.image.tuples)

    def is_finished(self, process: Process) -> bool:
        return process.registers.get("pc", 0) >= self.finished_pc


def render_c_template(image: DiskImage, placement: PlacementPolicy) -> str:
    """Emit the C template gemOS code Kindle's generator would produce."""
    lines = [
        "/* generated by Kindle code generator - do not edit */",
        '#include "gemos/ulib.h"',
        "",
        "int main(int argc, char **argv) {",
        f"    struct image *img = open_image(\"{image.name}.img\");",
    ]
    for area in image.areas:
        nvm = placement.mem_type_for(area.kind) is MemType.NVM
        flags = "MAP_NVM" if nvm else "0"
        lines.append(
            f"    char *{area.name} = mmap(NULL, {area.size}UL, "
            f"PROT_WRITE, {flags}); /* {area.kind} */"
        )
    lines += [
        "    struct replay_tuple t;",
        "    while (next_tuple(img, &t)) {",
        "        char *base = area_base(&t);",
        "        if (t.op == OP_WRITE)",
        "            replay_store(base + t.offset, t.size);",
        "        else",
        "            replay_load(base + t.offset, t.size);",
        "    }",
    ]
    for area in image.areas:
        lines.append(f"    munmap({area.name}, {area.size}UL);")
    lines += ["    return 0;", "}", ""]
    return "\n".join(lines)
