"""Per-thread stack capture (the SniP substitute).

"In case of multi-threaded applications, Kindle can use SniP [19]
along with the maps file to capture address layout of application.
SniP is a framework capable of capturing the stack area of threads."

:class:`StackTracker` registers one stack region per thread and gives
workloads a frame push/pop API whose locals traffic is traced like any
other access — this is how the synthetic workloads model the register
spills and locals Pin would see on a real binary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.common.errors import TraceFormatError
from repro.common.units import KiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.prep.tracer import TracedBuffer, TracedProcess

DEFAULT_STACK_BYTES = 64 * KiB
#: Bytes a stack frame occupies per local slot.
SLOT_BYTES = 8


class _ThreadStack:
    """One thread's stack region with a descending frame pointer."""

    def __init__(self, buffer: "TracedBuffer") -> None:
        self.buffer = buffer
        self.top = buffer.size  # stacks grow down
        self.frames: List[int] = []

    def push_frame(self, slots: int) -> None:
        need = slots * SLOT_BYTES
        if self.top - need < 0:
            raise TraceFormatError("traced stack overflow")
        self.top -= need
        self.frames.append(need)

    def pop_frame(self) -> None:
        if not self.frames:
            raise TraceFormatError("pop on empty traced stack")
        self.top += self.frames.pop()

    def local_store(self, slot: int) -> None:
        self.buffer.store(self.top + slot * SLOT_BYTES)

    def local_load(self, slot: int) -> None:
        self.buffer.load(self.top + slot * SLOT_BYTES)


class StackTracker:
    """SniP analog: tracks stack areas for every thread."""

    def __init__(self, process: "TracedProcess") -> None:
        self._process = process
        self._threads: Dict[int, _ThreadStack] = {}

    def register_thread(
        self, tid: int = 0, stack_bytes: int = DEFAULT_STACK_BYTES
    ) -> _ThreadStack:
        if tid in self._threads:
            raise TraceFormatError(f"thread {tid} already registered")
        buffer = self._process.alloc_stack(f"stack_t{tid}", stack_bytes)
        stack = _ThreadStack(buffer)
        self._threads[tid] = stack
        return stack

    def thread(self, tid: int = 0) -> _ThreadStack:
        try:
            return self._threads[tid]
        except KeyError:
            raise TraceFormatError(f"thread {tid} not registered") from None

    def __len__(self) -> int:
        return len(self._threads)
