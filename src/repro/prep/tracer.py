"""The tracing runtime (the Intel Pin substitute).

Kindle's driver forks the application under Pin and records every
memory access.  Here, workloads are written against
:class:`TracedProcess` instead: they allocate named heap buffers, and
every load/store through a :class:`TracedBuffer` appends a
:class:`~repro.prep.trace.TraceRecord` — same artifact, no binary
instrumentation.  The layout of allocated regions plays the role of the
``/proc/pid/maps`` snapshot.

The logical *period* advances by one per recorded access plus any
explicit :meth:`TracedProcess.compute` think time, mirroring Pin's
access timestamps.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import TraceFormatError
from repro.common.units import MiB, PAGE_SIZE, align_up
from repro.prep.maps import HEAP, STACK, AddressLayout, Region
from repro.prep.snip import StackTracker
from repro.prep.trace import READ, WRITE, TraceRecord

#: Host mmap region base for traced heap allocations (arbitrary but
#: stable so traces are reproducible).
_HOST_HEAP_BASE = 0x7F00_0000_0000
#: Gap between host regions so labeling is unambiguous.
_REGION_GAP = 1 * MiB


class TracedBuffer:
    """One traced heap allocation; all accesses are recorded."""

    def __init__(self, process: "TracedProcess", region: Region) -> None:
        self._process = process
        self.region = region
        self.base = region.start
        self.size = region.size

    def _check(self, offset: int, size: int) -> None:
        if offset < 0 or offset + size > self.size:
            raise TraceFormatError(
                f"{self.region.name}: access [{offset}, {offset + size}) "
                f"outside {self.size}-byte buffer"
            )

    def load(self, offset: int, size: int = 8) -> None:
        """Record a read of ``size`` bytes at ``offset``."""
        self._check(offset, size)
        self._process.record(self.base + offset, READ, size)

    def store(self, offset: int, size: int = 8) -> None:
        """Record a write of ``size`` bytes at ``offset``."""
        self._check(offset, size)
        self._process.record(self.base + offset, WRITE, size)

    def update(self, offset: int, size: int = 8) -> None:
        """Read-modify-write: a load followed by a store."""
        self.load(offset, size)
        self.store(offset, size)


class TracedProcess:
    """A host process under tracing."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.layout = AddressLayout()
        self.trace: List[TraceRecord] = []
        self.stacks = StackTracker(self)
        self._period = 0
        self._next_base = _HOST_HEAP_BASE

    # ------------------------------------------------------------------
    # allocation (drives the maps snapshot)
    # ------------------------------------------------------------------

    def alloc_heap(self, name: str, nbytes: int) -> TracedBuffer:
        """Allocate a named heap buffer (host mmap)."""
        region = self._place(name, nbytes, HEAP)
        return TracedBuffer(self, region)

    def _place(self, name: str, nbytes: int, kind: str) -> Region:
        if nbytes <= 0:
            raise TraceFormatError(f"region {name!r}: size must be positive")
        size = align_up(nbytes, PAGE_SIZE)
        region = Region(self._next_base, self._next_base + size, name, kind)
        self.layout.add(region)
        self._next_base = align_up(region.end + _REGION_GAP, _REGION_GAP)
        return region

    def alloc_stack(self, name: str, nbytes: int) -> TracedBuffer:
        """Allocate a stack region (used by :class:`StackTracker`)."""
        region = self._place(name, nbytes, STACK)
        return TracedBuffer(self, region)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, addr: int, op: str, size: int) -> None:
        self.trace.append(TraceRecord(self._period, addr, op, size))
        self._period += 1

    def compute(self, periods: int) -> None:
        """Advance logical time without memory traffic (think time)."""
        if periods < 0:
            raise ValueError("cannot compute for negative time")
        self._period += periods

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------

    @property
    def total_ops(self) -> int:
        return len(self.trace)

    @property
    def read_fraction(self) -> float:
        if not self.trace:
            return 0.0
        reads = sum(1 for r in self.trace if r.op == READ)
        return reads / len(self.trace)

    def mix(self) -> tuple:
        """(read %, write %) rounded like Table II."""
        reads = round(self.read_fraction * 100)
        return reads, 100 - reads


def traced_write_mix(trace: List[TraceRecord]) -> float:
    """Fraction of write records in a trace."""
    if not trace:
        return 0.0
    return sum(1 for r in trace if r.op == WRITE) / len(trace)
