"""CLI: ``python -m repro.prep <workload> [-o DIR] [--ops N]``.

Runs the preparation driver for one of the Table II workloads and
writes the disk image + template source into the output directory (the
equivalent of Kindle's preparation bash scripts).
"""

from __future__ import annotations

import argparse
import sys

from repro.prep.driver import PreparationDriver


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.prep",
        description="Generate Kindle disk images for the standard workloads",
    )
    parser.add_argument(
        "workload", choices=["gapbs_pr", "g500_sssp", "ycsb_mem"]
    )
    parser.add_argument("-o", "--output", default="prepared")
    parser.add_argument("--ops", type=int, default=60_000)
    args = parser.parse_args(argv)

    driver = PreparationDriver(args.output)
    artifacts = driver.prepare_workload(args.workload, total_ops=args.ops)
    print(f"prepared {artifacts.name}: {artifacts.total_ops} ops")
    print(f"  image : {artifacts.image_path}")
    print(f"  source: {artifacts.source_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
