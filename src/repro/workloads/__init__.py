"""Workload generators.

The three standard applications of Table II — GAP PageRank
(``gapbs_pr``), Graph500 SSSP (``g500_sssp``) and a YCSB-style
key-value store (``ycsb_mem``) — implemented as real kernels over
synthetic inputs, executed under the tracing runtime so they produce
exactly the artifacts Kindle's preparation pipeline produces from Pin.
Also the micro-benchmarks driving the process-persistence evaluation
(Fig. 4, Tables III and IV).

Paper op counts are 10M per workload; generators take a ``total_ops``
budget so tests and benchmarks can run scaled-down instances with the
same structure (the read/write mixes are budget-independent).
"""

from repro.workloads.gapbs import generate_pagerank
from repro.workloads.graph500 import generate_sssp
from repro.workloads.microbench import (
    seq_alloc_access,
    stride_alloc_access,
    vma_churn,
)
from repro.workloads.traffic import (
    PROFILES,
    ClientPopulation,
    ClientProfile,
    PopulationConfig,
    TrafficSchedule,
    TrafficScheduler,
)
from repro.workloads.ycsb import generate_ycsb

WORKLOAD_GENERATORS = {
    "gapbs_pr": generate_pagerank,
    "g500_sssp": generate_sssp,
    "ycsb_mem": generate_ycsb,
}

#: Read/write percentages reported in Table II.
TABLE2_MIXES = {
    "gapbs_pr": (77, 23),
    "g500_sssp": (68, 32),
    "ycsb_mem": (71, 29),
}

__all__ = [
    "generate_pagerank",
    "generate_sssp",
    "generate_ycsb",
    "seq_alloc_access",
    "stride_alloc_access",
    "vma_churn",
    "WORKLOAD_GENERATORS",
    "TABLE2_MIXES",
    "PROFILES",
    "ClientPopulation",
    "ClientProfile",
    "PopulationConfig",
    "TrafficSchedule",
    "TrafficScheduler",
]
