"""Fleet-scale traffic populations over the machine model.

The paper's experiments replay fixed single-process loops; the ROADMAP
north-star is a system serving traffic from *populations* of simulated
users.  This module grows the workload layer in that direction, modeled
on the seeded ``WorkloadGenerator``/``QueryScheduler`` design from
towards-steady-db-workloads and brad's forecastable ``Workload``
(period + per-query arrival counts), transplanted from SQL queries to
memory operations:

* :class:`ClientPopulation` — a seeded generator of per-client op
  streams: each client draws a *unique-op pool* (offsets within its own
  VMA window, sized/mixed by its profile), repeats pool entries with a
  Zipf/skew coefficient, and receives arrival timestamps from a Poisson
  or diurnal-curve distribution over one logical period.  Client
  profiles reuse the Table II read/write mixes of the existing
  ycsb/gapbs/graph500 generators.
* :class:`TrafficSchedule` — the merged, timestamp-sorted population
  stream as column arrays, exportable as packed ``repro.prep`` trace
  containers (one per gemOS process) so runs feed both the scalar
  ``Machine.access`` loop and the vectorized ``BatchReplayer``.
* :class:`TrafficScheduler` — provisions one VMA window per client
  across several gemOS processes (demand paging interleaves their
  frames, creating real cross-process cache/row/TLB contention) and
  replays the schedule, dispatching processes per scheduling slice
  through :class:`repro.gemos.scheduler.TimestampScheduler`.

Generation is deterministic per (seed, config): every client stream is
derived from its own sha256-split substream, so the merged schedule is
byte-identical whether generated serially, through ``-j N`` sweep-engine
sharding, or from the warm content-addressed cache (the cell payloads
are JSON/base64, lossless for the column bytes).
"""

from __future__ import annotations

import base64
import math
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import KindleError
from repro.common.units import GiB, KiB, PAGE_SIZE
from repro.exec import SweepEngine, sweep
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.prep.trace import PackedTrace, save_trace_binary

#: Base virtual address of the first client window.  Sits well above
#: the kernel's default mmap placement area so explicitly-hinted client
#: windows never collide with other VMAs, and the same window layout is
#: reused in every process (distinct address spaces; the asid-tagged
#: TLB disambiguates — and contends, which is the point).
TRAFFIC_BASE = 8 * GiB

#: Default 24-"hour" diurnal load curve (relative per-bin weights):
#: a quiet night, a morning ramp, a mid-day plateau, an evening peak.
DEFAULT_DIURNAL_CURVE = (
    2.0, 1.0, 1.0, 1.0, 2.0, 4.0, 7.0, 9.0, 10.0, 9.0, 8.0, 7.0,
    6.0, 6.0, 7.0, 8.0, 9.0, 10.0, 10.0, 9.0, 7.0, 5.0, 4.0, 3.0,
)


@dataclass(frozen=True)
class ClientProfile:
    """One client archetype: op mix, working-set size and skew.

    ``read_fraction`` values come straight from the Table II read/write
    mixes of the corresponding workload generator (``mix_source`` names
    the ``TABLE2_MIXES`` entry; tests pin the correspondence).
    """

    name: str
    read_fraction: float
    working_set_bytes: int
    zipf_theta: float
    op_size: int
    nvm: bool
    mix_source: Optional[str] = None


#: The client archetypes a population can mix.  ``llc_thrash`` is not
#: part of the default mix: it exists for interference stress configs
#: whose combined working set must exceed the 2 MiB LLC.
PROFILES: Dict[str, ClientProfile] = {
    "ycsb_point": ClientProfile(
        name="ycsb_point",
        read_fraction=0.71,  # Table II ycsb_mem 71/29
        working_set_bytes=64 * KiB,
        zipf_theta=0.99,
        op_size=8,
        nvm=True,
        mix_source="ycsb_mem",
    ),
    "gapbs_scan": ClientProfile(
        name="gapbs_scan",
        read_fraction=0.77,  # Table II gapbs_pr 77/23
        working_set_bytes=256 * KiB,
        zipf_theta=0.2,
        op_size=64,
        nvm=False,
        mix_source="gapbs_pr",
    ),
    "g500_frontier": ClientProfile(
        name="g500_frontier",
        read_fraction=0.68,  # Table II g500_sssp 68/32
        working_set_bytes=128 * KiB,
        zipf_theta=0.6,
        op_size=8,
        nvm=True,
        mix_source="g500_sssp",
    ),
    "llc_thrash": ClientProfile(
        name="llc_thrash",
        read_fraction=0.5,
        working_set_bytes=1536 * KiB,
        zipf_theta=0.0,
        op_size=64,
        nvm=False,
    ),
}

DEFAULT_PROFILE_MIX = (
    ("ycsb_point", 6.0),
    ("gapbs_scan", 3.0),
    ("g500_frontier", 1.0),
)

ARRIVALS = ("poisson", "diurnal")


@dataclass(frozen=True)
class PopulationConfig:
    """Everything that determines a population, and nothing else.

    Two configs with equal fields produce byte-identical schedules; the
    config also round-trips through JSON (:meth:`to_dict` /
    :meth:`from_dict`) so sweep-engine cells can carry it.
    """

    seed: int = 2024
    clients: int = 64
    processes: int = 4
    ops_per_client: int = 2_000
    #: Fraction of each client's ops drawn fresh from its unique pool;
    #: the rest are Zipf-weighted repetitions of pool entries.  The
    #: pool size follows an explicit floor rule (see
    #: :func:`unique_pool_size`): ``floor(ops_per_client *
    #: unique_fraction)`` clamped to ``[1, ops_per_client]`` — *not*
    #: ``round()``, whose banker's rounding made products landing
    #: exactly on .5 shift the pool size with the magnitude of the op
    #: count (``round(2.5) == 2`` but ``round(3.5) == 4``).
    unique_fraction: float = 0.25
    arrival: str = "poisson"
    #: Logical timestamp span of one load period (arbitrary units;
    #: becomes the packed containers' ``period`` column).
    period: int = 1 << 30
    diurnal_curve: Tuple[float, ...] = DEFAULT_DIURNAL_CURVE
    #: Phase shift as a fraction of the period — shifts the diurnal
    #: curve, wrapping timestamps at the period boundary.
    diurnal_phase: float = 0.0
    profile_mix: Tuple[Tuple[str, float], ...] = DEFAULT_PROFILE_MIX
    #: Scheduling slices per period: within one slice each process runs
    #: its due ops as one contiguous segment (a real scheduler grants
    #: quanta; it does not context-switch per memory reference).
    sched_slices: int = 256

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.clients < 1:
            raise KindleError(f"population needs >=1 client: {self.clients}")
        if self.processes < 1:
            raise KindleError(f"population needs >=1 process: {self.processes}")
        if self.ops_per_client < 1:
            raise KindleError(
                f"population needs >=1 op per client: {self.ops_per_client}"
            )
        if not 0.0 <= self.unique_fraction <= 1.0:
            raise KindleError(
                f"unique_fraction outside [0, 1]: {self.unique_fraction}"
            )
        if self.arrival not in ARRIVALS:
            raise KindleError(f"unknown arrival distribution {self.arrival!r}")
        if self.period < 1:
            raise KindleError(f"period must be positive: {self.period}")
        if self.sched_slices < 1:
            raise KindleError(f"sched_slices must be >=1: {self.sched_slices}")
        if not 0.0 <= self.diurnal_phase < 1.0:
            raise KindleError(
                f"diurnal_phase outside [0, 1): {self.diurnal_phase}"
            )
        if self.arrival == "diurnal":
            if not self.diurnal_curve:
                raise KindleError("diurnal curve has no bins")
            total = 0.0
            for weight in self.diurnal_curve:
                if not np.isfinite(weight) or weight < 0:
                    raise KindleError(f"bad diurnal bin weight {weight!r}")
                total += weight
            if total <= 0:
                raise KindleError("diurnal curve weights sum to zero")
            if self.period < len(self.diurnal_curve):
                raise KindleError(
                    f"period {self.period} shorter than the "
                    f"{len(self.diurnal_curve)}-bin diurnal curve"
                )
        if not self.profile_mix:
            raise KindleError("profile mix is empty")
        for name, weight in self.profile_mix:
            if name not in PROFILES:
                raise KindleError(f"unknown client profile {name!r}")
            if not np.isfinite(weight) or weight <= 0:
                raise KindleError(f"bad profile weight {weight!r} for {name}")

    @property
    def total_ops(self) -> int:
        return self.clients * self.ops_per_client

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "clients": self.clients,
            "processes": self.processes,
            "ops_per_client": self.ops_per_client,
            "unique_fraction": self.unique_fraction,
            "arrival": self.arrival,
            "period": self.period,
            "diurnal_curve": [float(w) for w in self.diurnal_curve],
            "diurnal_phase": self.diurnal_phase,
            "profile_mix": [[name, float(w)] for name, w in self.profile_mix],
            "sched_slices": self.sched_slices,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PopulationConfig":
        fields = dict(data)
        if "diurnal_curve" in fields:
            fields["diurnal_curve"] = tuple(
                float(w) for w in fields["diurnal_curve"]
            )
        if "profile_mix" in fields:
            fields["profile_mix"] = tuple(
                (str(name), float(weight))
                for name, weight in fields["profile_mix"]
            )
        return cls(**fields)


# ----------------------------------------------------------------------
# deterministic generation
# ----------------------------------------------------------------------


def unique_pool_size(ops: int, unique_fraction: float) -> int:
    """Unique-op pool size: ``floor(ops * unique_fraction)``, clamped
    to ``[1, ops]``.

    The rule is an explicit floor, not ``round()``: banker's rounding
    sends .5-exact products to the nearest *even* integer, so the same
    ``unique_fraction`` produced different repetition structures
    depending on the magnitude of ``ops`` (``round(2.5) == 2`` while
    ``round(3.5) == 4``).  ``floor`` is monotone in ``ops`` and
    magnitude-independent at every boundary.
    """
    if ops < 1:
        raise KindleError(f"pool needs >=1 op: {ops}")
    if not 0.0 <= unique_fraction <= 1.0:
        raise KindleError(
            f"unique_fraction outside [0, 1]: {unique_fraction}"
        )
    return max(1, min(ops, math.floor(ops * unique_fraction)))


def _derive_seed(master_seed: int, label: str) -> int:
    """Independent numpy substream seed (sha256 split, like
    :func:`repro.common.rng.derive_rng` but for ``default_rng``)."""
    digest = sha256(f"{master_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def profile_assignment(config: PopulationConfig) -> List[str]:
    """Profile name per client index (one draw from the mix weights)."""
    names = [name for name, _ in config.profile_mix]
    weights = np.asarray([w for _, w in config.profile_mix], dtype=float)
    rng = np.random.default_rng(_derive_seed(config.seed, "traffic.profiles"))
    picks = rng.choice(len(names), size=config.clients, p=weights / weights.sum())
    return [names[i] for i in picks]


def client_window_span(config: PopulationConfig) -> int:
    """Page-aligned per-client window stride (fits every mixed profile)."""
    largest = max(
        PROFILES[name].working_set_bytes for name, _ in config.profile_mix
    )
    return -(-largest // PAGE_SIZE) * PAGE_SIZE


def client_base_vaddr(config: PopulationConfig, client: int) -> int:
    """Deterministic VMA base of ``client``'s window *within its
    process* — clients sharing a process get disjoint windows; the same
    window addresses recur across processes (separate address spaces)."""
    window = client // config.processes
    return TRAFFIC_BASE + window * client_window_span(config)


def _assign_timestamps(
    config: PopulationConfig, rng: np.random.Generator, ops: int
) -> np.ndarray:
    """Arrival timestamps in ``[0, period)`` as u8 integers."""
    if config.arrival == "poisson":
        # Order statistics of a uniform scatter over the period == the
        # arrival times of a homogeneous Poisson process conditioned on
        # its total count (sorting happens at the stream merge).
        ts = rng.random(ops) * config.period
    else:
        curve = np.asarray(config.diurnal_curve, dtype=float)
        weights = curve / curve.sum()
        nbins = len(curve)
        width = config.period / nbins
        bins = rng.choice(nbins, size=ops, p=weights)
        ts = (bins + rng.random(ops)) * width
        # The phase shift wraps at the period boundary: an evening-peak
        # curve shifted by half a period peaks across the wrap.
        ts = (ts + config.diurnal_phase * config.period) % config.period
    out = np.floor(ts).astype(np.uint64)
    return np.minimum(out, np.uint64(config.period - 1))


def _client_columns(
    config: PopulationConfig, client: int, profile: ClientProfile
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One client's stream, ts-sorted: (ts u8, addr u8, size u4, write u1).

    Addresses are final virtual addresses (window base + pool offset):
    the window layout is part of the config, so the packed containers
    are fully determined before any kernel exists.
    """
    rng = np.random.default_rng(
        _derive_seed(config.seed, f"traffic.client.{client}")
    )
    ops = config.ops_per_client
    n_unique = unique_pool_size(ops, config.unique_fraction)
    slots = max(1, profile.working_set_bytes // profile.op_size)
    offsets = rng.integers(0, slots, size=n_unique, dtype=np.int64)
    offsets *= profile.op_size
    writes = (rng.random(n_unique) >= profile.read_fraction).astype(np.uint8)
    repeats = ops - n_unique
    if repeats > 0:
        if profile.zipf_theta > 0.0:
            ranks = np.arange(1, n_unique + 1, dtype=float)
            zipf = ranks ** -profile.zipf_theta
            draws = rng.choice(n_unique, size=repeats, p=zipf / zipf.sum())
        else:
            draws = rng.integers(0, n_unique, size=repeats, dtype=np.int64)
        pool_index = np.concatenate(
            [np.arange(n_unique, dtype=np.int64), draws.astype(np.int64)]
        )
    else:
        pool_index = np.arange(n_unique, dtype=np.int64)
    pool_index = pool_index[rng.permutation(ops)]
    ts = _assign_timestamps(config, rng, ops)
    order = np.argsort(ts, kind="stable")
    picked = pool_index[order]
    base = np.uint64(client_base_vaddr(config, client))
    addr = base + offsets[picked].astype(np.uint64)
    size = np.full(ops, profile.op_size, dtype=np.uint32)
    return ts[order], addr, size, writes[picked]


def _columns_for_range(
    config: PopulationConfig, lo: int, hi: int
) -> Dict[str, np.ndarray]:
    """Concatenated client columns for clients ``[lo, hi)`` (client
    order), plus per-op ``client`` id and within-client ``seq``."""
    assignment = profile_assignment(config)
    ts_parts: List[np.ndarray] = []
    addr_parts: List[np.ndarray] = []
    size_parts: List[np.ndarray] = []
    write_parts: List[np.ndarray] = []
    client_parts: List[np.ndarray] = []
    seq_parts: List[np.ndarray] = []
    for client in range(lo, hi):
        profile = PROFILES[assignment[client]]
        ts, addr, size, write = _client_columns(config, client, profile)
        ts_parts.append(ts)
        addr_parts.append(addr)
        size_parts.append(size)
        write_parts.append(write)
        client_parts.append(np.full(len(ts), client, dtype=np.uint32))
        seq_parts.append(np.arange(len(ts), dtype=np.uint32))
    return {
        "ts": np.concatenate(ts_parts),
        "addr": np.concatenate(addr_parts),
        "size": np.concatenate(size_parts),
        "write": np.concatenate(write_parts),
        "client": np.concatenate(client_parts),
        "seq": np.concatenate(seq_parts),
    }


_PAYLOAD_DTYPES = {
    "ts": "<u8",
    "addr": "<u8",
    "size": "<u4",
    "write": "u1",
    "client": "<u4",
    "seq": "<u4",
}


def _encode_columns(columns: Dict[str, np.ndarray]) -> Dict[str, object]:
    payload: Dict[str, object] = {"count": int(len(columns["ts"]))}
    for key, dtype in _PAYLOAD_DTYPES.items():
        data = np.ascontiguousarray(columns[key].astype(dtype))
        payload[key] = base64.b64encode(data.tobytes()).decode("ascii")
    return payload


def _decode_columns(payload: Dict[str, object]) -> Dict[str, np.ndarray]:
    columns: Dict[str, np.ndarray] = {}
    for key, dtype in _PAYLOAD_DTYPES.items():
        raw = base64.b64decode(payload[key])
        columns[key] = np.frombuffer(raw, dtype=dtype).copy()
    if any(len(col) != payload["count"] for col in columns.values()):
        raise KindleError("traffic cell payload column lengths disagree")
    return columns


def traffic_population_cell(
    config: Dict[str, object], lo: int, hi: int
) -> Dict[str, object]:
    """Sweep-engine cell: generate clients ``[lo, hi)`` of a population.

    The return value is JSON-stable (base64 column bytes), so serial,
    ``-j N`` and warm-cache runs hand back identical payloads and the
    merged schedule is byte-identical regardless of sharding.
    """
    columns = _columns_for_range(PopulationConfig.from_dict(config), lo, hi)
    return _encode_columns(columns)


# ----------------------------------------------------------------------
# the merged schedule
# ----------------------------------------------------------------------


@dataclass
class TrafficPlan:
    """Execution-ordered view of a schedule: columns plus contiguous
    ``(process_index, start, end)`` segments."""

    ts: np.ndarray
    addr: np.ndarray
    size: np.ndarray
    write: np.ndarray
    segments: List[Tuple[int, int, int]]


@dataclass
class TrafficSchedule:
    """The merged population stream, globally timestamp-sorted.

    ``client`` is the originating client index; a client's process is
    ``client % config.processes``.  The tie-break order (ts, client,
    seq) makes the merge independent of generation sharding.
    """

    config: PopulationConfig
    ts: np.ndarray  # u8
    addr: np.ndarray  # u8
    size: np.ndarray  # u4
    write: np.ndarray  # bool
    client: np.ndarray  # u4

    def __len__(self) -> int:
        return len(self.ts)

    def process_index(self) -> np.ndarray:
        return self.client % np.uint32(self.config.processes)

    def execution_order(self) -> np.ndarray:
        """Dispatch order: scheduling slice, then process, then client,
        then time.

        Within one slice each process's due ops run as one contiguous
        segment (a scheduler grants quanta, it does not context-switch
        per memory reference), and inside the segment the process
        drains each client's due ops back to back (a server works
        through per-connection request batches, it does not ping-pong
        between sockets per request).  Across slices processes
        interleave.  Keeping consecutive ops inside one client window
        is also what lets the batch-replay engine engage: interleaving
        dozens of windows per op thrashes the TLB and forces every op
        down the scalar path.
        """
        quantum = max(1, self.config.period // self.config.sched_slices)
        slices = self.ts // np.uint64(quantum)
        position = np.arange(len(self.ts), dtype=np.uint64)
        return np.lexsort(
            (position, self.client, self.process_index(), slices)
        )

    def plan(self) -> TrafficPlan:
        order = self.execution_order()
        proc = self.process_index()[order].astype(np.int64)
        if len(proc) == 0:
            segments: List[Tuple[int, int, int]] = []
        else:
            cuts = np.flatnonzero(np.diff(proc)) + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [len(proc)]))
            segments = [
                (int(proc[s]), int(s), int(e)) for s, e in zip(starts, ends)
            ]
        return TrafficPlan(
            ts=self.ts[order],
            addr=self.addr[order],
            size=self.size[order],
            write=self.write[order],
            segments=segments,
        )

    def packed_trace_for_process(self, index: int) -> PackedTrace:
        """This process's stream (ts-ordered) as a packed container."""
        mask = self.process_index() == index
        return PackedTrace(
            period=self.ts[mask],
            addr=self.addr[mask],
            size=self.size[mask],
            is_write=self.write[mask],
        )

    def packed_traces(self) -> Dict[int, PackedTrace]:
        return {
            index: self.packed_trace_for_process(index)
            for index in range(self.config.processes)
        }

    def save_containers(self, directory) -> Dict[int, Path]:
        """Write one ``repro.prep`` binary container per process."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[int, Path] = {}
        for index, packed in self.packed_traces().items():
            path = directory / f"traffic_p{index}.bin"
            save_trace_binary(packed, path)
            paths[index] = path
        return paths


class ClientPopulation:
    """Deterministic population generator (see module docstring)."""

    def __init__(self, config: PopulationConfig) -> None:
        config.validate()
        self.config = config
        self.profiles = profile_assignment(config)

    def generate(self, engine: Optional[SweepEngine] = None) -> TrafficSchedule:
        """Generate and merge every client stream.

        With an ``engine``, client ranges shard across workers as
        cacheable sweep cells; the merge (concatenate in client order,
        then a total-order lexsort) is sharding-independent, so ``-j 1``
        and ``-j 4`` produce byte-identical schedules.
        """
        config = self.config
        if engine is None:
            parts = [_columns_for_range(config, 0, config.clients)]
        else:
            shards = max(1, min(engine.jobs, config.clients))
            edges = [config.clients * i // shards for i in range(shards + 1)]
            ranges = [
                (lo, hi) for lo, hi in zip(edges, edges[1:]) if hi > lo
            ]
            payloads = sweep(
                engine,
                "repro.workloads.traffic:traffic_population_cell",
                [
                    {"config": config.to_dict(), "lo": lo, "hi": hi}
                    for lo, hi in ranges
                ],
                labels=[f"traffic-gen[{lo}:{hi}]" for lo, hi in ranges],
            )
            parts = [_decode_columns(payload) for payload in payloads]
        merged = {
            key: np.concatenate([part[key] for part in parts])
            for key in _PAYLOAD_DTYPES
        }
        order = np.lexsort((merged["seq"], merged["client"], merged["ts"]))
        return TrafficSchedule(
            config=config,
            ts=merged["ts"][order],
            addr=merged["addr"][order],
            size=merged["size"][order],
            write=merged["write"][order].astype(bool),
            client=merged["client"][order],
        )

    def summary(self) -> Dict[str, object]:
        """Population-level rates; every value is finite by
        construction (validated period/weights guard the divisions),
        including the single-client and zero-repetition degenerate
        cases."""
        config = self.config
        counts: Dict[str, int] = {}
        for name in self.profiles:
            counts[name] = counts.get(name, 0) + 1
        ops = config.ops_per_client
        n_unique = unique_pool_size(ops, config.unique_fraction)
        out: Dict[str, object] = {
            "clients": config.clients,
            "processes": config.processes,
            "total_ops": config.total_ops,
            "arrival": config.arrival,
            "repetition_coefficient": 1.0 - n_unique / ops,
            "arrival_rate_ops_per_tick": config.total_ops / config.period,
            "profile_counts": dict(sorted(counts.items())),
        }
        if config.arrival == "diurnal":
            weights = np.asarray(config.diurnal_curve, dtype=float)
            share = weights / weights.sum()
            width = config.period / len(weights)
            out["bin_rates_ops_per_tick"] = [
                float(config.total_ops * s / width) for s in share
            ]
        return out


# ----------------------------------------------------------------------
# forecast fitting (the planner hand-off)
# ----------------------------------------------------------------------


def fit_forecast(
    schedule: TrafficSchedule,
    seed: Optional[int] = None,
    bins: int = 24,
    diurnal_ratio: float = 2.0,
) -> PopulationConfig:
    """Fit a forecastable population model to an observed schedule.

    This is the arrival/mix fit the configuration planner consumes: it
    reads only the *observable* columns (timestamps, client ids,
    addresses) plus the deployment constants the operator knows anyway
    (period, process count, profile mix), and returns a fresh
    :class:`PopulationConfig` whose generated schedule forecasts the
    next load period:

    * client/process/op counts come straight from the observed stream;
    * ``unique_fraction`` is estimated as the mean per-client fraction
      of distinct addresses (a lower bound on the pool fraction — the
      Zipf repetitions revisit pool entries);
    * the arrival model is chosen from the observed timestamp
      histogram over ``bins`` bins: a peak-to-trough ratio at most
      ``diurnal_ratio`` reads as a homogeneous Poisson process, a more
      skewed curve is fit as a ``diurnal`` arrival whose curve *is*
      the normalized histogram (phase folded into the curve).

    ``seed`` defaults to a sha256-derived forecast substream of the
    observed config's seed, so forecasted populations never replay the
    exact observed streams but stay deterministic per observation.
    """
    if len(schedule) == 0:
        raise KindleError("cannot fit a forecast to an empty schedule")
    if bins < 1:
        raise KindleError(f"need >=1 histogram bin: {bins}")
    if diurnal_ratio < 1.0:
        raise KindleError(
            f"diurnal ratio threshold must be >= 1: {diurnal_ratio}"
        )
    observed = schedule.config
    client_ids = np.unique(schedule.client)
    clients = int(client_ids.size)
    ops_per_client = max(1, len(schedule) // clients)
    fractions = []
    for client in client_ids:
        mask = schedule.client == client
        ops = int(np.count_nonzero(mask))
        distinct = int(np.unique(schedule.addr[mask]).size)
        fractions.append(distinct / ops)
    unique_fraction = min(1.0, max(0.0, float(np.mean(fractions))))
    counts, _edges = np.histogram(
        schedule.ts.astype(np.float64), bins=bins, range=(0.0, observed.period)
    )
    trough = max(1, int(counts.min()))
    peak = max(1, int(counts.max()))
    if peak / trough <= diurnal_ratio:
        arrival = "poisson"
        curve = observed.diurnal_curve
        phase = observed.diurnal_phase
    else:
        arrival = "diurnal"
        total = int(counts.sum())
        curve = tuple(float(c) / total for c in counts.tolist())
        phase = 0.0
    if seed is None:
        seed = _derive_seed(observed.seed, "traffic.forecast")
    return PopulationConfig(
        seed=seed,
        clients=clients,
        processes=observed.processes,
        ops_per_client=ops_per_client,
        unique_fraction=unique_fraction,
        arrival=arrival,
        period=observed.period,
        diurnal_curve=curve,
        diurnal_phase=phase,
        profile_mix=observed.profile_mix,
        sched_slices=observed.sched_slices,
    )


# ----------------------------------------------------------------------
# scheduling onto gemOS processes
# ----------------------------------------------------------------------


@dataclass
class TrafficRunResult:
    """What one replayed schedule did."""

    ops: int
    mode: str
    context_switches: int
    batched_ops: int
    scalar_ops: int
    final_clock: int


class TrafficScheduler:
    """Provision a population across gemOS processes and replay it.

    Every client gets its own VMA window (``sys_mmap`` at the
    config-determined base; NVM-profile clients map ``MAP_NVM``), so
    demand paging interleaves frames from many processes and the
    machine sees genuine cross-process LLC/row-buffer/TLB contention.
    Replay follows :meth:`TrafficSchedule.plan`: per segment the
    :class:`~repro.gemos.scheduler.TimestampScheduler` dispatches the
    owning process (charging the standard context-switch cost), then
    the segment runs either through the scalar ``Machine.access`` loop
    or the vectorized :class:`~repro.replay.BatchReplayer` — both paths
    execute the identical op sequence, so stats/clock/physmem are
    byte-identical (gated by the golden-equivalence suite).
    """

    def __init__(self, system, schedule: TrafficSchedule) -> None:
        self.system = system
        self.schedule = schedule
        self.processes: List = []

    def provision(self) -> List:
        """Create the gemOS processes and map every client window."""
        if self.system.kernel is None:
            self.system.boot()
        kernel = self.system.kernel
        config = self.schedule.config
        assignment = profile_assignment(config)
        self.processes = [
            kernel.create_process(f"traffic{index}", persistent=False)
            for index in range(config.processes)
        ]
        for client in range(config.clients):
            profile = PROFILES[assignment[client]]
            process = self.processes[client % config.processes]
            base = client_base_vaddr(config, client)
            length = -(-profile.working_set_bytes // PAGE_SIZE) * PAGE_SIZE
            flags = MAP_NVM if profile.nvm else 0
            placed = kernel.sys_mmap(
                process,
                base,
                length,
                PROT_READ | PROT_WRITE,
                flags,
                name=f"client{client}",
            )
            if placed != base:
                raise KindleError(
                    f"client {client} window landed at {placed:#x}, "
                    f"expected {base:#x} — address layout drifted"
                )
        return self.processes

    def run(self, batch: bool = True) -> TrafficRunResult:
        """Replay the whole schedule; returns the run summary."""
        from repro.gemos.scheduler import TimestampScheduler
        from repro.replay import BatchReplayer

        if not self.processes:
            self.provision()
        kernel = self.system.kernel
        machine = self.system.machine
        stats = machine.stats
        schedule = self.schedule
        config = schedule.config
        counts = np.bincount(
            schedule.process_index(), minlength=config.processes
        )
        for index, process in enumerate(self.processes):
            if counts[index]:
                stats.add(f"traffic.ops.p{process.pid}", int(counts[index]))
        stats.add("traffic.ops", len(schedule))
        plan = schedule.plan()
        dispatcher = TimestampScheduler(kernel)
        replayer = BatchReplayer(machine) if batch else None
        scalar_ops = 0
        for proc_index, start, end in plan.segments:
            dispatcher.dispatch(self.processes[proc_index])
            if replayer is not None:
                replayer.replay(
                    PackedTrace(
                        period=plan.ts[start:end],
                        addr=plan.addr[start:end],
                        size=plan.size[start:end],
                        is_write=plan.write[start:end],
                    )
                )
            else:
                access = machine.access
                for vaddr, size, is_write in zip(
                    plan.addr[start:end].tolist(),
                    plan.size[start:end].tolist(),
                    plan.write[start:end].tolist(),
                ):
                    access(vaddr, size, is_write)
                scalar_ops += end - start
        return TrafficRunResult(
            ops=len(schedule),
            mode="batch" if batch else "scalar",
            context_switches=dispatcher.switches,
            batched_ops=replayer.batched_ops if replayer is not None else 0,
            scalar_ops=(
                replayer.scalar_ops if replayer is not None else scalar_ops
            ),
            final_clock=machine.clock,
        )
