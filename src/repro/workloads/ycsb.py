"""YCSB-style in-memory key-value workload (``Ycsb_mem`` in Table II).

A hash-indexed record store driven by a zipfian request stream (YCSB's
default distribution): GETs read the index slot and every record field,
UPDATEs read the index and rewrite a few fields plus a version stamp.
Targets the 71% read / 29% write mix of Table II; the zipf skew is what
gives HSCC its hot NVM pages.
"""

from __future__ import annotations

from repro.common.rng import ZipfSampler, derive_rng
from repro.prep.imagegen import DiskImage, generate_image
from repro.prep.tracer import TracedProcess

#: Record layout: 12 eight-byte fields (96 bytes, ~YCSB's 100B rows).
_FIELDS_PER_RECORD = 12
_RECORD_BYTES = _FIELDS_PER_RECORD * 8
#: Fields rewritten by an UPDATE.
_UPDATE_FIELDS = 3
#: Request distribution skew (YCSB zipfian constant).
_ZIPF_THETA = 0.9
#: Fraction of GET operations (the rest are UPDATEs).
_GET_FRACTION = 0.51


def generate_ycsb(
    total_ops: int = 200_000,
    records: int = 262144,
    seed: int = 13,
) -> DiskImage:
    """Trace the key-value workload until ``total_ops`` accesses."""
    rng = derive_rng(seed, "ycsb_mem")
    sampler = ZipfSampler(records, _ZIPF_THETA, rng)
    #: Keys are hashed so hot ranks scatter over the record array
    #: (zipf rank 0 must not always be record 0).
    placement = list(range(records))
    rng.shuffle(placement)

    tp = TracedProcess("ycsb_mem")
    index = tp.alloc_heap("index", records * 8)
    store = tp.alloc_heap("records", records * _RECORD_BYTES)
    stack = tp.stacks.register_thread(0)

    while tp.total_ops < total_ops:
        record = placement[sampler.sample()]
        record_off = record * _RECORD_BYTES
        stack.push_frame(slots=4)
        index.load(record * 8)  # hash-slot lookup
        if rng.random() < _GET_FRACTION:
            # GET: read every field, hand the row to the caller.
            for field in range(_FIELDS_PER_RECORD):
                store.load(record_off + field * 8)
            stack.local_load(0)
            stack.local_store(0)
        else:
            # UPDATE: read-modify a few fields, bump the version stamp.
            store.load(record_off)  # version check
            for field in range(1, 1 + _UPDATE_FIELDS):
                store.store(record_off + field * 8)
            store.store(record_off)  # version bump
            stack.local_load(0)
            stack.local_store(0)
            stack.local_store(1)
        stack.pop_frame()

    return generate_image("ycsb_mem", tp.trace, tp.layout)
