"""Micro-benchmarks of the process-persistence evaluation (Section III-A).

Three drivers, matching the paper's experiments:

* :func:`seq_alloc_access` — Fig. 4a: mmap an NVM region of a given
  size and sequentially access all pages while periodic checkpointing
  runs;
* :func:`stride_alloc_access` — Fig. 4b: a fixed number of 4 KiB
  allocations spread at a 1 GiB / 2 MiB / 4 KiB stride so different
  page-table levels are populated;
* :func:`vma_churn` — Tables III and IV: allocate 512 MB, write all
  pages, then repeatedly munmap+mmap a fixed-size prefix and access the
  reallocated pages (optionally for several rounds, to force TLB misses
  as in the Table IV variant).

Each returns the simulated execution time in cycles (machine clock
delta), which the harness converts to milliseconds.
"""

from __future__ import annotations

from repro.common.errors import KindleError
from repro.common.units import MiB, PAGE_SIZE
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.platform import HybridSystem

#: Virtual base used by the stride experiment's explicit placements.
_STRIDE_BASE = 16 * 1024 * MiB


def _require_process(system: HybridSystem):
    if system.kernel is None or system.kernel.current is None:
        raise KindleError("boot the system and spawn a process first")
    return system.kernel.current


def seq_alloc_access(
    system: HybridSystem,
    alloc_bytes: int,
    touches_per_page: int = 4,
    unmap: bool = True,
) -> int:
    """Fig. 4a body: one NVM mmap, sequential access of all pages."""
    if touches_per_page < 1 or touches_per_page > PAGE_SIZE // 8:
        raise ValueError(f"bad touches_per_page {touches_per_page}")
    process = _require_process(system)
    kernel = system.kernel
    machine = system.machine
    start_clock = machine.clock
    addr = kernel.sys_mmap(
        process, None, alloc_bytes, PROT_READ | PROT_WRITE, MAP_NVM, name="seq"
    )
    step = PAGE_SIZE // touches_per_page
    for page_base in range(0, alloc_bytes, PAGE_SIZE):
        for touch in range(touches_per_page):
            machine.access(addr + page_base + touch * step, 8, is_write=True)
    if unmap:
        kernel.sys_munmap(process, addr, alloc_bytes)
    return machine.clock - start_clock


def stride_alloc_access(
    system: HybridSystem,
    gap_bytes: int,
    count: int = 10,
    rounds: int = 200,
) -> int:
    """Fig. 4b body: ``count`` 4 KiB pages at ``gap_bytes`` spacing.

    A 1 GiB gap touches a fresh level-3 entry per page, 2 MiB a fresh
    level-1 table, 4 KiB only leaf entries — exactly the page-table
    population pattern the paper uses to vary page-table size.  Each
    round allocates, writes and frees the strided pages, so the run
    spans many checkpoint intervals and both schemes pay their
    recurring costs (per-update consistency vs per-checkpoint v2p
    maintenance).
    """
    if gap_bytes % PAGE_SIZE:
        raise ValueError("gap must be page aligned")
    process = _require_process(system)
    kernel = system.kernel
    machine = system.machine
    start_clock = machine.clock
    for _round in range(rounds):
        addrs = []
        for i in range(count):
            hint = _STRIDE_BASE + i * gap_bytes
            addrs.append(
                kernel.sys_mmap(
                    process,
                    hint,
                    PAGE_SIZE,
                    PROT_READ | PROT_WRITE,
                    MAP_NVM,
                    name=f"stride{i}",
                )
            )
        for addr in addrs:
            machine.access(addr, 8, is_write=True)
        for addr in addrs:
            kernel.sys_munmap(process, addr, PAGE_SIZE)
    return machine.clock - start_clock


def vma_churn(
    system: HybridSystem,
    total_bytes: int,
    churn_bytes: int,
    churn_rounds: int = 2,
    access_rounds: int = 0,
    touches_per_page: int = 1,
) -> int:
    """Tables III/IV body: mmap/munmap churn over a large region.

    Allocates ``total_bytes`` in NVM and writes every page, then per
    churn round: munmap the first ``churn_bytes``, mmap the same range
    back, read the reallocated pages, and (Table IV variant) re-access
    the region ``access_rounds`` more times to force TLB misses.
    Finally unmaps everything — teardown excluded from the returned
    cycle count: under epoch-based reclamation the cost of a committed
    region's teardown is paid inline or deferred to the next checkpoint
    commit depending on where the last commit happened to fall, so
    timing it would measure commit phase, not churn.
    """
    if churn_bytes > total_bytes:
        raise ValueError("churn size exceeds the allocated region")
    process = _require_process(system)
    kernel = system.kernel
    machine = system.machine
    start_clock = machine.clock
    base = kernel.sys_mmap(
        process, None, total_bytes, PROT_READ | PROT_WRITE, MAP_NVM, name="churn"
    )
    step = PAGE_SIZE // touches_per_page
    for page_base in range(0, total_bytes, PAGE_SIZE):
        machine.access(base + page_base, 8, is_write=True)
    for _round in range(churn_rounds):
        kernel.sys_munmap(process, base, churn_bytes)
        got = kernel.sys_mmap(
            process,
            base,
            churn_bytes,
            PROT_READ | PROT_WRITE,
            MAP_NVM,
            name="churn",
        )
        if got != base:
            raise KindleError("churn remap did not land at the same address")
        for page_base in range(0, churn_bytes, PAGE_SIZE):
            machine.access(base + page_base, 8, is_write=False)
        for _access in range(access_rounds):
            for page_base in range(0, churn_bytes, PAGE_SIZE):
                for touch in range(touches_per_page):
                    machine.access(
                        base + page_base + touch * step, 8, is_write=False
                    )
    elapsed = machine.clock - start_clock
    kernel.sys_munmap(process, base, total_bytes)
    return elapsed
