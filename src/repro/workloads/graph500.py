"""Graph500 single-source shortest paths (``G500_sssp`` in Table II).

Frontier-based Bellman-Ford relaxation over a weighted synthetic graph:
per-edge reads of the neighbor id, edge weight and current distance,
and — when a relaxation improves the distance — writes of the distance,
parent and frontier queue.  Relaxation success decays across rounds
like a real SSSP run.  Targets the 68% read / 32% write mix of
Table II.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import derive_rng
from repro.prep.imagegen import DiskImage, generate_image
from repro.prep.tracer import TracedProcess

_STACK_READS_PER_NODE = 2
_STACK_WRITES_PER_NODE = 3

#: Probability that a relaxation improves the distance in round 0;
#: halves every round (the frontier settles).
_INITIAL_IMPROVE_P = 0.45


def generate_sssp(
    total_ops: int = 200_000,
    nodes: int = 131072,
    avg_degree: int = 8,
    seed: int = 11,
) -> DiskImage:
    """Trace SSSP until ``total_ops`` accesses, then build the image."""
    rng = derive_rng(seed, "g500_sssp")
    adjacency: List[List[int]] = []
    for _u in range(nodes):
        degree = max(1, round(rng.gauss(avg_degree, avg_degree / 4)))
        adjacency.append([rng.randrange(nodes) for _ in range(degree)])
    edges = sum(len(a) for a in adjacency)

    tp = TracedProcess("g500_sssp")
    offsets = tp.alloc_heap("offsets", (nodes + 1) * 8)
    neighbors = tp.alloc_heap("neighbors", max(edges, 1) * 4)
    weights = tp.alloc_heap("weights", max(edges, 1) * 4)
    dist = tp.alloc_heap("dist", nodes * 8)
    parent = tp.alloc_heap("parent", nodes * 8)
    queue = tp.alloc_heap("queue", nodes * 8)
    stack = tp.stacks.register_thread(0)

    edge_base: List[int] = [0]
    for adj in adjacency:
        edge_base.append(edge_base[-1] + len(adj))

    improve_p = _INITIAL_IMPROVE_P
    round_index = 0
    while tp.total_ops < total_ops:
        tail = 0
        for u in range(nodes):
            stack.push_frame(slots=6)
            queue.load((u % nodes) * 8)  # pop frontier entry
            dist.load(u * 8)
            offsets.load(u * 8)
            offsets.load((u + 1) * 8)
            for k, v in enumerate(adjacency[u]):
                e = edge_base[u] + k
                neighbors.load(e * 4, 4)
                weights.load(e * 4, 4)
                dist.load(v * 8)
                if rng.random() < improve_p:
                    dist.store(v * 8)
                    parent.store(v * 8)
                    queue.store((tail % nodes) * 8)
                    tail += 1
            for slot in range(_STACK_READS_PER_NODE):
                stack.local_load(slot)
            for slot in range(_STACK_WRITES_PER_NODE):
                stack.local_store(slot)
            stack.pop_frame()
            if tp.total_ops >= total_ops:
                break
        round_index += 1
        improve_p = max(0.1, improve_p * 0.5)

    return generate_image("g500_sssp", tp.trace, tp.layout)
