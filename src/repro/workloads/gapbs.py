"""GAP benchmark suite PageRank (``Gapbs_pr`` in Table II).

Pull-style PageRank over a synthetic power-law CSR graph, traced
field-by-field like Pin would trace the real binary: per-node contrib
precompute, per-edge gathers of neighbor ids and contributions, and the
stack locals/spills a compiled loop produces.  Targets the 77% read /
23% write mix of Table II.
"""

from __future__ import annotations

from typing import List

from repro.common.rng import ZipfSampler, derive_rng
from repro.prep.imagegen import DiskImage, generate_image
from repro.prep.tracer import TracedProcess

#: Stack locals traffic per processed node (spills + loop bookkeeping a
#: compiler emits; Pin traces these like any heap access).
_STACK_READS_PER_NODE = 3
_STACK_WRITES_PER_NODE = 5

#: Skew of the synthetic graph's in-neighbor distribution (hot pages
#: for the HSCC study come from popular vertices).
_NEIGHBOR_ZIPF_THETA = 0.6


def _build_csr(nodes: int, avg_degree: int, seed: int) -> List[List[int]]:
    """In-neighbor lists with power-law popularity."""
    rng = derive_rng(seed, "gapbs_pr.graph")
    sampler = ZipfSampler(nodes, _NEIGHBOR_ZIPF_THETA, rng)
    adjacency: List[List[int]] = []
    for _u in range(nodes):
        degree = max(1, round(rng.gauss(avg_degree, avg_degree / 4)))
        adjacency.append([sampler.sample() for _ in range(degree)])
    return adjacency


def generate_pagerank(
    total_ops: int = 200_000,
    nodes: int = 131072,
    avg_degree: int = 8,
    seed: int = 7,
) -> DiskImage:
    """Trace PageRank until ``total_ops`` accesses, then build the image."""
    adjacency = _build_csr(nodes, avg_degree, seed)
    edges = sum(len(a) for a in adjacency)

    tp = TracedProcess("gapbs_pr")
    offsets = tp.alloc_heap("offsets", (nodes + 1) * 8)
    neighbors = tp.alloc_heap("neighbors", max(edges, 1) * 4)
    out_degree = tp.alloc_heap("out_degree", nodes * 4)
    scores = tp.alloc_heap("scores", nodes * 8)
    contrib = tp.alloc_heap("contrib", nodes * 8)
    stack = tp.stacks.register_thread(0)

    edge_base: List[int] = [0]
    for adj in adjacency:
        edge_base.append(edge_base[-1] + len(adj))

    # The two PageRank phases run in blocks so an op-budget cutoff
    # anywhere preserves the overall read/write mix.
    block = 256
    while tp.total_ops < total_ops:
        for block_start in range(0, nodes, block):
            block_end = min(block_start + block, nodes)
            # contrib[u] = scores[u] / out_degree[u]
            for u in range(block_start, block_end):
                scores.load(u * 8)
                out_degree.load(u * 4, 4)
                contrib.store(u * 8)
                if tp.total_ops >= total_ops:
                    break
            # scores[u] = base + damping * sum(contrib[v] for v in in[u])
            for u in range(block_start, block_end):
                stack.push_frame(slots=8)
                offsets.load(u * 8)
                offsets.load((u + 1) * 8)
                for k in range(len(adjacency[u])):
                    e = edge_base[u] + k
                    neighbors.load(e * 4, 4)
                    contrib.load(adjacency[u][k] * 8)
                for slot in range(_STACK_READS_PER_NODE):
                    stack.local_load(slot)
                for slot in range(_STACK_WRITES_PER_NODE):
                    stack.local_store(slot)
                scores.store(u * 8)
                stack.pop_frame()
                if tp.total_ops >= total_ops:
                    break
            if tp.total_ops >= total_ops:
                break

    return generate_image("gapbs_pr", tp.trace, tp.layout)
