"""The DRAM page pool: 512 frames in free / clean / dirty lists.

"We also maintain a pool of DRAM pages (512 pages), categorized as
lists of free, clean, and dirty pages, updated at the start of each
migration interval."  Clean pages can be repurposed by dropping their
mapping; dirty pages must be copied back to their NVM home first —
that copy-back is part of *page selection* time, which is why
selection dominates when the pool runs out of free and clean pages
(Table VI).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError


class DramPool:
    """Fixed pool of DRAM frames with free/clean/dirty bookkeeping."""

    def __init__(self, frames: List[int]) -> None:
        if not frames:
            raise ConfigError("DRAM pool needs at least one frame")
        self.capacity = len(frames)
        self.free: List[int] = list(frames)
        #: In-use frames -> dirty flag; insertion order gives FIFO
        #: victim selection within each class.
        self._in_use: Dict[int, bool] = {}

    # -- state transitions ----------------------------------------------

    def take_free(self) -> Optional[int]:
        if not self.free:
            return None
        pfn = self.free.pop()
        self._in_use[pfn] = False
        return pfn

    def oldest_clean(self, exclude=()) -> Optional[int]:
        for pfn, dirty in self._in_use.items():
            if not dirty and pfn not in exclude:
                return pfn
        return None

    def oldest_dirty(self, exclude=()) -> Optional[int]:
        for pfn, dirty in self._in_use.items():
            if dirty and pfn not in exclude:
                return pfn
        return None

    def recycle(self, pfn: int) -> None:
        """Reuse an in-use frame for a new migration (stays in use,
        resets to clean, moves to the back of the FIFO)."""
        if pfn not in self._in_use:
            raise ValueError(f"frame {pfn:#x} not in use")
        del self._in_use[pfn]
        self._in_use[pfn] = False

    def release(self, pfn: int) -> None:
        """Return a frame to the free list (mapping dropped)."""
        if pfn not in self._in_use:
            raise ValueError(f"frame {pfn:#x} not in use")
        del self._in_use[pfn]
        self.free.append(pfn)

    def mark_dirty(self, pfn: int) -> bool:
        """Record a write to a cached page; True if it was tracked."""
        if pfn in self._in_use:
            self._in_use[pfn] = True
            return True
        return False

    def is_dirty(self, pfn: int) -> bool:
        return self._in_use.get(pfn, False)

    # -- stats ------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self.free)

    @property
    def clean_count(self) -> int:
        return sum(1 for d in self._in_use.values() if not d)

    @property
    def dirty_count(self) -> int:
        return sum(1 for d in self._in_use.values() if d)

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._in_use or pfn in self.free
