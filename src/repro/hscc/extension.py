"""HSCC hardware: TLB access counting and translate-time remapping.

"HSCC extends the page table and TLB for handling NVM to DRAM
remapping and tracking the access count of NVM pages ... The page
access count is also maintained in TLB and is incremented if the data
access misses in the LLC.  The access count in TLB is written out to
PTE on TLB eviction or once during the translation in a migration
interval."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.arch.tlb import TlbEntry
from repro.mem.hybrid import MemType

if TYPE_CHECKING:  # pragma: no cover
    from repro.hscc.manager import HsccManager


class HsccExtension(HardwareExtension):
    """Walker/TLB/cache-controller patches for cooperative caching."""

    def __init__(self, manager: "HsccManager") -> None:
        self.manager = manager

    def remap_pfn(self, machine: Machine, vpn: int, pfn: int) -> int:
        """Translate-time lookup: NVM home pfn -> DRAM cache pfn."""
        table = self.manager.remap_table
        if machine.layout.mem_type_of_pfn(pfn) is not MemType.NVM:
            return pfn
        # The hardware probes the lookup table slot for this pfn.
        machine.phys_line_access(table.entry_paddr(pfn), is_write=False)
        remap = table.lookup_nvm(pfn)
        if remap is None:
            return pfn
        machine.stats.add("hscc.remapped_fills")
        return remap.dram_pfn

    def on_tlb_fill(self, machine: Machine, entry: TlbEntry) -> None:
        entry.access_count = 0
        entry.count_synced = False
        if machine.layout.mem_type_of_pfn(entry.pfn) is MemType.DRAM:
            remap = self.manager.remap_table.lookup_dram(entry.pfn)
            if remap is not None:
                entry.ext["nvm_home"] = remap.nvm_pfn

    def on_tlb_evict(self, machine: Machine, entry: TlbEntry) -> None:
        """Write the TLB access count out to the PTE on eviction."""
        if entry.access_count and "nvm_home" not in entry.ext:
            self.manager.sync_count_to_pte(entry, charge=True)

    def on_llc_miss(
        self,
        machine: Machine,
        entry: Optional[TlbEntry],
        paddr_line: int,
        is_write: bool,
    ) -> None:
        """Count LLC misses against still-in-NVM pages."""
        if entry is None or "nvm_home" in entry.ext:
            return
        if machine.layout.mem_type_of_pfn(entry.pfn) is MemType.NVM:
            entry.access_count += 1
            machine.stats.add("hscc.counted_misses")

    def route_store(
        self,
        machine: Machine,
        entry: TlbEntry,
        vaddr: int,
        paddr_line: int,
    ) -> Optional[int]:
        """No routing; piggybacked dirty tracking for cached pages."""
        if "nvm_home" in entry.ext:
            self.manager.pool.mark_dirty(entry.pfn)
        return None

    def on_power_cycle(self, machine: Machine) -> None:
        self.manager.remap_table.clear()
