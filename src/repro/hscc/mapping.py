"""The NVM↔DRAM remapping lookup table.

"In our implementation, we have designed NVM to DRAM mapping in a
lookup table to avoid the previously mentioned PTE size issue.  The
mapping table entries can be looked up using both DRAM and NVM page
frame numbers as an offset."  The table is volatile metadata resident
in DRAM; the translation hardware probes it at TLB-fill time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.units import PAGE_SIZE

#: Bytes per mapping entry (pfn pair + vpn backlink).
ENTRY_BYTES = 16
#: DRAM frames backing the lookup table.
TABLE_FRAMES = 16
#: Slots the table holds; pfn indexing wraps at this count.
TABLE_SLOTS = TABLE_FRAMES * PAGE_SIZE // ENTRY_BYTES


@dataclass(frozen=True)
class Remap:
    """One cached page: NVM home frame -> DRAM frame for vpn."""

    nvm_pfn: int
    dram_pfn: int
    vpn: int


class RemapTable:
    """Bidirectional pfn-indexed mapping table at ``base_paddr``."""

    def __init__(self, base_paddr: int) -> None:
        self.base_paddr = base_paddr
        self._by_nvm: Dict[int, Remap] = {}
        self._by_dram: Dict[int, Remap] = {}

    def insert(self, nvm_pfn: int, dram_pfn: int, vpn: int) -> Remap:
        if nvm_pfn in self._by_nvm:
            raise ValueError(f"NVM pfn {nvm_pfn:#x} already remapped")
        if dram_pfn in self._by_dram:
            raise ValueError(f"DRAM pfn {dram_pfn:#x} already in use")
        remap = Remap(nvm_pfn, dram_pfn, vpn)
        self._by_nvm[nvm_pfn] = remap
        self._by_dram[dram_pfn] = remap
        return remap

    def lookup_nvm(self, nvm_pfn: int) -> Optional[Remap]:
        return self._by_nvm.get(nvm_pfn)

    def lookup_dram(self, dram_pfn: int) -> Optional[Remap]:
        return self._by_dram.get(dram_pfn)

    def remove_by_dram(self, dram_pfn: int) -> Optional[Remap]:
        remap = self._by_dram.pop(dram_pfn, None)
        if remap is not None:
            del self._by_nvm[remap.nvm_pfn]
        return remap

    def entry_paddr(self, pfn: int) -> int:
        """Physical address of the table slot indexed by ``pfn`` (what
        the hardware lookup touches)."""
        return self.base_paddr + (pfn % TABLE_SLOTS) * ENTRY_BYTES

    def __len__(self) -> int:
        return len(self._by_nvm)

    def clear(self) -> None:
        self._by_nvm.clear()
        self._by_dram.clear()
