"""HSCC prototype (Section III-C, after Liu et al. [23]).

Hardware/Software Cooperative Caching manages DRAM as an OS-assisted
cache over NVM in a flat address space.  NVM page access counts are
kept in TLB entries (incremented on LLC miss) and synced to PTEs; every
migration interval (31.25 ms = 1e8 cycles at 3.2 GHz in the original
paper) the OS walks the page table, selects NVM pages whose count
exceeds the fetch threshold, and migrates them into a 512-page DRAM
pool managed as free/clean/dirty lists.

Following the paper's own adaptation, the NVM-to-DRAM remapping lives
in a dedicated lookup table (indexed by either pfn) instead of widened
96-bit PTEs, avoiding the last-level-page-table capacity loss the
original design suffers.

OS migration work is attributed to two cycle categories —
``os.hscc.selection`` (destination page allocation, including dirty
copy-backs) and ``os.hscc.copy`` (cache-line flush + NVM→DRAM copy) —
which regenerate Fig. 6 and Tables V/VI.
"""

from repro.hscc.extension import HsccExtension
from repro.hscc.manager import DynamicThresholdPolicy, HsccManager
from repro.hscc.mapping import RemapTable
from repro.hscc.pool import DramPool

__all__ = [
    "HsccExtension",
    "HsccManager",
    "DynamicThresholdPolicy",
    "RemapTable",
    "DramPool",
]
