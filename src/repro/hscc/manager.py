"""HSCC OS side: the periodic migration activity.

"The migration activity inspects the page access count maintained in
PTEs corresponding to NVM pages (by performing a software page table
walk) and migrates the pages to DRAM cache if the count exceeds the
fetch threshold.  Migrating a page to DRAM consists of two steps —
(i) page selection, selecting the destination DRAM page, and (ii) page
copy, copying the page from NVM to DRAM.  Page selection includes
allocating the destination DRAM page from the free pool or from the
clean or dirty list of DRAM pages.  If any page is selected from the
dirty list, then we copy back the page from DRAM to NVM before use.
Page copy includes flushing cache lines corresponding to the NVM page
under migration before copying data from NVM to DRAM ... The page
access count in all PTEs is reset, and corresponding TLB entries are
invalidated in a migration activity."

Cycle attribution: ``os.hscc.selection`` vs ``os.hscc.copy`` regenerate
Table VI; running with ``charge_os=False`` gives Fig. 6's
"hardware migration activities only" baseline (all state changes still
happen, the clock does not).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.arch.tlb import TlbEntry
from repro.common.errors import KindleError
from repro.common.units import PAGE_SIZE, cycles_from_ms, lines_in
from repro.gemos.kernel import Kernel
from repro.gemos.pagetable import Pte
from repro.gemos.process import Process
from repro.hscc.extension import HsccExtension
from repro.hscc.mapping import TABLE_FRAMES as REMAP_TABLE_FRAMES
from repro.hscc.mapping import RemapTable
from repro.hscc.pool import DramPool
from repro.mem.hybrid import MemType

#: Paper value: 1e8 cycles, quoted as 31.25 ms.
DEFAULT_MIGRATION_INTERVAL_MS = 31.25
DEFAULT_POOL_PAGES = 512

#: Kernel cycles to inspect one PTE during the software walk.
PTE_INSPECT_CYCLES = 6
#: Kernel cycles to pop and account a destination frame.
DEST_ALLOC_CYCLES = 400
#: Entries per cache line when streaming the page table.
PTES_PER_LINE = 8


class DynamicThresholdPolicy:
    """Dynamic fetch-threshold adjustment (HSCC's original feature).

    The paper's prototype states: "We have not incorporated dynamic
    fetch threshold adjustment in our implementation and have fixed
    the threshold to static values."  This policy implements the
    missing piece: after every migration interval the threshold halves
    when the DRAM pool is underused (migration is too timid) and
    doubles when the interval forced dirty copy-backs or exhausted the
    pool (migration is thrashing).
    """

    def __init__(self, lo: int = 1, hi: int = 1024) -> None:
        if lo < 1 or hi < lo:
            raise KindleError(f"bad threshold bounds [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.history: List[int] = []

    def adjust(
        self,
        threshold: int,
        migrated: int,
        copybacks: int,
        pool: "DramPool",
    ) -> int:
        if copybacks > 0 or migrated >= pool.capacity:
            threshold = min(self.hi, threshold * 2)
        elif pool.free_count > pool.capacity // 2 and migrated < pool.capacity // 8:
            threshold = max(self.lo, threshold // 2)
        self.history.append(threshold)
        return threshold


class HsccManager:
    """Drives DRAM-as-cache migration for one process."""

    def __init__(
        self,
        kernel: Kernel,
        process: Process,
        fetch_threshold: int = 25,
        migration_interval_ms: float = DEFAULT_MIGRATION_INTERVAL_MS,
        pool_pages: int = DEFAULT_POOL_PAGES,
        charge_os: bool = True,
        auto_arm: bool = True,
        dynamic_threshold: Optional[DynamicThresholdPolicy] = None,
    ) -> None:
        if fetch_threshold < 1:
            raise KindleError("fetch threshold must be >= 1")
        if migration_interval_ms <= 0:
            raise KindleError("migration interval must be positive")
        self.kernel = kernel
        self.machine = kernel.machine
        self.process = process
        self.fetch_threshold = fetch_threshold
        self.interval_cycles = cycles_from_ms(migration_interval_ms)
        self.charge_os = charge_os
        table_base_pfn = kernel.dram_alloc.alloc()
        for _ in range(REMAP_TABLE_FRAMES - 1):
            kernel.dram_alloc.alloc()
        self.remap_table = RemapTable(base_paddr=table_base_pfn * PAGE_SIZE)
        self.pool = DramPool(
            [kernel.dram_alloc.alloc() for _ in range(pool_pages)]
        )
        self.extension = HsccExtension(self)
        self.machine.attach_extension(self.extension)
        self.pages_migrated = 0
        self.dirty_copybacks = 0
        self.clean_evictions = 0
        self.dynamic_threshold = dynamic_threshold
        self._timer = None
        if auto_arm:
            self.arm()

    def arm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.machine.timers.arm(
            self.machine.clock + self.interval_cycles,
            self.migrate,
            period=self.interval_cycles,
            name="hscc-migration",
        )

    def disarm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # count maintenance
    # ------------------------------------------------------------------

    def sync_count_to_pte(self, entry: TlbEntry, charge: bool) -> None:
        """Flush a TLB access count into the PTE (eviction/walk path)."""
        table = self.process.page_table
        if table is None or entry.asid != self.process.asid:
            return
        pte = table.lookup(entry.vpn)
        if pte is None or pte.pfn != entry.pfn:
            entry.access_count = 0
            return
        pte.access_count += entry.access_count
        entry.access_count = 0
        entry.count_synced = True
        if charge:
            self.machine.bulk_lines(1, MemType.DRAM, is_write=True)
        self.machine.stats.add("hscc.count_syncs")

    # ------------------------------------------------------------------
    # the migration activity
    # ------------------------------------------------------------------

    def migrate(self) -> None:
        """One migration interval: selection, copy, count reset."""
        machine = self.machine
        table = self.process.page_table
        if table is None:
            return
        copybacks_before = self.dirty_copybacks
        # Candidate identification (software PT walk, count sync,
        # count reset) is its own category: the paper's "Page
        # Selection" bucket covers *destination* allocation only.
        with machine.os_region("hscc.scan", charge=self.charge_os):
            selections = self._select_pages()
        with machine.os_region("hscc.copy", charge=self.charge_os):
            for vpn, pte, nvm_pfn, dram_pfn in selections:
                self._copy_page_in(vpn, pte, nvm_pfn, dram_pfn)
        with machine.os_region("hscc.scan", charge=self.charge_os):
            self._reset_counts()
        if self.dynamic_threshold is not None:
            self.fetch_threshold = self.dynamic_threshold.adjust(
                self.fetch_threshold,
                len(selections),
                self.dirty_copybacks - copybacks_before,
                self.pool,
            )
            machine.stats.set("hscc.current_threshold", self.fetch_threshold)
        machine.stats.add("hscc.migration_intervals")

    def _select_pages(self) -> List[Tuple[int, Pte, int, int]]:
        """Software PT walk + destination allocation (selection step)."""
        machine = self.machine
        table = self.process.page_table
        assert table is not None
        # Refresh the pool lists for this interval.
        machine.bulk_lines(
            lines_in(self.pool.capacity * 8), MemType.DRAM, is_write=False
        )
        # Sync outstanding TLB counts so the walk sees current values.
        for entry in machine.tlb.entries():
            if entry.access_count and "nvm_home" not in entry.ext:
                self.sync_count_to_pte(entry, charge=self.charge_os)
        # Software page-table walk.
        leaves = list(table.iter_leaves())
        machine.bulk_lines(
            (len(leaves) + PTES_PER_LINE - 1) // PTES_PER_LINE,
            MemType.DRAM,
            is_write=False,
        )
        machine.advance(PTE_INSPECT_CYCLES * len(leaves))
        layout = machine.layout
        selections: List[Tuple[int, Pte, int, int]] = []
        reserved: set = set()
        for vpn, pte in leaves:
            if layout.mem_type_of_pfn(pte.pfn) is not MemType.NVM:
                continue
            if self.remap_table.lookup_nvm(pte.pfn) is not None:
                continue
            if pte.access_count < self.fetch_threshold:
                continue
            with machine.os_region("hscc.selection", charge=self.charge_os):
                dram_pfn = self._allocate_destination(reserved)
            if dram_pfn is None:
                machine.stats.add("hscc.pool_exhausted")
                break
            reserved.add(dram_pfn)
            selections.append((vpn, pte, pte.pfn, dram_pfn))
        return selections

    def _allocate_destination(self, reserved: set) -> Optional[int]:
        """Free list, then clean eviction, then dirty copy-back.

        ``reserved`` holds frames already promised to earlier
        selections of the same interval, which must not be recycled
        again before their copy lands.
        """
        machine = self.machine
        # List manipulation cost (pop + bookkeeping writes).
        machine.advance(DEST_ALLOC_CYCLES)
        machine.bulk_lines(1, MemType.DRAM, is_write=True)
        pfn = self.pool.take_free()
        if pfn is not None:
            machine.stats.add("hscc.dest_from_free")
            return pfn
        pfn = self.pool.oldest_clean(exclude=reserved)
        if pfn is not None:
            self._drop_mapping(pfn)
            self.pool.recycle(pfn)
            self.clean_evictions += 1
            machine.stats.add("hscc.dest_from_clean")
            return pfn
        pfn = self.pool.oldest_dirty(exclude=reserved)
        if pfn is not None:
            remap = self.remap_table.lookup_dram(pfn)
            if remap is not None:
                # Copy the page back to its NVM home before reuse.
                machine.copy_page(pfn, remap.nvm_pfn, flush_src=True)
                machine.stats.add("hscc.dirty_copybacks")
                self.dirty_copybacks += 1
            self._drop_mapping(pfn)
            self.pool.recycle(pfn)
            machine.stats.add("hscc.dest_from_dirty")
            return pfn
        return None

    def _drop_mapping(self, dram_pfn: int) -> None:
        """Remove a DRAM page's remap entry and stale translations."""
        remap = self.remap_table.remove_by_dram(dram_pfn)
        if remap is None:
            return
        self.machine.phys_line_access(
            self.remap_table.entry_paddr(remap.nvm_pfn), is_write=True
        )
        self.machine.tlb.invalidate(self.process.asid, remap.vpn)

    def _copy_page_in(
        self, vpn: int, pte: Pte, nvm_pfn: int, dram_pfn: int
    ) -> None:
        """Page copy step: flush, copy NVM->DRAM, install the mapping."""
        machine = self.machine
        machine.copy_page(nvm_pfn, dram_pfn, flush_src=True)
        self.remap_table.insert(nvm_pfn, dram_pfn, vpn)
        machine.phys_line_access(
            self.remap_table.entry_paddr(nvm_pfn), is_write=True
        )
        pte.access_count = 0
        machine.tlb.invalidate(self.process.asid, vpn)
        self.pages_migrated += 1
        machine.stats.add("hscc.pages_migrated")

    def _reset_counts(self) -> None:
        """End of interval: reset every PTE count, shoot down TLB counts."""
        machine = self.machine
        table = self.process.page_table
        assert table is not None
        reset = 0
        for vpn, pte in table.iter_leaves():
            if pte.access_count:
                pte.access_count = 0
                reset += 1
        machine.bulk_lines(
            (reset + PTES_PER_LINE - 1) // PTES_PER_LINE,
            MemType.DRAM,
            is_write=True,
        )
        for entry in list(machine.tlb.entries()):
            if entry.asid == self.process.asid and entry.access_count:
                machine.tlb.invalidate(entry.asid, entry.vpn)
        machine.stats.add("hscc.count_resets", reset)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def migration_cycle_split(self) -> Tuple[int, int]:
        """(selection, copy) cycles, charged or uncharged alike."""
        stats = self.machine.stats
        selection = (
            stats["cycles.os.hscc.selection"] + stats["uncharged.os.hscc.selection"]
        )
        copy = stats["cycles.os.hscc.copy"] + stats["uncharged.os.hscc.copy"]
        return selection, copy
