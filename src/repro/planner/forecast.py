"""Workload specifications the planner scores blueprints against.

A workload spec is a plain JSON dict (it crosses the sweep-engine
process boundary inside the scoring cell's kwargs, so its bytes are
part of the cache key).  Three kinds:

``traffic``
    A :class:`~repro.workloads.traffic.PopulationConfig` — usually the
    *forecast* fit to an observed population via
    :func:`repro.workloads.traffic.fit_forecast`, so the planner tunes
    for the next load period rather than the last one.

``image``
    A named workload generator replayed ``repeats`` times (fixed pass
    count, so every blueprint executes identical work).

``trace``
    Recorded packed-trace containers, content-addressed by sha256 at
    spec-build time — editing a container on disk changes the spec and
    therefore invalidates every cached score built on it.
"""

from __future__ import annotations

from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.common.errors import KindleError
from repro.workloads.traffic import PopulationConfig, fit_forecast

#: Image-workload generators the scorer can resolve by name.
IMAGE_GENERATORS = ("ycsb",)

WORKLOAD_KINDS = ("traffic", "image", "trace")


def traffic_workload(config: PopulationConfig) -> Dict[str, object]:
    return {"kind": "traffic", "population": config.to_dict()}


def forecast_workload(
    schedule,
    seed: Optional[int] = None,
    bins: int = 24,
    diurnal_ratio: float = 2.0,
) -> Dict[str, object]:
    """Fit a forecast to an observed schedule and wrap it as a spec."""
    forecast = fit_forecast(
        schedule, seed=seed, bins=bins, diurnal_ratio=diurnal_ratio
    )
    return traffic_workload(forecast)


def image_workload(
    name: str = "ycsb",
    ops: int = 12_000,
    records: int = 65_536,
    seed: int = 13,
    repeats: int = 4,
) -> Dict[str, object]:
    """YCSB replayed ``repeats`` times (fixed pass count across
    candidates).  The default 64 Ki records (~6.5 MiB footprint)
    overflow every candidate LLC, so cache geometry and tiering see
    real memory traffic rather than an L2-resident hot set."""
    return {
        "kind": "image",
        "name": name,
        "ops": ops,
        "records": records,
        "seed": seed,
        "repeats": repeats,
    }


def trace_workload(paths: Iterable) -> Dict[str, object]:
    """Spec over recorded containers (e.g. ``traffic --trace-dir`` output).

    Containers are listed in sorted-path order and fingerprinted now,
    so the spec (and every cache key derived from it) pins the exact
    bytes that will be replayed.
    """
    containers = []
    for path in sorted(Path(p) for p in paths):
        try:
            digest = sha256(path.read_bytes()).hexdigest()
        except OSError as exc:
            raise KindleError(f"unreadable trace container {path}: {exc}")
        containers.append({"path": str(path), "sha256": digest})
    if not containers:
        raise KindleError("trace workload needs at least one container")
    return {"kind": "trace", "containers": containers}


def validate_workload(spec: Dict[str, object]) -> None:
    """Reject malformed specs before they reach (or poison) the cache."""
    if not isinstance(spec, dict):
        raise KindleError(f"workload spec must be a dict: {spec!r}")
    kind = spec.get("kind")
    if kind not in WORKLOAD_KINDS:
        raise KindleError(
            f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
        )
    if kind == "traffic":
        population = spec.get("population")
        if not isinstance(population, dict):
            raise KindleError("traffic workload needs a population dict")
        PopulationConfig.from_dict(population)  # full field validation
    elif kind == "image":
        if spec.get("name") not in IMAGE_GENERATORS:
            raise KindleError(
                f"unknown image workload {spec.get('name')!r}; "
                f"choose from {IMAGE_GENERATORS}"
            )
        for key in ("ops", "records", "seed", "repeats"):
            value = spec.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise KindleError(f"image workload {key} must be an int")
        if spec["ops"] < 1 or spec["records"] < 1 or spec["repeats"] < 1:
            raise KindleError("image workload ops/records/repeats must be >=1")
    else:
        containers = spec.get("containers")
        if not isinstance(containers, list) or not containers:
            raise KindleError("trace workload needs a non-empty container list")
        for entry in containers:
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("path"), str)
                or not isinstance(entry.get("sha256"), str)
            ):
                raise KindleError(
                    f"trace container entries need path+sha256: {entry!r}"
                )
