"""Candidate configurations the planner explores.

A :class:`Blueprint` names one point in the tuning space the paper's
Section V studies by hand: the DRAM:NVM capacity split, the page-table
persistence scheme, the checkpoint cadence, the tiering policy and the
cache/TLB geometry.  Like
:class:`~repro.workloads.traffic.PopulationConfig` it is frozen,
validated on construction, and round-trips through JSON — a blueprint
is exactly what a sweep-engine cell can carry across the process
boundary, nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

from repro.common.config import (
    CacheConfig,
    HybridLayoutConfig,
    MachineConfig,
    TlbConfig,
)
from repro.common.errors import KindleError
from repro.common.units import KiB, MiB

#: Page-table schemes understood by :func:`repro.persist.schemes.make_scheme`.
SCHEMES = ("rebuild", "persistent")

#: ``"none"`` plus :attr:`repro.tiering.daemon.TieringDaemon.POLICIES`.
TIERINGS = ("none", "count", "rbla")

#: The paper's LLC: 2 MiB at 40 cycles.  Other sizes scale the hit
#: latency by ±this many cycles per doubling/halving — a bigger array
#: is slower to index, so "largest LLC" is not a free win.
_LLC_BASE_KIB = 2048
_LLC_BASE_LATENCY = 40
_LLC_LATENCY_PER_DOUBLING = 8
_LLC_MIN_LATENCY = 10


def llc_hit_latency(llc_kib: int) -> int:
    """Hit latency for an ``llc_kib``-KiB LLC (paper point: 2 MiB @ 40)."""
    doublings = 0
    size = llc_kib
    while size > _LLC_BASE_KIB:
        size //= 2
        doublings += 1
    while size < _LLC_BASE_KIB:
        size *= 2
        doublings -= 1
    if size != _LLC_BASE_KIB:
        raise KindleError(f"LLC size must be a power-of-two KiB: {llc_kib}")
    latency = _LLC_BASE_LATENCY + _LLC_LATENCY_PER_DOUBLING * doublings
    return max(_LLC_MIN_LATENCY, latency)


@dataclass(frozen=True)
class Blueprint:
    """One candidate platform + OS-policy configuration.

    Defaults are the paper's configuration (Table I plus the 10 ms
    checkpoint cadence), so ``Blueprint()`` *is* the paper default and
    every ranking the planner prints is implicitly "versus the paper".
    """

    dram_mib: int = 3072
    nvm_mib: int = 2048
    scheme: str = "rebuild"
    checkpoint_interval_ms: float = 10.0
    tiering: str = "none"
    llc_kib: int = 2048
    tlb_entries: int = 64

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.dram_mib < 1 or self.nvm_mib < 1:
            raise KindleError(
                f"blueprint needs DRAM and NVM capacity: "
                f"{self.dram_mib} MiB / {self.nvm_mib} MiB"
            )
        if self.scheme not in SCHEMES:
            raise KindleError(
                f"unknown page-table scheme {self.scheme!r}; "
                f"choose from {SCHEMES}"
            )
        if self.tiering not in TIERINGS:
            raise KindleError(
                f"unknown tiering policy {self.tiering!r}; "
                f"choose from {TIERINGS}"
            )
        if (
            not self.checkpoint_interval_ms > 0
        ):  # also rejects NaN, unlike `<= 0`
            raise KindleError(
                f"checkpoint interval must be positive: "
                f"{self.checkpoint_interval_ms!r}"
            )
        if self.llc_kib < 512:
            raise KindleError(
                f"LLC smaller than the 512 KiB L2 breaks hierarchy "
                f"monotonicity: {self.llc_kib} KiB"
            )
        llc_hit_latency(self.llc_kib)  # power-of-two check
        if self.tlb_entries < 1:
            raise KindleError(f"TLB needs >=1 entry: {self.tlb_entries}")

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------

    def machine_config(self) -> MachineConfig:
        """The :class:`MachineConfig` this blueprint describes.

        Axes the blueprint does not name (L1/L2, memory timings, NVM
        buffers) keep the paper defaults.
        """
        return MachineConfig(
            llc=CacheConfig(
                "LLC",
                self.llc_kib * KiB,
                16,
                hit_latency=llc_hit_latency(self.llc_kib),
            ),
            tlb=TlbConfig(entries=self.tlb_entries),
            layout=HybridLayoutConfig(
                dram_bytes=self.dram_mib * MiB,
                nvm_bytes=self.nvm_mib * MiB,
            ),
        )

    def label(self) -> str:
        """Compact human/CI-stable identity, e.g. the sweep cell label."""
        ck = f"{self.checkpoint_interval_ms:g}"
        return (
            f"d{self.dram_mib}+n{self.nvm_mib}"
            f".{self.scheme}.ck{ck}.{self.tiering}"
            f".llc{self.llc_kib}.tlb{self.tlb_entries}"
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "dram_mib": self.dram_mib,
            "nvm_mib": self.nvm_mib,
            "scheme": self.scheme,
            "checkpoint_interval_ms": self.checkpoint_interval_ms,
            "tiering": self.tiering,
            "llc_kib": self.llc_kib,
            "tlb_entries": self.tlb_entries,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Blueprint":
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise KindleError(f"unknown blueprint fields: {unknown}")
        return cls(**data)


#: The configuration the paper actually ran (all defaults).
PAPER_DEFAULT = Blueprint()
