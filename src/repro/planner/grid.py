"""Candidate enumeration: the blueprint grids the planner scores.

Two shapes:

``star`` (the default)
    The paper default plus every one-axis-at-a-time variation — the
    cheapest grid that still attributes a win to a single knob, and
    small enough to score on every plan.

``grid``
    The full cartesian product of the axes, for exhaustive (cached)
    sweeps.

Both run through named pruning rules before scoring.  The only default
rule encodes a real restriction of the current stack: the exclusive
:class:`~repro.tiering.daemon.TieringDaemon` migrates pages behind the
persistence journal's back (its docstring calls the combination future
work), so ``tiering != none`` with ``scheme == "persistent"`` is
rejected rather than scored as if it were sound.  Nothing is dropped
silently: the returned :class:`CandidateGrid` records every pruned
candidate with its rule and how many were cut by ``max_candidates``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import KindleError
from repro.planner.blueprint import PAPER_DEFAULT, Blueprint

#: One-axis variant values.  ``memory_split`` keeps the paper's 5 GiB
#: total, so "more DRAM" always costs NVM capacity and vice versa.
AXES: Dict[str, Tuple[object, ...]] = {
    "memory_split": ((3072, 2048), (2048, 3072), (4096, 1024), (1024, 4096)),  # repro: allow-geometry(MiB capacities, not page sizes)
    "scheme": ("rebuild", "persistent"),
    "checkpoint_interval_ms": (5.0, 10.0, 20.0),
    "tiering": ("none", "count", "rbla"),
    "llc_kib": (1024, 2048, 4096),  # repro: allow-geometry(KiB capacities, not page sizes)
    "tlb_entries": (64, 128),
}

#: Reduced axes for CI smoke plans (star mode: 6 candidates).
SMOKE_AXES: Dict[str, Tuple[object, ...]] = {
    "memory_split": ((3072, 2048), (4096, 1024)),  # repro: allow-geometry(MiB capacities, not page sizes)
    "scheme": ("rebuild", "persistent"),
    "checkpoint_interval_ms": (10.0, 20.0),
    "tiering": ("none", "count"),
    "llc_kib": (1024, 2048),
    "tlb_entries": (64,),
}


def _with_axis(base: Blueprint, axis: str, value: object) -> Blueprint:
    data = base.to_dict()
    if axis == "memory_split":
        data["dram_mib"], data["nvm_mib"] = value
    else:
        data[axis] = value
    return Blueprint.from_dict(data)


def _prune_tiering_vs_persistent(blueprint: Blueprint) -> Optional[str]:
    if blueprint.tiering != "none" and blueprint.scheme == "persistent":
        return (
            "exclusive tiering migrates pages the persistence journal "
            "does not track (TieringDaemon: future work)"
        )
    return None


#: Named rules: ``rule(blueprint) -> reason`` (``None`` keeps it).
PRUNE_RULES: Dict[str, Callable[[Blueprint], Optional[str]]] = {
    "tiering-vs-persistent": _prune_tiering_vs_persistent,
}


@dataclass
class CandidateGrid:
    """An enumerated candidate set plus everything that was *not* kept."""

    blueprints: List[Blueprint] = field(default_factory=list)
    #: ``(label, rule, reason)`` per pruned candidate.
    pruned: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Candidates cut by ``max_candidates`` (never the paper default).
    dropped: int = 0

    def labels(self) -> List[str]:
        return [blueprint.label() for blueprint in self.blueprints]


def enumerate_blueprints(
    mode: str = "star",
    smoke: bool = False,
    max_candidates: Optional[int] = None,
    prune: bool = True,
) -> CandidateGrid:
    """Enumerate the candidate grid (paper default always first).

    Deterministic: axis order and value order fix the candidate order,
    so two plans over the same arguments score the same cells in the
    same order (and therefore hit the same cache entries).
    """
    if mode not in ("star", "grid"):
        raise KindleError(f"unknown enumeration mode {mode!r}")
    if max_candidates is not None and max_candidates < 1:
        raise KindleError(f"max_candidates must be >=1: {max_candidates}")
    axes = SMOKE_AXES if smoke else AXES
    candidates: List[Blueprint] = [PAPER_DEFAULT]
    seen = {PAPER_DEFAULT.label()}

    def _add(blueprint: Blueprint) -> None:
        if blueprint.label() not in seen:
            seen.add(blueprint.label())
            candidates.append(blueprint)

    if mode == "star":
        for axis, values in axes.items():
            for value in values:
                _add(_with_axis(PAPER_DEFAULT, axis, value))
    else:
        names = list(axes)
        for combo in product(*(axes[name] for name in names)):
            blueprint = PAPER_DEFAULT
            for axis, value in zip(names, combo):
                blueprint = _with_axis(blueprint, axis, value)
            _add(blueprint)

    grid = CandidateGrid()
    for blueprint in candidates:
        reason = None
        rule_name = ""
        if prune:
            for rule_name, rule in PRUNE_RULES.items():
                reason = rule(blueprint)
                if reason is not None:
                    break
        if reason is not None:
            grid.pruned.append((blueprint.label(), rule_name, reason))
        else:
            grid.blueprints.append(blueprint)
    if max_candidates is not None and len(grid.blueprints) > max_candidates:
        grid.dropped = len(grid.blueprints) - max_candidates
        grid.blueprints = grid.blueprints[:max_candidates]
    return grid
