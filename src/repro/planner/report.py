"""Plan reporting: the ``plan`` section and its printed table."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.planner.blueprint import PAPER_DEFAULT
from repro.planner.grid import CandidateGrid
from repro.planner.rank import Objective

#: Columns of the printed ranking table, in order.
TABLE_COLUMNS = (
    "rank",
    "label",
    "score",
    "predicted_cycles",
    "recovery_cycles",
    "nvm_line_writes",
    "checkpoints",
    "promotions",
)


def plan_table(
    ranking: List[Dict[str, object]]
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) for :func:`repro.harness.report.format_table`."""
    headers = list(TABLE_COLUMNS)
    rows = [[row[column] for column in headers] for row in ranking]
    return headers, rows


def default_row(
    ranking: List[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """The paper-default's row in a ranking (None if it was not scored)."""
    for row in ranking:
        if row["label"] == PAPER_DEFAULT.label():
            return row
    return None


def plan_section(
    workload: Dict[str, object],
    objective: Objective,
    grid: CandidateGrid,
    ranking: List[Dict[str, object]],
    generated_by: str,
) -> Dict[str, object]:
    """The ``plan`` section merged into the trajectory JSON.

    Everything here is a pure function of (workload spec, objective,
    candidate grid, scores): no wall-clock, no host state — so a warm
    re-plan writes a byte-identical section and CI can diff picks
    directly.
    """
    baseline = default_row(ranking)
    section: Dict[str, object] = {
        "workload": workload,
        "objective": objective.to_dict(),
        "candidates": len(grid.blueprints),
        "pruned": [
            {"label": label, "rule": rule, "reason": reason}
            for label, rule, reason in grid.pruned
        ],
        "dropped_by_cap": grid.dropped,
        "ranking": ranking,
        "pick": ranking[0],
        "paper_default": baseline,
        "generated_by": generated_by,
    }
    if baseline is not None:
        section["pick_vs_default"] = {
            "score_delta": round(
                float(ranking[0]["score"]) - float(baseline["score"]), 6
            ),
            "beats_default": ranking[0]["score"] < baseline["score"],
        }
    return section
