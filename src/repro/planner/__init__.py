"""``repro.planner`` — blueprint planning for hybrid-memory tuning.

The paper's Section V explores the OS/architecture tuning space by
hand: one configuration per experiment, interpreted by the reader.
This package closes the loop (ROADMAP item 3): enumerate candidate
:class:`~repro.planner.blueprint.Blueprint` configurations, score each
against a recorded trace or a *forecast* workload (fit to an observed
population via :func:`repro.workloads.traffic.fit_forecast`) through
the sweep engine as cacheable cells, and rank the results under a
user-weighted :class:`~repro.planner.rank.Objective` over predicted
cycles, NVM wear and recovery time.  ``python -m repro.harness plan``
is the CLI entry.

Because scoring runs through :mod:`repro.exec`, a re-plan over an
unchanged workload is pure cache reads — the planner's forecasting
loop costs one sweep the first time and nothing after.
"""

from repro.planner.blueprint import PAPER_DEFAULT, SCHEMES, TIERINGS, Blueprint
from repro.planner.forecast import (
    forecast_workload,
    image_workload,
    trace_workload,
    traffic_workload,
    validate_workload,
)
from repro.planner.grid import (
    AXES,
    PRUNE_RULES,
    SMOKE_AXES,
    CandidateGrid,
    enumerate_blueprints,
)
from repro.planner.rank import Objective, rank_blueprints
from repro.planner.report import default_row, plan_section, plan_table
from repro.planner.score import score_blueprint_cell

__all__ = [
    "AXES",
    "Blueprint",
    "CandidateGrid",
    "Objective",
    "PAPER_DEFAULT",
    "PRUNE_RULES",
    "SCHEMES",
    "SMOKE_AXES",
    "TIERINGS",
    "default_row",
    "enumerate_blueprints",
    "forecast_workload",
    "image_workload",
    "plan_section",
    "plan_table",
    "rank_blueprints",
    "score_blueprint_cell",
    "trace_workload",
    "traffic_workload",
    "validate_workload",
]
