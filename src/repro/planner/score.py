"""Blueprint scoring: one sweep-engine cell per candidate.

:func:`score_blueprint_cell` is the planner's unit of work — a
top-level, state-free, deterministic function whose kwargs are plain
JSON (a blueprint dict plus a workload spec), so the sweep engine can
fan candidates across a process pool and cache finished scores
content-addressed.  Re-planning over an unchanged workload therefore
costs one cache read per candidate.

Each cell runs two phases on fresh systems built from the blueprint's
:class:`~repro.common.config.MachineConfig`:

*Serve phase* — replays the workload (forecast traffic population,
generated image, or recorded trace containers) with persistence off,
optionally under a :class:`~repro.tiering.daemon.TieringDaemon` per
process.  Yields ``serve_cycles`` plus NVM wear and migration counts.

*Persist probe* — replays a small fixed YCSB image under the
blueprint's page-table scheme and checkpoint cadence, then crashes and
reboots.  Yields ``persist_cycles``, ``recovery_cycles`` and the
checkpoint count.  The probe compresses the checkpoint cadence by
:data:`PROBE_INTERVAL_SCALE` so a millisecond-scale probe still spans
several intervals — the same scaled-down-but-proportional trick the
fig5/fig6 cells use with ``target_ms``.  Tiering is never enabled here:
the exclusive daemon migrates pages the persistence journal does not
track (the enumerator prunes that combination outright).
"""

from __future__ import annotations

from hashlib import sha256
from pathlib import Path
from typing import Dict, List

from repro.common.errors import KindleError
from repro.common.units import PAGE_SIZE
from repro.planner.blueprint import Blueprint
from repro.planner.forecast import validate_workload
from repro.platform import MAP_NVM, PROT_READ, PROT_WRITE, HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.prep.trace import PackedTrace, load_trace_binary
from repro.tiering.daemon import TieringDaemon
from repro.workloads.traffic import (
    ClientPopulation,
    PopulationConfig,
    TrafficScheduler,
)
from repro.workloads.ycsb import generate_ycsb

#: Tiering parameters for the serve phase.  The production defaults
#: (4 ms epochs, 8 misses/epoch) assume hours of simulated load;
#: planner serve phases are scaled down to a few simulated
#: milliseconds, so the epoch and hot threshold shrink with them —
#: several epochs still fire and hot pages still promote.
TIERING_EPOCH_MS = 0.25
TIERING_HOT_THRESHOLD = 4

#: Persist-probe workload: small and fixed so every blueprint pays for
#: the *same* durable work and only scheme/cadence/geometry vary.
PROBE_OPS = 10_000
PROBE_RECORDS = 512
PROBE_SEED = 17

#: The probe divides the blueprint's checkpoint interval by this factor
#: (10 ms of configured cadence probes as 0.1 ms), preserving the
#: *relative* cadence between candidates at probe scale.
PROBE_INTERVAL_SCALE = 100.0


def _attach_tiering(system: HybridSystem, processes, policy: str) -> List:
    daemons = [
        TieringDaemon(
            system.kernel,
            process,
            epoch_ms=TIERING_EPOCH_MS,
            hot_threshold=TIERING_HOT_THRESHOLD,
            policy=policy,
        )
        for process in processes
    ]
    return daemons


def _serve_traffic(
    system: HybridSystem, spec: Dict[str, object], tiering: str
) -> int:
    config = PopulationConfig.from_dict(spec["population"])
    schedule = ClientPopulation(config).generate()
    scheduler = TrafficScheduler(system, schedule)
    scheduler.provision()
    daemons = (
        _attach_tiering(system, scheduler.processes, tiering)
        if tiering != "none"
        else []
    )
    result = scheduler.run(batch=True)
    for daemon in daemons:
        daemon.disarm()
    return result.ops


def _serve_image(
    system: HybridSystem, spec: Dict[str, object], tiering: str
) -> int:
    image = generate_ycsb(
        total_ops=spec["ops"], records=spec["records"], seed=spec["seed"]
    )
    process = system.spawn(image.name)
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
    program.install(system.kernel, process)
    daemons = (
        _attach_tiering(system, [process], tiering)
        if tiering != "none"
        else []
    )
    ops = 0
    for _ in range(spec["repeats"]):
        process.registers["pc"] = 0
        ops += program.run(system.kernel, process)
    for daemon in daemons:
        daemon.disarm()
    return ops


def _serve_trace(
    system: HybridSystem, spec: Dict[str, object], tiering: str
) -> int:
    from repro.replay import BatchReplayer

    kernel = system.kernel
    ops = 0
    daemons: List = []
    replayer = BatchReplayer(system.machine)
    for index, entry in enumerate(spec["containers"]):
        path = Path(entry["path"])
        raw = path.read_bytes()
        digest = sha256(raw).hexdigest()
        if digest != entry["sha256"]:
            raise KindleError(
                f"trace container {path} changed since the plan was "
                f"specified: {digest[:12]} != {entry['sha256'][:12]}"
            )
        packed = PackedTrace.from_records(load_trace_binary(path))
        if not len(packed):
            continue
        process = kernel.create_process(f"trace{index}", persistent=False)
        lo = (int(packed.addr.min()) // PAGE_SIZE) * PAGE_SIZE
        hi = int((packed.addr + packed.size).max())
        length = -(-(hi - lo) // PAGE_SIZE) * PAGE_SIZE
        kernel.sys_mmap(
            process, lo, length, PROT_READ | PROT_WRITE, 0, name=f"trace{index}"
        )
        if tiering != "none":
            daemons.extend(_attach_tiering(system, [process], tiering))
        kernel.switch_to(process)
        ops += replayer.replay(packed)
    for daemon in daemons:
        daemon.disarm()
    return ops


def _persist_probe(blueprint: Blueprint) -> Dict[str, int]:
    system = HybridSystem(
        config=blueprint.machine_config(),
        scheme=blueprint.scheme,
        checkpoint_interval_ms=(
            blueprint.checkpoint_interval_ms / PROBE_INTERVAL_SCALE
        ),
        persistence=True,
    )
    system.boot()
    process = system.spawn("probe")
    image = generate_ycsb(
        total_ops=PROBE_OPS, records=PROBE_RECORDS, seed=PROBE_SEED
    )
    program = ReplayProgram(image, PlacementPolicy.ALL_NVM)
    program.install(system.kernel, process)
    start = system.machine.clock
    program.run(system.kernel, process)
    system.checkpoint()
    persist_cycles = system.machine.clock - start
    checkpoints = system.stats.get("checkpoint.taken")
    wear = system.machine.controller.wear_report(top=0)
    system.crash()
    before_boot = system.machine.clock
    system.boot()
    recovery_cycles = system.machine.clock - before_boot
    system.shutdown()
    return {
        "persist_cycles": int(persist_cycles),
        "recovery_cycles": int(recovery_cycles),
        "checkpoints": int(checkpoints),
        "nvm_line_writes": int(wear["total_line_writes"]),
    }


def score_blueprint_cell(
    blueprint: Dict[str, object], workload: Dict[str, object]
) -> Dict[str, object]:
    """Score one blueprint against one workload spec (cacheable cell)."""
    bp = Blueprint.from_dict(blueprint)
    validate_workload(workload)

    system = HybridSystem(config=bp.machine_config(), persistence=False)
    system.boot()
    kind = workload["kind"]
    if kind == "traffic":
        ops = _serve_traffic(system, workload, bp.tiering)
    elif kind == "image":
        ops = _serve_image(system, workload, bp.tiering)
    else:
        ops = _serve_trace(system, workload, bp.tiering)
    serve_cycles = system.machine.clock
    serve_wear = system.machine.controller.wear_report(top=0)
    promotions = system.stats.get("tiering.promotions")
    demotions = system.stats.get("tiering.demotions")
    system.shutdown()

    probe = _persist_probe(bp)
    return {
        "blueprint": bp.to_dict(),
        "label": bp.label(),
        "ops": int(ops),
        "serve_cycles": int(serve_cycles),
        "persist_cycles": probe["persist_cycles"],
        "recovery_cycles": probe["recovery_cycles"],
        "checkpoints": probe["checkpoints"],
        "nvm_line_writes": (
            int(serve_wear["total_line_writes"]) + probe["nvm_line_writes"]
        ),
        "wear_skew": float(serve_wear["skew"]),
        "promotions": int(promotions),
        "demotions": int(demotions),
    }
