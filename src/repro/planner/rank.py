"""Ranking: turn per-blueprint scores into an ordered recommendation.

The objective is a weighted sum over three normalized axes:

* ``cycles`` — predicted execution cost, ``serve_cycles +
  persist_cycles`` (how fast the configuration runs the forecast load
  *including* its durability overhead);
* ``wear`` — total NVM line writes (endurance budget consumed);
* ``recovery`` — post-crash reboot cost in cycles.

Each axis is normalized by the candidate set's own minimum (clamped to
1 so an all-zero axis divides cleanly), so a score of 1.0 on an axis
means "as good as the best candidate" and weights compare like with
like across axes measured in different units.  Lower is better; ties
break on the blueprint's canonical JSON so the ranking is a pure
function of the scores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.errors import KindleError

#: Metric each objective axis reads from a score row.
AXIS_METRICS = {
    "cycles": "predicted_cycles",
    "wear": "nvm_line_writes",
    "recovery": "recovery_cycles",
}


@dataclass(frozen=True)
class Objective:
    """User-tunable weights over the three ranking axes."""

    cycles: float = 1.0
    wear: float = 0.3
    recovery: float = 0.2

    def __post_init__(self) -> None:
        total = 0.0
        for axis in AXIS_METRICS:
            weight = getattr(self, axis)
            if not weight >= 0:  # also rejects NaN
                raise KindleError(
                    f"objective weight {axis} must be >= 0: {weight!r}"
                )
            total += weight
        if not total > 0:
            raise KindleError("objective weights sum to zero")

    @classmethod
    def from_spec(cls, spec: str) -> "Objective":
        """Parse ``"cycles=1,wear=0.3,recovery=0.2"`` (order-free;
        omitted axes keep their defaults)."""
        weights: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise KindleError(
                    f"objective term {part!r} is not axis=weight"
                )
            axis, _, raw = part.partition("=")
            axis = axis.strip()
            if axis not in AXIS_METRICS:
                raise KindleError(
                    f"unknown objective axis {axis!r}; "
                    f"choose from {tuple(AXIS_METRICS)}"
                )
            if axis in weights:
                raise KindleError(f"objective axis {axis!r} given twice")
            try:
                weights[axis] = float(raw)
            except ValueError:
                raise KindleError(f"bad weight for {axis!r}: {raw!r}")
        return cls(**weights)

    def to_dict(self) -> Dict[str, float]:
        return {axis: getattr(self, axis) for axis in AXIS_METRICS}


def rank_blueprints(
    scored: Sequence[Dict[str, object]], objective: Objective
) -> List[Dict[str, object]]:
    """Order score rows best-first under ``objective``.

    Returns one row per candidate with ``rank`` (1-based), ``score``
    (lower is better, 1.0 = best-on-every-axis), the raw metrics the
    score was built from, and the blueprint itself.
    """
    if not scored:
        raise KindleError("nothing to rank: no scored blueprints")
    enriched = []
    for row in scored:
        metrics = dict(row)
        metrics["predicted_cycles"] = int(row["serve_cycles"]) + int(
            row["persist_cycles"]
        )
        enriched.append(metrics)
    floors = {
        axis: max(1, min(int(row[metric]) for row in enriched))
        for axis, metric in AXIS_METRICS.items()
    }
    weight_sum = sum(objective.to_dict().values())
    ranked = []
    for row in enriched:
        score = (
            sum(
                getattr(objective, axis) * (int(row[metric]) / floors[axis])
                for axis, metric in AXIS_METRICS.items()
            )
            / weight_sum
        )
        ranked.append(
            {
                "label": row["label"],
                "score": round(score, 6),
                "predicted_cycles": row["predicted_cycles"],
                "serve_cycles": row["serve_cycles"],
                "persist_cycles": row["persist_cycles"],
                "recovery_cycles": row["recovery_cycles"],
                "nvm_line_writes": row["nvm_line_writes"],
                "checkpoints": row["checkpoints"],
                "promotions": row["promotions"],
                "demotions": row["demotions"],
                "blueprint": row["blueprint"],
            }
        )
    ranked.sort(
        key=lambda row: (row["score"], json.dumps(row["blueprint"], sort_keys=True))
    )
    for index, row in enumerate(ranked):
        row["rank"] = index + 1
    return ranked
