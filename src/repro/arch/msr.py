"""Model-specific registers.

The SSP prototype "uses Model Specific Registers (MSRs) to communicate
the virtual address range corresponding to NVM allocation to hardware"
and "to pass the base address of SSP cache to translation hardware"
(Section III-B).  The kernel writes these registers; hardware
extensions read them.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import FaultError

#: Low bound (inclusive) of the virtual address range under NVM
#: consistency tracking.
MSR_NVM_RANGE_LO = 0xC000_0100
#: High bound (exclusive) of the tracked range.
MSR_NVM_RANGE_HI = 0xC000_0101
#: Physical base address of the SSP metadata cache region in NVM.
MSR_SSP_CACHE_BASE = 0xC000_0102


class MsrFile:
    """A sparse register file; unwritten MSRs read as zero."""

    def __init__(self) -> None:
        self._regs: Dict[int, int] = {}

    def write(self, msr: int, value: int) -> None:
        if value < 0:
            raise FaultError(f"MSR {msr:#x}: negative value {value}")
        self._regs[msr] = value

    def read(self, msr: int) -> int:
        return self._regs.get(msr, 0)

    def clear(self) -> None:
        """Power cycle: MSRs reset to zero."""
        self._regs.clear()
