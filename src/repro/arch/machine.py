"""The simulated platform: core, TLB, caches, memory, timers, hooks.

:class:`Machine` is the moral equivalent of a configured gem5 system.
It owns the global cycle clock and every piece of hardware state, and
exposes exactly three ways to spend time:

* :meth:`access` — one application memory operation, replayed through
  the TLB, the page-table walker, the cache hierarchy and the hybrid
  memory controller (the high-fidelity path);
* :meth:`bulk_lines` / :meth:`copy_page` — analytic cost accounting for
  kernel bulk work (checkpoint traversals, page copies) that would be
  prohibitively slow to simulate line by line in pure Python;
* :meth:`advance` — raw cycle charge for fixed-cost activities.

Cycles are attributed to the *mode* the machine is in: user mode by
default, or an OS category entered with :meth:`os_region` — this is how
the HSCC study separates hardware from OS migration activity (Fig. 6)
and how Table VI splits page selection from page copy.

A power failure (:meth:`power_fail`) drops every volatile structure:
cache contents, TLB, MSRs, open rows, buffered NVM writes, armed
timers, and DRAM frame contents.  NVM frame contents survive.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, List, Optional, Tuple

from repro.arch.cache import Cache
from repro.arch.hooks import HardwareExtension
from repro.arch.msr import MsrFile
from repro.arch.tlb import Tlb, TlbEntry
from repro.common.config import MachineConfig
from repro.common.errors import FaultError
from repro.common.stats import Stats
from repro.common.timers import TimerWheel
from repro.common.units import CACHE_LINE, PAGE_SIZE, cycles_from_ns
from repro.mem.controller import HybridMemoryController
from repro.mem.hybrid import HybridLayout, MemType
from repro.mem.physmem import PhysicalMemory

#: ``walker(machine, vpn) -> (pfn, writable) | None`` — the hardware
#: page-table walk for the current address space.  Implementations must
#: charge their own physical accesses via :meth:`Machine.phys_line_access`.
Walker = Callable[["Machine", int], Optional[Tuple[int, bool]]]

#: ``fault_handler(vaddr, is_write)`` — OS demand-paging entry point.
FaultHandler = Callable[[int, bool], None]

#: Fixed cost of a clwb instruction issue.
CLWB_ISSUE_CYCLES = 5

#: Lines that fit in one device row (row_size // line size) is computed
#: per channel; pipelining factors model memory-level parallelism for
#: streaming kernel operations.
BULK_READ_PIPELINE = 4
BULK_DRAM_WRITE_PIPELINE = 4
#: NVM drains serialize at the device, so bulk NVM writes get no
#: overlap: this is what makes write-heavy persistence machinery pay.
BULK_NVM_WRITE_PIPELINE = 1

#: CPU work per line moved in a kernel bulk loop (load/store/loop ALU).
BULK_CPU_CYCLES_PER_LINE = 2

#: Cache lines per page (used by the replay fast path).
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE


class Machine:
    """A configured simulated platform (see module docstring)."""

    def __init__(
        self, config: Optional[MachineConfig] = None, stats: Optional[Stats] = None
    ) -> None:
        self.config = config or MachineConfig()
        self.stats = stats or Stats()
        self.layout = HybridLayout(self.config.layout)
        self.physmem = PhysicalMemory(self.layout)
        self.controller = HybridMemoryController(
            self.config.dram, self.config.nvm, self.config.nvm_buffers, self.stats
        )
        self.l1 = Cache(self.config.l1, self.stats)
        self.l2 = Cache(self.config.l2, self.stats)
        self.llc = Cache(self.config.llc, self.stats)
        self.tlb = Tlb(self.config.tlb, self.stats)
        self.tlb.on_evict = self._tlb_evict_hook
        self.msr = MsrFile()
        self.timers = TimerWheel()
        self.extensions: List[HardwareExtension] = []
        #: Persist-boundary hook: ``hook(kind, detail)`` called on every
        #: durable NVM write event — ``"bulk"`` (streamed kernel write,
        #: detail = line count), ``"clwb"`` / ``"wb"`` (one line reaching
        #: the NVM write buffer, detail = line number), ``"fence"``
        #: (persist barrier), ``"label"`` (explicit protocol boundary,
        #: detail = name) and ``"power_fail"``.  Installed by
        #: :class:`repro.faults.CrashInjector`; ``None`` (the default)
        #: costs one attribute test per event and nothing else.
        self.persist_hook = None
        #: Cross-process interference monitor (``None`` = disabled): a
        #: pure observer notified on LLC victim fills, device accesses
        #: and TLB capacity evictions.  It never charges cycles or
        #: mutates hardware state, and unlike a HardwareExtension it
        #: does NOT disable the replay fast path — its hooks sit only
        #: on miss paths, which the fast path never takes, so golden
        #: equivalence is untouched.  See repro.arch.interference.
        self._imon = None
        self.clock = 0
        self.powered = True
        self.asid = 0
        self.walker: Optional[Walker] = None
        self.fault_handler: Optional[FaultHandler] = None
        #: Declared by install_context: the walker is a pure lookup —
        #: side-effect-free and charging no cycles — so the batch
        #: engine's miss-run kernel may invoke it inline on TLB misses.
        #: gemOS walkers simulate charged page-table memory accesses and
        #: therefore stay False (TLB misses fall back to scalar there).
        self._pure_walker = False
        #: Optional pure companion to an impure walker (see
        #: install_context); lets the miss-run kernel check a
        #: translation for free before committing to the charged walk.
        self._walker_peek: Optional[Callable[[int], Optional[Tuple[int, bool]]]] = None
        #: (category, charge, counter key) stack; empty means user mode.
        self._mode_stack: List[Tuple[str, bool, str]] = []
        self._lines_per_row = self.config.dram.row_size // CACHE_LINE
        self._read_clock = lambda: self.clock
        # --- replay hot path ------------------------------------------
        # access() runs hundreds of thousands of times per experiment;
        # everything it needs is pinned here so the common op costs a
        # handful of dict operations instead of a method-call chain.
        # The references stay valid for the machine's lifetime: Stats
        # resets clear the counter dict in place, Cache.drop_all clears
        # the set dicts in place, and TimerWheel.clear empties the heap
        # list in place.
        self._counters = self.stats.counters
        self._fast_path = True
        #: Collapsed precondition for the inline path: fast path on AND
        #: no extensions attached (kept in sync by attach_extension /
        #: set_fast_path so access() tests one flag, not three).
        self._fast_ok = True
        #: ``asid << 40`` of the installed context (TLB key prefix).
        self._asid_base = 0
        self._op_base_cycles = self.config.op_base_cycles
        self._l1_hit_latency = self.config.l1.hit_latency
        self._l2_hit_latency = self.config.l2.hit_latency
        self._llc_hit_latency = self.config.llc.hit_latency
        self._fast_cycles = self._op_base_cycles + self._l1_hit_latency
        self._l1_sets = self.l1._sets  # noqa: SLF001 - hot path
        self._l1_nsets = self.l1.num_sets
        self._l1_hit_key = self.l1._hit_key  # noqa: SLF001 - hot path
        self._l1_miss_key = self.l1._miss_key  # noqa: SLF001 - hot path
        self._timer_heap = self.timers._heap  # noqa: SLF001 - hot path

    # ------------------------------------------------------------------
    # mode and time
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def os_region(self, category: str, charge: bool = True) -> Iterator[None]:
        """Attribute cycles spent inside to ``cycles.os.<category>``.

        With ``charge=False`` the work inside still *happens* (state
        mutates, costs are tallied under ``uncharged.os.<category>``)
        but the clock does not move — this is how the HSCC baseline
        models "hardware migration activities only" (Fig. 6).
        """
        # The counter key is formatted once per region entry instead of
        # once per advance() inside it (bulk loops advance thousands of
        # times per region).
        key = f"cycles.os.{category}" if charge else f"uncharged.os.{category}"
        self._mode_stack.append((category, charge, key))
        try:
            yield
        finally:
            self._mode_stack.pop()

    def advance(self, cycles: int) -> None:
        """Spend ``cycles`` in the current mode."""
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        if not self._mode_stack:
            self.clock += cycles
            self._counters["cycles.user"] += cycles
            return
        _category, charge, key = self._mode_stack[-1]
        if charge:
            self.clock += cycles
            self._counters[key] += cycles
            self._counters["cycles.os.total"] += cycles
        else:
            self._counters[key] += cycles

    @property
    def in_os_mode(self) -> bool:
        return bool(self._mode_stack)

    # ------------------------------------------------------------------
    # hardware extensions
    # ------------------------------------------------------------------

    def attach_extension(self, extension: HardwareExtension) -> None:
        self.extensions.append(extension)
        # Extensions hook stores and LLC misses, so ops must take the
        # general path.
        self._fast_ok = False

    def detach_extension(self, extension: HardwareExtension) -> None:
        """Detach a previously attached extension.

        The inverse of :meth:`attach_extension`: when the last extension
        leaves, the inline fast path is restored (honoring any explicit
        :meth:`set_fast_path` choice, in either call order).  Mutating
        ``machine.extensions`` directly skips this bookkeeping and
        strands the machine on the slow path permanently.

        Raises :class:`ValueError` if the extension is not attached.
        """
        try:
            self.extensions.remove(extension)
        except ValueError:
            raise ValueError(
                f"{type(extension).__name__} is not attached to this machine"
            ) from None
        if not self.extensions:
            self._fast_ok = self._fast_path

    def set_fast_path(self, enabled: bool) -> None:
        """Toggle the inline replay fast path (the golden-equivalence
        test runs the same trace both ways; results must be identical)."""
        self._fast_path = enabled
        self._fast_ok = enabled and not self.extensions

    def _tlb_evict_hook(self, entry: TlbEntry) -> None:
        if self._imon is not None:
            self._imon.note_tlb_evict(entry)
        for ext in self.extensions:
            ext.on_tlb_evict(self, entry)

    def install_interference_monitor(self, monitor) -> None:
        """Attach a cross-process interference monitor (pure observer;
        one at a time — installing replaces any previous monitor)."""
        monitor.bind(self)
        self._imon = monitor

    def clear_interference_monitor(self) -> None:
        self._imon = None

    # ------------------------------------------------------------------
    # physical path
    # ------------------------------------------------------------------

    def phys_line_access(
        self,
        paddr: int,
        is_write: bool,
        entry: Optional[TlbEntry] = None,
    ) -> None:
        """One line-granularity access through the full cache hierarchy."""
        line = paddr // CACHE_LINE
        # Inlined L1 probe (the per-access common case; equivalent to
        # Cache.lookup but without the call overhead).
        cache_set = self._l1_sets[line % self._l1_nsets]
        if line in cache_set:
            cache_set[line] = cache_set.pop(line) or is_write
            self._counters[self._l1_hit_key] += 1
            self.advance(self._l1_hit_latency)
            return
        self._counters[self._l1_miss_key] += 1
        if self.l2.lookup(line, False):
            self.advance(self._l2_hit_latency)
            self._fill_l1(line, dirty=is_write)
            return
        if self.llc.lookup(line, False):
            self.advance(self._llc_hit_latency)
            self._fill_l2(line)
            self._fill_l1(line, dirty=is_write)
            return
        # Demand miss all the way to memory.
        if self.extensions:
            for ext in self.extensions:
                ext.on_llc_miss(self, entry, line, is_write)
        is_nvm = self.layout.mem_type_of_addr(paddr) is MemType.NVM
        latency = self.controller.read(paddr, is_nvm, self.clock)
        if self._imon is not None:
            self._imon.note_device(paddr, is_nvm)
        self.advance(self._llc_hit_latency + latency)
        self._fill_llc(line)
        self._fill_l2(line)
        self._fill_l1(line, dirty=is_write)

    def _writeback(self, line: int, _kind: str = "wb") -> None:
        """Send a dirty victim line to memory."""
        addr = line * CACHE_LINE
        is_nvm = self.layout.mem_type_of_addr(addr) is MemType.NVM
        if is_nvm and self.persist_hook is not None:
            self.persist_hook(_kind, line)
        latency = self.controller.write(addr, is_nvm, self.clock)
        if self._imon is not None:
            self._imon.note_device(addr, is_nvm)
        self.advance(latency)
        self._counters["cache.writebacks"] += 1

    def _fill_l1(self, line: int, dirty: bool) -> None:
        victim = self.l1.fill(line, dirty)
        if victim is not None:
            victim_line, victim_dirty = victim
            if victim_dirty and not self.l2.set_dirty(victim_line):
                # Inclusion was broken by an invalidation below; push
                # the writeback further down.
                if not self.llc.set_dirty(victim_line):
                    self._writeback(victim_line)

    def _fill_l2(self, line: int) -> None:
        victim = self.l2.fill(line, False)
        if victim is not None:
            victim_line, victim_dirty = victim
            victim_dirty = self.l1.invalidate(victim_line) or victim_dirty
            if victim_dirty and not self.llc.set_dirty(victim_line):
                self._writeback(victim_line)

    def _fill_llc(self, line: int) -> None:
        victim = self.llc.fill(line, False)
        if victim is not None:
            victim_line, victim_dirty = victim
            victim_dirty = self.l1.invalidate(victim_line) or victim_dirty
            victim_dirty = self.l2.invalidate(victim_line) or victim_dirty
            if victim_dirty:
                self._writeback(victim_line)
            if self._imon is not None:
                self._imon.note_llc_fill(line, victim_line)
        elif self._imon is not None:
            self._imon.note_llc_fill(line, None)

    def miss_run_view(self) -> dict:
        """Stable structure references for the batch miss-run kernel.

        The kernel (repro.replay.batch) executes LLC/row-buffer/
        controller behaviour inline, so it needs direct handles on the
        live hardware structures.  Every container returned here is
        mutated *in place* by its owner — power cycles clear, never
        replace — so the replayer may cache this view for the machine's
        lifetime.  Per-run scalars (clock, asid, walker, the write
        buffer's drain horizon, the TLB micro-cache) are re-read at
        each run start through the object references included.
        """
        l1_sets, l1_nsets, l1_assoc = self.l1.run_view()
        l2_sets, l2_nsets, l2_assoc = self.l2.run_view()
        llc_sets, llc_nsets, llc_assoc = self.llc.run_view()
        controller = self.controller
        page_writes, page_row_misses, page_shift = controller.run_view()
        return {
            "tlb": self.tlb,
            "tlb_entries": self.tlb._entries,  # noqa: SLF001 - hot path
            "tlb_capacity": self.tlb.config.entries,
            "l1": self.l1,
            "l2": self.l2,
            "llc": self.llc,
            "l1_sets": l1_sets,
            "l1_nsets": l1_nsets,
            "l1_assoc": l1_assoc,
            "l2_sets": l2_sets,
            "l2_nsets": l2_nsets,
            "l2_assoc": l2_assoc,
            "llc_sets": llc_sets,
            "llc_nsets": llc_nsets,
            "llc_assoc": llc_assoc,
            "op_base_cycles": self._op_base_cycles,
            "l1_hit_latency": self._l1_hit_latency,
            "l2_hit_latency": self._l2_hit_latency,
            "llc_hit_latency": self._llc_hit_latency,
            "controller": controller,
            "dram_channel": controller.dram,
            "nvm_channel": controller.nvm,
            "dram_view": controller.dram.run_view(),
            "nvm_view": controller.nvm.run_view(),
            "write_buffer": controller.nvm_write_buffer,
            "buffer_view": controller.nvm_write_buffer.run_view(),
            "page_writes": page_writes,
            "page_row_misses": page_row_misses,
            "page_shift": page_shift,
            "dram_base": self.layout.dram_base,
            "nvm_base": self.layout.nvm_base,
            "mem_end": self.layout.end,
            "counters": self._counters,
            "timer_heap": self._timer_heap,
        }

    def prefetch_line(self, paddr: int) -> bool:
        """Install a line in the LLC off the critical path.

        Used by prefetcher extensions: the fill's device traffic is
        counted (stats) but no core cycles are charged — the demand
        stream continues unstalled.  Returns True if a fill happened.
        """
        try:
            is_nvm = self.layout.mem_type_of_addr(paddr) is MemType.NVM
        except FaultError:
            self.stats.add("prefetch.out_of_range")
            return False
        line = paddr // CACHE_LINE
        if self.llc.contains(line):
            self.stats.add("prefetch.redundant")
            return False
        self.stats.add("prefetch.issued")
        self.stats.add("prefetch.nvm" if is_nvm else "prefetch.dram")
        # The device read and any victim writebacks are off the
        # critical path (time tracked under uncharged.os.prefetch, but
        # the memory traffic itself is counted like any other).
        with self.os_region("prefetch", charge=False):
            self.advance(self.controller.read(paddr, is_nvm, self.clock))
            self._fill_llc(line)
        return True

    def clwb(self, paddr: int) -> bool:
        """Write back (without invalidating) one line if dirty anywhere.

        Returns True if a writeback was issued.  Always costs the
        instruction issue; the memory write is charged only when the
        line was actually dirty.
        """
        line = paddr // CACHE_LINE
        self.advance(CLWB_ISSUE_CYCLES)
        dirty = self.l1.clean(line)
        dirty = self.l2.clean(line) or dirty
        dirty = self.llc.clean(line) or dirty
        if dirty:
            self._writeback(line, _kind="clwb")
            self.stats.add("clwb.writebacks")
        self.stats.add("clwb.issued")
        return dirty

    def persist_barrier(self) -> None:
        """sfence-to-durability: stall until the NVM write buffer drains."""
        if self.persist_hook is not None:
            # Emitted before the drain: a crash here means writes issued
            # since the previous fence never became durable.
            self.persist_hook("fence", None)
        stall = self.controller.persist_barrier(self.clock)
        self.advance(stall)
        self.stats.add("persist_barriers")

    def persist_point(self, label: str) -> None:
        """Declare a named durability boundary in a persistence protocol.

        The checkpoint/recovery machinery calls this between the durable
        NVM write that makes a state transition permanent and the
        in-memory bookkeeping that assumes it happened; a crash injected
        at the point therefore models the transition *not* having
        reached NVM.  Free when no hook is installed.
        """
        if self.persist_hook is not None:
            self.persist_hook("label", label)

    def clwb_virtual(self, vaddr: int, size: int) -> int:
        """clwb every line covering ``[vaddr, vaddr+size)`` (user-space
        persist path: translate, then write back).  Returns lines
        actually written back."""
        if size <= 0:
            raise ValueError("clwb_virtual needs a positive size")
        written = 0
        addr = vaddr
        remaining = size
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE - (addr % PAGE_SIZE))
            entry = self.translate(addr, False)
            first = (addr % PAGE_SIZE) // CACHE_LINE
            last = ((addr % PAGE_SIZE) + chunk - 1) // CACHE_LINE
            page_base = entry.pfn * PAGE_SIZE
            for line_index in range(first, last + 1):
                if self.clwb(page_base + line_index * CACHE_LINE):
                    written += 1
            remaining -= chunk
            addr += chunk
        return written

    def flush_page_lines(self, pfn: int) -> int:
        """clwb every line of a page (HSCC page copy, SSP consolidation).

        Returns the number of lines actually written back.
        """
        base_line = pfn * (PAGE_SIZE // CACHE_LINE)
        written = 0
        for offset in range(PAGE_SIZE // CACHE_LINE):
            if self.clwb((base_line + offset) * CACHE_LINE):
                written += 1
        return written

    def invalidate_page_lines(self, pfn: int) -> None:
        """Drop all cached copies of a page without writeback (teardown)."""
        base_line = pfn * (PAGE_SIZE // CACHE_LINE)
        for offset in range(PAGE_SIZE // CACHE_LINE):
            line = base_line + offset
            self.l1.invalidate(line)
            self.l2.invalidate(line)
            self.llc.invalidate(line)

    # ------------------------------------------------------------------
    # virtual path (the replay CPU)
    # ------------------------------------------------------------------

    def install_context(
        self,
        asid: int,
        walker: Walker,
        fault_handler: Optional[FaultHandler],
        pure_walker: bool = False,
        walker_peek: Optional[Callable[[int], Optional[Tuple[int, bool]]]] = None,
    ) -> None:
        """Point the hardware at a new address space (context switch).

        ``pure_walker=True`` declares that ``walker`` is a *pure
        translation lookup*: it has no side effects, charges no cycles
        and performs no simulated physical accesses (e.g. a premapped
        ``dict.get``).  Only then may the batch-replay miss-run kernel
        walk inline on TLB misses; walkers that simulate page-table
        memory traffic (gemOS) must leave this False so TLB misses take
        the scalar path that charges their walk costs.

        ``walker_peek`` is the impure-walker counterpart: a *pure*
        function of ``vpn`` that returns exactly what ``walker`` would
        return, without any of its side effects (gemOS:
        ``PageTable.peek`` next to ``PageTable.hw_walk``).  With a peek
        installed, the miss-run kernel checks the translation for free
        and — only when it is clean — executes the real charged walk
        inline mid-run, so TLB misses no longer break batched runs;
        faults and protection upgrades still fall back to scalar before
        any walk side effect happens.  The contract is strict: if peek
        and walker ever disagree, replay diverges from scalar.
        """
        self.asid = asid
        self._asid_base = asid << 40
        self.walker = walker
        self.fault_handler = fault_handler
        self._pure_walker = bool(pure_walker)
        self._walker_peek = None if pure_walker else walker_peek

    def _walk_and_fill(self, vaddr: int, is_write: bool) -> TlbEntry:
        if self.walker is None:
            raise FaultError("no address space installed")
        vpn = vaddr // PAGE_SIZE
        translation = self.walker(self, vpn)
        attempts = 0
        while translation is None or (is_write and not translation[1]):
            if self.fault_handler is None:
                raise FaultError(
                    f"unhandled page fault at {vaddr:#x} "
                    f"({'write' if is_write else 'read'})"
                )
            attempts += 1
            if attempts > 2:
                raise FaultError(f"fault handler did not resolve {vaddr:#x}")
            self.fault_handler(vaddr, is_write)
            translation = self.walker(self, vpn)
        pfn, writable = translation
        for ext in self.extensions:
            pfn = ext.remap_pfn(self, vpn, pfn)
        entry = TlbEntry(vpn=vpn, pfn=pfn, writable=writable, asid=self.asid)
        for ext in self.extensions:
            ext.on_tlb_fill(self, entry)
        self.tlb.insert(entry)
        return entry

    def translate(self, vaddr: int, is_write: bool) -> TlbEntry:
        """TLB lookup with hardware walk + demand paging on miss."""
        vpn = vaddr // PAGE_SIZE
        entry = self.tlb.lookup(self.asid, vpn)
        if entry is None:
            entry = self._walk_and_fill(vaddr, is_write)
        elif is_write and not entry.writable:
            # Protection upgrade goes through the OS, then re-walk.
            self.tlb.invalidate(self.asid, vpn)
            entry = self._walk_and_fill(vaddr, is_write)
        return entry

    def access(self, vaddr: int, size: int, is_write: bool) -> None:
        """Replay one application memory operation.

        Splits at page boundaries, translates per page, routes stores
        through extension hooks (SSP shadow routing), then performs
        line-granularity cache accesses.  Fires due timers afterwards.

        The overwhelmingly common op — single line, user mode, no
        extensions, translation in the TLB micro-cache, line resident in
        the L1 — is committed inline: one batched clock advance and four
        counter bumps.  Every step of that inline path commutes with the
        general path's ordering (no clock reads happen before the final
        timer check), so results are bit-identical with the fast path
        disabled (``_fast_path = False``; the golden-equivalence test
        holds the two machines against each other).
        """
        if size <= 0:
            raise ValueError(f"access size must be positive: {size}")
        offset = vaddr % PAGE_SIZE
        if offset % CACHE_LINE + size <= CACHE_LINE:
            if self._fast_ok and not self._mode_stack:
                tlb = self.tlb
                if tlb._mru_key == self._asid_base | (vaddr // PAGE_SIZE):  # noqa: SLF001
                    entry = tlb._mru_entry  # noqa: SLF001 - hot path
                    if entry.writable or not is_write:
                        line = entry.pfn * LINES_PER_PAGE + offset // CACHE_LINE
                        cache_set = self._l1_sets[line % self._l1_nsets]
                        if line in cache_set:
                            cache_set[line] = cache_set.pop(line) or is_write
                            counters = self._counters
                            counters["tlb.hit"] += 1
                            counters[self._l1_hit_key] += 1
                            counters["ops.writes" if is_write else "ops.reads"] += 1
                            cycles = self._fast_cycles
                            self.clock += cycles
                            counters["cycles.user"] += cycles
                            heap = self._timer_heap
                            if heap and heap[0][0] <= self.clock:
                                self.timers.fire_due(self._read_clock)
                            return
            # Single line, but cold somewhere: the full path.
            self.advance(self._op_base_cycles)
            entry = self.translate(vaddr, is_write)
            paddr = entry.pfn * PAGE_SIZE + (offset // CACHE_LINE) * CACHE_LINE
            if is_write and self.extensions:
                for ext in self.extensions:
                    routed = ext.route_store(self, entry, vaddr, paddr // CACHE_LINE)
                    if routed is not None:
                        paddr = routed * CACHE_LINE
                        break
            self.phys_line_access(paddr, is_write, entry)
            self._counters["ops.writes" if is_write else "ops.reads"] += 1
        else:
            self.advance(self._op_base_cycles)
            remaining = size
            addr = vaddr
            while remaining > 0:
                chunk = min(remaining, PAGE_SIZE - (addr % PAGE_SIZE))
                entry = self.translate(addr, is_write)
                page_base = entry.pfn * PAGE_SIZE
                first_line = (addr % PAGE_SIZE) // CACHE_LINE
                last_line = ((addr % PAGE_SIZE) + chunk - 1) // CACHE_LINE
                for line_index in range(first_line, last_line + 1):
                    paddr = page_base + line_index * CACHE_LINE
                    if is_write:
                        for ext in self.extensions:
                            routed = ext.route_store(
                                self, entry, addr, paddr // CACHE_LINE
                            )
                            if routed is not None:
                                paddr = routed * CACHE_LINE
                                break
                    self.phys_line_access(paddr, is_write, entry)
                self._counters["ops.writes" if is_write else "ops.reads"] += 1
                remaining -= chunk
                addr += chunk
        # Inline deadline peek: only enter the timer machinery when a
        # timer is actually due (this runs once per replayed op).
        heap = self._timer_heap
        if heap and heap[0][0] <= self.clock:
            self.timers.fire_due(self._read_clock)

    def load(self, vaddr: int, size: int) -> bytes:
        """Replay a load and return the actual bytes (value fidelity).

        The byte move is split per translated page: virtually contiguous
        pages are *not* physically contiguous in general, so reading
        ``size`` bytes from the first page's frame would pull bytes from
        whatever frame happens to sit next to it.
        """
        chunks = self._span_chunks(vaddr, size, is_write=False)
        self.access(vaddr, size, is_write=False)
        return b"".join(
            self.physmem.read(paddr, chunk) for paddr, chunk in chunks
        )

    def store(self, vaddr: int, data: bytes) -> None:
        """Replay a store carrying real bytes (value fidelity).

        Data pages follow the paper's own assumption (Section II-A):
        heap/stack data in NVM is "consistently maintained ... using
        some existing memory consistency techniques", so values land in
        the physical store immediately; timing still pays the full
        cache/memory path.

        Like :meth:`load`, the byte move is split at every page
        boundary and each chunk goes through its own translation —
        writing ``len(data)`` physically contiguous bytes would corrupt
        the frame physically adjacent to the first page.
        """
        if not data:
            raise ValueError("store needs at least one byte")
        chunks = self._span_chunks(vaddr, len(data), is_write=True)
        self.access(vaddr, len(data), is_write=True)
        pos = 0
        for paddr, chunk in chunks:
            self.physmem.write(paddr, data[pos : pos + chunk])
            pos += chunk

    def _span_chunks(
        self, vaddr: int, size: int, is_write: bool
    ) -> List[Tuple[int, int]]:
        """Translate ``[vaddr, vaddr+size)`` page by page.

        Returns ``(paddr, nbytes)`` per page touched.  Translation
        happens *before* the timed replay (mirroring the hardware, which
        resolves the mapping before the bytes move), so a timer firing
        at the end of :meth:`access` cannot retarget the byte move.
        """
        chunks: List[Tuple[int, int]] = []
        addr = vaddr
        remaining = size
        while remaining > 0:
            offset = addr % PAGE_SIZE
            chunk = min(remaining, PAGE_SIZE - offset)
            entry = self.translate(addr, is_write)
            chunks.append((entry.pfn * PAGE_SIZE + offset, chunk))
            remaining -= chunk
            addr += chunk
        return chunks

    # ------------------------------------------------------------------
    # analytic bulk path (kernel loops)
    # ------------------------------------------------------------------

    def _bulk_cost(
        self, n_lines: int, mem_type: MemType, is_write: bool
    ) -> int:
        timing = self.config.nvm if mem_type is MemType.NVM else self.config.dram
        if is_write:
            hit = cycles_from_ns(timing.write_row_hit_ns)
            miss = cycles_from_ns(timing.write_row_miss_ns)
            pipeline = (
                BULK_NVM_WRITE_PIPELINE
                if mem_type is MemType.NVM
                else BULK_DRAM_WRITE_PIPELINE
            )
        else:
            hit = cycles_from_ns(timing.read_row_hit_ns)
            miss = cycles_from_ns(timing.read_row_miss_ns)
            pipeline = BULK_READ_PIPELINE
        rows = (n_lines + self._lines_per_row - 1) // self._lines_per_row
        device = n_lines * hit + rows * (miss - hit)
        return device // pipeline + n_lines * BULK_CPU_CYCLES_PER_LINE

    def bulk_lines(self, n_lines: int, mem_type: MemType, is_write: bool) -> None:
        """Charge a streaming kernel loop over ``n_lines`` cache lines.

        Analytic fast path: per-line device cost with row-buffer
        amortization and a memory-level-parallelism factor (reads
        overlap; NVM writes serialize behind the write buffer drain).
        """
        if n_lines < 0:
            raise ValueError(f"negative line count {n_lines}")
        if n_lines == 0:
            return
        if (
            is_write
            and mem_type is MemType.NVM
            and self.persist_hook is not None
        ):
            # One durable-write event per streamed burst, emitted before
            # the burst: a crash at this point means none of it landed.
            self.persist_hook("bulk", n_lines)
        self.advance(self._bulk_cost(n_lines, mem_type, is_write))
        kind = "write" if is_write else "read"
        self.stats.add(f"bulk.{mem_type.value}.{kind}_lines", n_lines)

    def copy_page(self, src_pfn: int, dst_pfn: int, flush_src: bool = True) -> None:
        """Kernel page copy: optional clwb of the source, stream read +
        stream write, and the actual byte move."""
        lines = PAGE_SIZE // CACHE_LINE
        src_type = self.layout.mem_type_of_pfn(src_pfn)
        dst_type = self.layout.mem_type_of_pfn(dst_pfn)
        if flush_src:
            self.flush_page_lines(src_pfn)
            self.persist_barrier()
        self.bulk_lines(lines, src_type, is_write=False)
        self.bulk_lines(lines, dst_type, is_write=True)
        self.physmem.copy_page(src_pfn, dst_pfn)
        self.stats.add("pages.copied")

    # ------------------------------------------------------------------
    # power
    # ------------------------------------------------------------------

    def power_fail(self) -> None:
        """Drop every volatile structure; NVM frame contents survive."""
        if self.persist_hook is not None:
            # Fault models (torn writes, bit rot) act at the instant the
            # power drops, before volatile state is discarded.
            self.persist_hook("power_fail", None)
        self.l1.drop_all()
        self.l2.drop_all()
        self.llc.drop_all()
        self.tlb.flush()
        self.msr.clear()
        self.controller.power_cycle()
        self.physmem.power_fail()
        self.timers.clear()
        if self._imon is not None:
            self._imon.power_cycle()
        for ext in self.extensions:
            ext.on_power_cycle(self)
        self.walker = None
        self.fault_handler = None
        self._pure_walker = False
        self._walker_peek = None
        self.asid = 0
        self._asid_base = 0
        self.powered = False
        self.stats.add("power.failures")

    def power_on(self) -> None:
        """Bring the platform back up (clock keeps running monotonically)."""
        self.powered = True
        self.stats.add("power.boots")
