"""Hardware prefetchers as machine extensions.

Hybrid-memory systems lean harder on prefetching than DRAM-only ones:
an LLC miss that lands in PCM costs ~3x a DRAM miss, so hiding
sequential/strided misses is disproportionately valuable.  Two classic
designs are provided, attached through the same hook bus the SSP/HSCC
prototypes use:

* :class:`NextLinePrefetcher` — on every LLC miss, fetch the next
  ``degree`` lines;
* :class:`StridePrefetcher` — per-page stride detection: after two
  misses at the same delta, fetch ``degree`` lines ahead along it.

Prefetches fill the LLC only (not L1/L2) and are modeled off the
critical path: the demand access that triggered them pays its own
latency, the prefetched fills are accounted (``prefetch.*`` stats,
device traffic) but do not stall the core.  Bandwidth contention
between prefetch and demand streams is not modeled.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.arch.tlb import TlbEntry
from repro.common.errors import ConfigError
from repro.common.units import CACHE_LINE, PAGE_SIZE

#: Cache lines per page — prefetch state is keyed by page.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE


class NextLinePrefetcher(HardwareExtension):
    """Fetch the ``degree`` sequentially-next lines on every LLC miss."""

    def __init__(self, degree: int = 2) -> None:
        if degree < 1:
            raise ConfigError("prefetch degree must be >= 1")
        self.degree = degree

    def on_llc_miss(
        self,
        machine: Machine,
        entry: Optional[TlbEntry],
        paddr_line: int,
        is_write: bool,
    ) -> None:
        for ahead in range(1, self.degree + 1):
            machine.prefetch_line((paddr_line + ahead) * CACHE_LINE)


class StridePrefetcher(HardwareExtension):
    """Per-page stride detector (classic reference-prediction table)."""

    def __init__(self, degree: int = 2, table_entries: int = 256) -> None:
        if degree < 1 or table_entries < 1:
            raise ConfigError("invalid stride prefetcher configuration")
        self.degree = degree
        self.table_entries = table_entries
        #: page -> (last_line, stride, confirmed)
        self._table: Dict[int, Tuple[int, int, bool]] = {}

    def on_llc_miss(
        self,
        machine: Machine,
        entry: Optional[TlbEntry],
        paddr_line: int,
        is_write: bool,
    ) -> None:
        page = paddr_line // LINES_PER_PAGE
        state = self._table.get(page)
        if state is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[page] = (paddr_line, 0, False)
            return
        last_line, stride, confirmed = state
        delta = paddr_line - last_line
        if delta == 0:
            return
        if delta == stride:
            self._table[page] = (paddr_line, stride, True)
            for ahead in range(1, self.degree + 1):
                machine.prefetch_line(
                    (paddr_line + ahead * stride) * CACHE_LINE
                )
        else:
            self._table[page] = (paddr_line, delta, False)

    def on_power_cycle(self, machine: Machine) -> None:
        self._table.clear()
