"""Data TLB with extension fields for the SSP and HSCC prototypes.

Kindle extends the TLB in gem5: SSP adds a supplementary physical page
and per-line ``updated``/``current`` bitmaps per entry, HSCC adds a page
access count.  :class:`TlbEntry` carries those fields directly; the base
translation machinery ignores them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.config import TlbConfig
from repro.common.stats import Stats


@dataclass
class TlbEntry:
    """One TLB translation plus prototype extension fields."""

    vpn: int
    pfn: int
    writable: bool = True
    #: SSP: pfn of the shadow (supplementary) physical page.
    shadow_pfn: Optional[int] = None
    #: SSP: bitmap of lines written since the last consistency interval.
    updated_bitmap: int = 0
    #: SSP: bitmap selecting which physical page holds the latest data
    #: per line (0 -> primary, 1 -> shadow).
    current_bitmap: int = 0
    #: HSCC: page access count, incremented on LLC miss.
    access_count: int = 0
    #: HSCC: whether the access count was already written to the PTE in
    #: the current migration interval.
    count_synced: bool = False
    #: Process address-space identifier the entry belongs to.
    asid: int = 0
    ext: Dict[str, int] = field(default_factory=dict)


class Tlb:
    """Fully-associative LRU TLB (64 entries by default)."""

    def __init__(self, config: TlbConfig, stats: Stats) -> None:
        self.config = config
        self.stats = stats
        self._entries: Dict[int, TlbEntry] = {}
        #: Called with the victim entry on every capacity eviction; the
        #: machine routes this to hardware-extension hooks.
        self.on_evict: Optional[Callable[[TlbEntry], None]] = None
        self._counters = stats.counters
        # Translation micro-cache: the last key/entry touched.  The
        # cached key is always the most-recently-used (hence last) key
        # in the LRU dict, so serving it without the pop/reinsert
        # refresh is *exactly* equivalent — the refresh of an MRU key is
        # a no-op.  Every mutation that could break that invariant
        # (insert, invalidate, flush) updates or clears it.
        self._mru_key: Optional[int] = None
        self._mru_entry: Optional[TlbEntry] = None

    @staticmethod
    def _key(asid: int, vpn: int) -> int:
        return (asid << 40) | vpn

    def lookup(self, asid: int, vpn: int) -> Optional[TlbEntry]:
        """Probe; refreshes LRU on hit."""
        key = (asid << 40) | vpn
        if key == self._mru_key:
            self._counters["tlb.hit"] += 1
            return self._mru_entry
        entry = self._entries.get(key)
        if entry is None:
            self._counters["tlb.miss"] += 1
            return None
        self._entries[key] = self._entries.pop(key)
        self._mru_key = key
        self._mru_entry = entry
        self._counters["tlb.hit"] += 1
        return entry

    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Install an entry; returns the evicted victim, if any."""
        key = self._key(entry.asid, entry.vpn)
        victim: Optional[TlbEntry] = None
        if key not in self._entries and len(self._entries) >= self.config.entries:
            victim_key = next(iter(self._entries))
            victim = self._entries.pop(victim_key)
            if victim_key == self._mru_key:
                self._mru_key = None
                self._mru_entry = None
            self.stats.add("tlb.evictions")
            if self.on_evict is not None:
                self.on_evict(victim)
        self._entries.pop(key, None)
        self._entries[key] = entry
        self._mru_key = key
        self._mru_entry = entry
        return victim

    def touch_run(self, keys) -> None:
        """Commit a batch of guaranteed-hit lookups (batch replay).

        ``keys`` are the *unique* translation keys touched by a run of
        accesses, ordered by each key's **last** access.  Reproduces
        the scalar lookup sequence: every touched entry is refreshed to
        the MRU end in last-access order (refreshing an already-MRU key
        is a no-op, so this matches the micro-cache short-circuit too),
        and the micro-cache points at the run's final translation.
        Callers must guarantee residency and bump hit counters.
        """
        entries = self._entries
        for key in keys:
            entries[key] = entries.pop(key)
        last = keys[-1]
        self._mru_key = last
        self._mru_entry = entries[last]

    def sync_mru(self, key: int) -> None:
        """Re-point the micro-cache after a batched miss run.

        The batch kernel maintains the LRU dict directly (per-op
        refresh/insert/evict, exactly as the scalar sequence would) but
        leaves the micro-cache alone until commit; the run's final
        translation is by construction the MRU (last) entry, which is
        the same state the scalar path's last lookup/insert would have
        left behind.  ``key`` must be resident.
        """
        self._mru_key = key
        self._mru_entry = self._entries[key]

    def invalidate(self, asid: int, vpn: int) -> Optional[TlbEntry]:
        """Drop one translation (e.g. after munmap or HSCC migration).

        Unlike capacity evictions, explicit invalidations do not fire
        the eviction hook: the OS initiated them and handles any
        metadata writeback itself.
        """
        key = self._key(asid, vpn)
        if key == self._mru_key:
            self._mru_key = None
            self._mru_entry = None
        return self._entries.pop(key, None)

    def invalidate_asid(self, asid: int) -> List[TlbEntry]:
        """Drop all translations of one address space (context teardown)."""
        self._mru_key = None
        self._mru_entry = None
        doomed = [k for k, e in self._entries.items() if e.asid == asid]
        return [self._entries.pop(k) for k in doomed]

    def flush(self) -> List[TlbEntry]:
        """Drop everything (full TLB shootdown or power cycle)."""
        self._mru_key = None
        self._mru_entry = None
        victims = list(self._entries.values())
        self._entries.clear()
        return victims

    def entries(self) -> List[TlbEntry]:
        """Resident entries, LRU-oldest first."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
