"""Set-associative write-back cache with true-LRU replacement.

Lines are identified by their global line number (physical address
divided by the 64-byte line size).  Each set is a dict mapping line
number to a dirty flag; Python dicts preserve insertion order, so LRU
is maintained by delete-and-reinsert on every touch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import CacheConfig
from repro.common.stats import Stats


class Cache:
    """One cache level."""

    def __init__(self, config: CacheConfig, stats: Stats) -> None:
        self.config = config
        self.stats = stats
        self.name = config.name
        self.assoc = config.assoc
        self.num_sets = config.num_sets
        self._sets: List[Dict[int, bool]] = [{} for _ in range(self.num_sets)]
        # Stat keys are precomputed and bumped directly on the counter
        # mapping: lookup() runs once per line per cache level, so
        # per-probe f-string formatting dominated the replay hot path.
        lower = self.name.lower()
        self._hit_key = f"{lower}.hit"
        self._miss_key = f"{lower}.miss"
        self._evictions_key = f"{lower}.evictions"
        self._counters = stats.counters

    def _set_for(self, line: int) -> Dict[int, bool]:
        return self._sets[line % self.num_sets]

    def lookup(self, line: int, is_write: bool) -> bool:
        """Probe for ``line``; on hit, refresh LRU and merge dirty bit."""
        cache_set = self._sets[line % self.num_sets]
        if line not in cache_set:
            self._counters[self._miss_key] += 1
            return False
        cache_set[line] = cache_set.pop(line) or is_write
        self._counters[self._hit_key] += 1
        return True

    def contains(self, line: int) -> bool:
        """Probe without touching LRU or stats (snoop)."""
        return line in self._set_for(line)

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install ``line``; return the evicted ``(line, dirty)`` victim.

        If the line is already present its dirty bit is merged and no
        victim is produced.
        """
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = cache_set.pop(line) or dirty
            return None
        victim: Optional[Tuple[int, bool]] = None
        if len(cache_set) >= self.assoc:
            victim_line = next(iter(cache_set))
            victim = (victim_line, cache_set.pop(victim_line))
            self._counters[self._evictions_key] += 1
        cache_set[line] = dirty
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns its dirty bit (False if absent)."""
        cache_set = self._set_for(line)
        return cache_set.pop(line, False)

    def clean(self, line: int) -> bool:
        """Clear the dirty bit of ``line`` keeping it resident (clwb).

        Returns True if the line was present and dirty.
        """
        cache_set = self._set_for(line)
        if cache_set.get(line):
            cache_set[line] = False
            return True
        return False

    def set_dirty(self, line: int) -> bool:
        """Mark a resident line dirty (writeback landing from above)."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = True
            return True
        return False

    def touch_run(self, lines, wrote) -> None:
        """Commit a batch of guaranteed-hit touches (batch replay).

        ``lines`` are the *unique* line numbers touched by a run of
        accesses, ordered by each line's **last** access in the run;
        ``wrote`` flags whether any access in the run wrote that line.
        This reproduces the scalar pop/reinsert sequence exactly:
        untouched lines keep their relative LRU order, touched lines
        end up behind them in last-access order, and dirty bits merge
        monotonically.  Callers must guarantee every line is resident
        and bump hit counters themselves.
        """
        sets = self._sets
        nsets = self.num_sets
        for line, is_write in zip(lines, wrote):
            cache_set = sets[line % nsets]
            cache_set[line] = cache_set.pop(line) or is_write

    def run_view(self):
        """Live set structure + geometry for the batched miss-run
        kernel (repro.replay.batch): ``(sets, num_sets, assoc)``.

        The list and its per-set dicts are the real objects —
        :meth:`drop_all` clears them in place, so a cached view stays
        valid across power cycles; the kernel performs the same
        pop/reinsert, fill and victim-eviction mutations the scalar
        path would, deferring only the counter bumps to
        :meth:`commit_run`.
        """
        return self._sets, self.num_sets, self.assoc

    def commit_run(self, hits: int, misses: int, evictions: int) -> None:
        """Bulk counter adds for a committed batched miss run.

        Each add is guarded: a zero add would create counter keys that
        a scalar replay of the same ops never creates, breaking the
        byte-identical stats dump the batch engine is gated on.
        """
        counters = self._counters
        if hits:
            counters[self._hit_key] += hits
        if misses:
            counters[self._miss_key] += misses
        if evictions:
            counters[self._evictions_key] += evictions

    def drop_all(self) -> None:
        """Power cycle: all contents (including dirty lines) are lost."""
        for cache_set in self._sets:
            cache_set.clear()

    def dirty_lines(self) -> List[int]:
        """All resident dirty line numbers (flush machinery)."""
        return [
            line
            for cache_set in self._sets
            for line, dirty in cache_set.items()
            if dirty
        ]

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
