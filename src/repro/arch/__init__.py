"""Architecture substrate (the gem5 analog).

A cycle-accounting model of the platform in Section III of the paper:
an in-order 3 GHz core replaying memory operations through a 64-entry
data TLB, a three-level write-back inclusive cache hierarchy (32 KB L1,
512 KB L2, 2 MB LLC) and the hybrid DRAM/NVM memory controller.

Hardware extensions (the SSP and HSCC prototypes) attach through the
:class:`HardwareExtension` hook bus: TLB fill/evict, store interception
(SSP shadow routing), LLC-miss notification (HSCC access counting) and
pfn remapping (HSCC DRAM cache lookup) — the same places Kindle's gem5
patches hook the page-table walker, TLB and cache controller.
"""

from repro.arch.cache import Cache
from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.arch.msr import MsrFile, MSR_NVM_RANGE_LO, MSR_NVM_RANGE_HI, MSR_SSP_CACHE_BASE
from repro.arch.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.arch.tlb import Tlb, TlbEntry

__all__ = [
    "Cache",
    "HardwareExtension",
    "Machine",
    "MsrFile",
    "MSR_NVM_RANGE_LO",
    "MSR_NVM_RANGE_HI",
    "MSR_SSP_CACHE_BASE",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "Tlb",
    "TlbEntry",
]
