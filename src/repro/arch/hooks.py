"""Hardware-extension hook bus.

Kindle's prototypes patch gem5 in three places: the page-table walker /
TLB (fill, evict), the cache controller (store routing, LLC-miss
notification) and address translation (NVM-to-DRAM remapping).  A
:class:`HardwareExtension` subclass overrides the corresponding hooks;
the machine invokes every registered extension in registration order.

All hooks are no-ops by default so extensions override only what they
need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arch.machine import Machine
    from repro.arch.tlb import TlbEntry


class HardwareExtension:
    """Base class for hardware prototypes (SSP, HSCC)."""

    def on_tlb_fill(self, machine: "Machine", entry: "TlbEntry") -> None:
        """A translation was just installed (page-table walker patch)."""

    def on_tlb_evict(self, machine: "Machine", entry: "TlbEntry") -> None:
        """A translation was evicted for capacity (TLB patch)."""

    def remap_pfn(self, machine: "Machine", vpn: int, pfn: int) -> int:
        """Translate-time pfn override (HSCC DRAM-cache lookup table)."""
        return pfn

    def route_store(
        self,
        machine: "Machine",
        entry: "TlbEntry",
        vaddr: int,
        paddr_line: int,
    ) -> Optional[int]:
        """Redirect a store's target line (SSP shadow routing).

        Return the replacement physical line number, or ``None`` to
        leave the store alone.
        """
        return None

    def on_llc_miss(
        self,
        machine: "Machine",
        entry: Optional["TlbEntry"],
        paddr_line: int,
        is_write: bool,
    ) -> None:
        """A demand access missed the LLC (cache controller patch)."""

    def on_power_cycle(self, machine: "Machine") -> None:
        """The platform lost power; drop any volatile extension state."""
