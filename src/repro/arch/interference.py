"""Cross-process interference attribution (who evicted whom).

The paper measures OS-architecture interplay for one process at a time;
multi-process traffic runs raise questions it never answers: whose
lines get evicted from the shared LLC, who forces row-buffer switches
on the memory channels, and whose TLB entries are displaced.  The
:class:`InterferenceMonitor` answers them with per-process attribution
counters in the ordinary stats registry:

``interference.llc.self`` / ``interference.llc.cross``
    LLC capacity evictions where the evicting process (the machine's
    current ``asid``) equals / differs from the victim line's last
    owner; cross evictions additionally tick a per-pair counter
    ``interference.llc.p<evictor>_evicted_p<victim>``.
``interference.tlb.self`` / ``.cross`` / per-pair
    the same attribution for TLB capacity evictions (the victim's
    owner is the entry's own asid — TLB entries are tagged).
``interference.row.{dram,nvm}.self`` / ``.cross`` / per-pair
    row-buffer switches blamed on the last process to use that bank:
    when a device access misses the open row, the previous bank user
    forced the switch (``interference.row.<chan>.p<current>_evicted_p<prev>``
    reads "current's access row-missed because prev owned the bank").

The monitor is a **pure observer**: it never charges cycles, never
touches cache/TLB/device state, and is *not* a
:class:`~repro.arch.hooks.HardwareExtension` (attaching one disables
the replay fast path; the monitor must not).  Its hooks sit only on
miss paths — LLC victim fills, device accesses, TLB capacity evictions
— which the batch engine's vectorized fast runs never execute (those
are TLB-resident L1 hits by construction).  The miss-run kernel *does*
execute them batched: with a monitor installed it invokes the same
hooks at the same points in the same order as the scalar path, with
the channel's ``last_row_hit`` already set when ``note_device`` reads
it, so batch and scalar replays produce identical interference
counters (the golden-equivalence suite compares them per pair key).

Known approximation: LLC line ownership is recorded at fill time and
dropped at eviction; lines invalidated behind the monitor's back (page
teardown) leave a stale owner that the next eviction of that line
blames.  Traffic runs never invalidate mapped lines, and a power
failure clears the owner maps (:meth:`power_cycle`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class InterferenceMonitor:
    """Attribution observer; install with
    :meth:`repro.arch.machine.Machine.install_interference_monitor`."""

    def __init__(self) -> None:
        self.machine = None
        self._counters: Optional[Dict[str, int]] = None
        #: LLC line -> pid that filled it.
        self._llc_owner: Dict[int, int] = {}
        #: (is_nvm, bank) -> pid that last touched the bank.
        self._bank_owner: Dict[Tuple[bool, int], int] = {}
        #: (kind, evictor, victim) -> formatted stats key (pair keys
        #: are dynamic, so they are formatted once and cached instead
        #: of precomputed like the static ``*_key`` attributes).
        self._pair_keys: Dict[Tuple[str, int, int], str] = {}

    def bind(self, machine) -> None:
        """Wire the monitor to ``machine`` (called by the installer)."""
        self.machine = machine
        self._counters = machine.stats.counters
        self._llc_self_key = "interference.llc.self"
        self._llc_cross_key = "interference.llc.cross"
        self._tlb_self_key = "interference.tlb.self"
        self._tlb_cross_key = "interference.tlb.cross"
        self._row_dram_self_key = "interference.row.dram.self"
        self._row_dram_cross_key = "interference.row.dram.cross"
        self._row_nvm_self_key = "interference.row.nvm.self"
        self._row_nvm_cross_key = "interference.row.nvm.cross"
        dram = machine.controller.dram
        nvm = machine.controller.nvm
        self._dram_channel = dram
        self._nvm_channel = nvm
        self._dram_row_size = dram._row_size  # noqa: SLF001 - geometry
        self._nvm_row_size = nvm._row_size  # noqa: SLF001 - geometry
        self._dram_banks = dram.banks
        self._nvm_banks = nvm.banks

    def _pair_key(self, kind: str, evictor: int, victim: int) -> str:
        key = self._pair_keys.get((kind, evictor, victim))
        if key is None:
            key = f"interference.{kind}.p{evictor}_evicted_p{victim}"
            self._pair_keys[(kind, evictor, victim)] = key
        return key

    # ------------------------------------------------------------------
    # machine hooks (miss paths only)
    # ------------------------------------------------------------------

    def note_llc_fill(self, line: int, victim_line: Optional[int]) -> None:
        """An LLC fill happened; ``victim_line`` was evicted (or None)."""
        pid = self.machine.asid
        owners = self._llc_owner
        if victim_line is not None:
            previous = owners.pop(victim_line, None)
            if previous is not None:
                counters = self._counters
                if previous == pid:
                    counters[self._llc_self_key] += 1
                else:
                    counters[self._llc_cross_key] += 1
                    pair_key = self._pair_key("llc", pid, previous)
                    counters[pair_key] += 1
        owners[line] = pid

    def note_device(self, addr: int, is_nvm: bool) -> None:
        """A device read/write completed; blame row switches."""
        pid = self.machine.asid
        if is_nvm:
            channel = self._nvm_channel
            bank = (addr // self._nvm_row_size) % self._nvm_banks
            kind = "row.nvm"
            self_key = self._row_nvm_self_key
            cross_key = self._row_nvm_cross_key
        else:
            channel = self._dram_channel
            bank = (addr // self._dram_row_size) % self._dram_banks
            kind = "row.dram"
            self_key = self._row_dram_self_key
            cross_key = self._row_dram_cross_key
        owners = self._bank_owner
        previous = owners.get((is_nvm, bank))
        owners[(is_nvm, bank)] = pid
        if channel.last_row_hit or previous is None:
            return
        counters = self._counters
        if previous == pid:
            counters[self_key] += 1
        else:
            counters[cross_key] += 1
            pair_key = self._pair_key(kind, pid, previous)
            counters[pair_key] += 1

    def note_tlb_evict(self, entry) -> None:
        """A TLB capacity eviction displaced ``entry``."""
        pid = self.machine.asid
        victim = entry.asid
        counters = self._counters
        if victim == pid:
            counters[self._tlb_self_key] += 1
        else:
            counters[self._tlb_cross_key] += 1
            pair_key = self._pair_key("tlb", pid, victim)
            counters[pair_key] += 1

    def power_cycle(self) -> None:
        """Power failure: every tracked volatile structure emptied, so
        ownership history is gone too (the counters survive in stats,
        like every other counter)."""
        self._llc_owner.clear()
        self._bank_owner.clear()


def interference_report(stats) -> Dict[str, object]:
    """Structure the ``interference.*`` counters for a JSON report.

    Returns ``{"llc": {...}, "tlb": {...}, "row": {"dram": ..., "nvm":
    ...}}`` where each leaf carries ``self``, ``cross`` and a ``pairs``
    dict of per-(evictor, victim) counts.
    """

    def leaf() -> Dict[str, object]:
        return {"self": 0, "cross": 0, "pairs": {}}

    report: Dict[str, object] = {
        "llc": leaf(),
        "tlb": leaf(),
        "row": {"dram": leaf(), "nvm": leaf()},
    }
    for name, value in sorted(stats.with_prefix("interference.").items()):
        parts = name.split(".")[1:]  # drop "interference"
        if parts[0] == "row":
            section = report["row"][parts[1]]
            tail = parts[2]
        else:
            section = report[parts[0]]
            tail = parts[1]
        if tail in ("self", "cross"):
            section[tail] = value
        else:
            section["pairs"][tail] = value
    return report
