"""Crash recovery (Section II-A).

"The recovery procedure scans through the list of saved states and
creates a new execution context for each saved state.  For each
process, we copy the latest consistent copy of the context and recreate
the virtual memory layout as part of the recovery procedure.  Finally,
the recovery process sets up the page table mapping for the virtual
address space and marks the process state as ready for execution."

Recovery also replays the reclamation-epoch park list — resurrecting
checkpointed translations that post-checkpoint unmaps tore down — and
reconciles the persistent NVM frame-allocator metadata against the
frames actually referenced by recovered contexts, releasing frames
whose mappings never became consistent (allocated after the last
checkpoint of a crashed process).  Recovery completion retires the
reclamation epoch (see :mod:`repro.persist.reclaim`).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.common.errors import RecoveryError
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process, ProcessState
from repro.gemos.vma import AddressSpace
from repro.mem.hybrid import MemType
from repro.persist.reclaim import EpochFrameReclaimer, reconcile_nvm_allocator
from repro.persist.savedstate import SavedState
from repro.persist.schemes import PageTableScheme

#: Kernel cycles to locate and validate one saved state at boot.
SCAN_SAVED_STATE_CYCLES = 500


def recover(kernel: Kernel, scheme: PageTableScheme) -> List[Process]:
    """Recreate every checkpointed process from NVM saved states.

    Returns the recovered processes (possibly empty on first boot).
    Processes that never completed a checkpoint have no consistent
    context and are not recovered; their NVM frames are reclaimed.
    """
    machine = kernel.machine
    recovered: List[Process] = []
    referenced_nvm_frames: Set[int] = set()
    reclaimer: Optional[EpochFrameReclaimer] = (
        kernel.frame_release
        if isinstance(kernel.frame_release, EpochFrameReclaimer)
        else None
    )
    with machine.os_region("recovery"):
        for key, obj in list(kernel.nvm_store.keys_with_prefix("saved_state:")):
            machine.advance(SCAN_SAVED_STATE_CYCLES)
            if not isinstance(obj, SavedState):
                raise RecoveryError(f"corrupt saved state at {key}")
            saved = obj
            dropped = saved.redo.discard_unapplied()
            machine.stats.add("recovery.discarded_records", dropped)
            if saved.discard_staging():
                # The crash interrupted a checkpoint between the v2p
                # refresh and the commit flip; the staged list was never
                # promoted and must not leak into the next checkpoint.
                machine.stats.add("recovery.discarded_v2p_staging")
            consistent = saved.consistent
            if consistent is None or not consistent.valid:
                # Never checkpointed: the process cannot be recovered.
                # Drop the page-table root too (by its conventional key:
                # ``pt_root_key`` is unset when the table was created
                # before the saved state existed) — a stale table object
                # left behind would be reattached if the pid is reused,
                # naming frames the reconcile below reclaims.
                kernel.nvm_store.remove(key)
                kernel.nvm_store.remove(
                    saved.pt_root_key or f"pt_root:{saved.pid:08d}"
                )
                machine.stats.add("recovery.unrecoverable")
                continue
            address_space = AddressSpace.from_snapshot(consistent.vmas)
            process = kernel.create_process(
                saved.name,
                persistent=True,
                pid=saved.pid,
                address_space=address_space,
            )
            process.registers = dict(consistent.registers)
            scheme.recover_page_table(process, saved)
            if reclaimer is not None:
                # Resurrect committed translations whose PTEs were
                # cleared by post-checkpoint unmaps/remaps.
                reclaimer.resurrect(process, saved)
            assert process.page_table is not None
            for _vpn, pte in process.page_table.iter_leaves():
                if machine.layout.mem_type_of_pfn(pte.pfn) is MemType.NVM:
                    referenced_nvm_frames.add(pte.pfn)
            if reclaimer is not None:
                reclaimer.refresh_snapshot(process)
            process.state = ProcessState.READY
            recovered.append(process)
        reconcile_nvm_allocator(kernel, referenced_nvm_frames, reclaimer)
        if reclaimer is not None:
            # The recovered page tables are authoritative now: retire
            # the epoch, draining parked frames nobody references.
            reclaimer.retire_after_recovery(referenced_nvm_frames)
    machine.stats.add("recovery.processes", len(recovered))
    return recovered
