"""Crash recovery (Section II-A).

"The recovery procedure scans through the list of saved states and
creates a new execution context for each saved state.  For each
process, we copy the latest consistent copy of the context and recreate
the virtual memory layout as part of the recovery procedure.  Finally,
the recovery process sets up the page table mapping for the virtual
address space and marks the process state as ready for execution."

Recovery also reconciles the persistent NVM frame-allocator metadata
against the frames actually referenced by recovered contexts, releasing
frames whose mappings never became consistent (allocated after the last
checkpoint of a crashed process).
"""

from __future__ import annotations

from typing import List, Set

from repro.common.errors import RecoveryError
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process, ProcessState
from repro.gemos.vma import AddressSpace
from repro.mem.hybrid import MemType
from repro.persist.savedstate import SavedState
from repro.persist.schemes import PageTableScheme

#: Kernel cycles to locate and validate one saved state at boot.
SCAN_SAVED_STATE_CYCLES = 500


def recover(kernel: Kernel, scheme: PageTableScheme) -> List[Process]:
    """Recreate every checkpointed process from NVM saved states.

    Returns the recovered processes (possibly empty on first boot).
    Processes that never completed a checkpoint have no consistent
    context and are not recovered; their NVM frames are reclaimed.
    """
    machine = kernel.machine
    recovered: List[Process] = []
    referenced_nvm_frames: Set[int] = set()
    with machine.os_region("recovery"):
        for key, obj in list(kernel.nvm_store.keys_with_prefix("saved_state:")):
            machine.advance(SCAN_SAVED_STATE_CYCLES)
            if not isinstance(obj, SavedState):
                raise RecoveryError(f"corrupt saved state at {key}")
            saved = obj
            dropped = saved.redo.discard_unapplied()
            machine.stats.add("recovery.discarded_records", dropped)
            if saved.discard_staging():
                # The crash interrupted a checkpoint between the v2p
                # refresh and the commit flip; the staged list was never
                # promoted and must not leak into the next checkpoint.
                machine.stats.add("recovery.discarded_v2p_staging")
            consistent = saved.consistent
            if consistent is None or not consistent.valid:
                # Never checkpointed: the process cannot be recovered.
                kernel.nvm_store.remove(key)
                if saved.pt_root_key:
                    kernel.nvm_store.remove(saved.pt_root_key)
                machine.stats.add("recovery.unrecoverable")
                continue
            address_space = AddressSpace.from_snapshot(consistent.vmas)
            process = kernel.create_process(
                saved.name,
                persistent=True,
                pid=saved.pid,
                address_space=address_space,
            )
            process.registers = dict(consistent.registers)
            scheme.recover_page_table(process, saved)
            assert process.page_table is not None
            for _vpn, pte in process.page_table.iter_leaves():
                if machine.layout.mem_type_of_pfn(pte.pfn) is MemType.NVM:
                    referenced_nvm_frames.add(pte.pfn)
            process.state = ProcessState.READY
            recovered.append(process)
        _reconcile_nvm_allocator(kernel, referenced_nvm_frames)
    machine.stats.add("recovery.processes", len(recovered))
    return recovered


def _reconcile_nvm_allocator(kernel: Kernel, referenced: Set[int]) -> None:
    """Release NVM user frames not referenced by any recovered context.

    The allocator's metadata is persistent, so frames mapped after the
    final checkpoint survive the crash as allocated-but-unreachable;
    this pass reclaims them.  Page-table frames of persistent-scheme
    tables are accounted by re-walking the recovered tables.
    """
    allocator = kernel.nvm_alloc
    table_frames: Set[int] = set()
    for process in kernel.processes.values():
        table = process.page_table
        if table is None or table.allocator is not allocator:
            continue
        stack = [table.root]
        while stack:
            node = stack.pop()
            table_frames.add(node.frame)
            stack.extend(
                child
                for child in node.entries.values()
                if hasattr(child, "entries")
            )
    keep = referenced | table_frames
    state = allocator._state  # noqa: SLF001
    # Frames allocated after the final checkpoint are unreachable: free
    # them.
    leaked = [pfn for pfn in list(state.allocated) if pfn not in keep]
    for pfn in leaked:
        allocator.free(pfn)
    # Frames freed after the final checkpoint but still referenced by a
    # consistent context must be re-pinned, or the allocator would hand
    # them out again (the mirror-image inconsistency).
    repinned = keep - state.allocated
    if repinned:
        state.free_list = [pfn for pfn in state.free_list if pfn not in repinned]
        state.allocated |= repinned
    kernel.machine.stats.add("recovery.reclaimed_frames", len(leaked))
    kernel.machine.stats.add("recovery.repinned_frames", len(repinned))
