"""Periodic checkpointing of execution contexts (Section II-A).

The manager subscribes to the kernel's OS-metadata event stream,
mirrors each event into the per-process redo log in NVM, and arms a
periodic timer (10 ms by default, following Aurora [40]).  At each
interval end it:

1. logs the CPU state of every persistent process,
2. applies the interval's redo records to the working context copy,
3. asks the page-table scheme to refresh translation bookkeeping
   (the rebuild scheme's v2p maintenance — the dominant cost),
4. atomically flips the working copy to consistent and truncates the
   applied log prefix.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.units import cycles_from_ms
from repro.gemos.kernel import Kernel
from repro.gemos.process import Process
from repro.gemos.vma import MAP_FIXED, MAP_NVM, PROT_READ, PROT_WRITE, AddressSpace
from repro.mem.hybrid import MemType
from repro.persist.reclaim import EpochFrameReclaimer
from repro.persist.savedstate import ContextCopy, SavedState, store_key
from repro.persist.schemes import PageTableScheme

#: NVM line writes to log one redo record.
LOG_RECORD_LINES = 1
#: NVM lines to capture the CPU register file at a checkpoint.
CPU_STATE_LINES = 2
#: Cycles of kernel work to apply one redo record to the working copy
#: (decode + mutate the context structures), on top of its NVM traffic.
APPLY_RECORD_CYCLES = 120
#: NVM lines read + written when applying one record.
APPLY_RECORD_LINES = 2

#: Events mirrored into the redo log.
_LOGGED_EVENTS = frozenset(
    {"proc_create", "proc_exit", "mmap", "munmap", "mprotect"}
)


class PersistenceManager:
    """Wires process persistence into a booted kernel."""

    def __init__(
        self,
        kernel: Kernel,
        scheme: PageTableScheme,
        checkpoint_interval_ms: float = 10.0,
        auto_arm: bool = True,
    ) -> None:
        if checkpoint_interval_ms <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.kernel = kernel
        self.machine = kernel.machine
        self.scheme = scheme
        self.interval_cycles = cycles_from_ms(checkpoint_interval_ms)
        self.checkpoint_interval_ms = checkpoint_interval_ms
        kernel.add_listener(self._on_event)
        #: The reclamation-epoch policy: post-checkpoint unmaps park
        #: committed-reachable frames instead of freeing; each commit
        #: retires the previous epoch (see :mod:`repro.persist.reclaim`).
        self.reclaimer = EpochFrameReclaimer(scheme)
        kernel.install_frame_release(self.reclaimer)
        #: Callbacks fired immediately after each per-process commit
        #: point (``commit_working``), with the committed
        #: :class:`SavedState`.  The crash explorer uses this to capture
        #: golden snapshots at the exact instant they become the
        #: recovery target; the reclaimer retires its epoch *after*
        #: these run (its retirement emits crash points of its own,
        #: which must observe the committed context as a valid target).
        self.on_commit: List = []
        self._timer = None
        if auto_arm:
            self.arm()

    # ------------------------------------------------------------------
    # event mirroring
    # ------------------------------------------------------------------

    def _saved_for(self, pid: int) -> Optional[SavedState]:
        obj = self.kernel.nvm_store.get(store_key(pid))
        return obj if isinstance(obj, SavedState) else None

    def _on_event(self, event: str, pid: int, payload: Dict[str, object]) -> None:
        process = self.kernel.processes.get(pid)
        if event == "proc_create":
            if not payload.get("persistent", True):
                return
            # A saved state may already exist when recovery recreates a
            # process with its old pid; never clobber it.
            self.kernel.nvm_store.setdefault(
                store_key(pid), SavedState(pid=pid, name=str(payload.get("name", "")))
            )
        if event == "proc_exit":
            # Retire the saved context durably *first* (the kernel fires
            # this event before tearing the process down): a crash
            # mid-teardown then finds nothing recoverable naming the
            # frames being freed.  With the saved state gone, the exit
            # path's frame releases are immediate — but frames parked
            # *earlier* in this epoch still need draining.
            self.kernel.nvm_store.remove(store_key(pid))
            self.kernel.nvm_store.remove(f"pt_root:{pid:08d}")
            self.reclaimer.retire_pid(pid)
            self.reclaimer.forget_pid(pid)
            return
        if event not in _LOGGED_EVENTS:
            return
        if process is not None and not process.persistent:
            return
        saved = self._saved_for(pid)
        if saved is None:
            return
        with self.machine.os_region("persist_log"):
            # Charge the NVM write *before* mutating the log object so a
            # crash injected at the write boundary models the record
            # never reaching NVM (the mutation after the kill point is
            # the write's effect).
            self.machine.bulk_lines(LOG_RECORD_LINES, MemType.NVM, is_write=True)
            saved.redo.append(event, payload)
        self.machine.stats.add("redo.appends")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Arm the periodic checkpoint timer."""
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.machine.timers.arm(
            self.machine.clock + self.interval_cycles,
            self.checkpoint_all,
            period=self.interval_cycles,
            name="checkpoint",
        )

    def disarm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def checkpoint_all(self) -> None:
        """Checkpoint every persistent process (one interval end)."""
        for process in list(self.kernel.processes.values()):
            if process.persistent:
                self.checkpoint_process(process)
        self.machine.stats.add("checkpoint.intervals")

    def checkpoint_process(self, process: Process) -> None:
        saved = self._saved_for(process.pid)
        if saved is None:
            return
        with self.machine.os_region("checkpoint"):
            # 1. log the CPU state.
            self.machine.bulk_lines(CPU_STATE_LINES, MemType.NVM, is_write=True)
            working = saved.working
            # 2. apply redo records to the working copy.
            pending = saved.redo.pending()
            base = saved.consistent
            working.vmas = list(base.vmas) if base is not None else []
            self._apply_records(working, pending)
            self.machine.advance(APPLY_RECORD_CYCLES * len(pending))
            self.machine.bulk_lines(
                APPLY_RECORD_LINES * len(pending), MemType.NVM, is_write=True
            )
            working.registers = dict(process.registers)
            # 3. scheme-specific refresh (rebuild: v2p maintenance).
            self.scheme.checkpoint_refresh(process, saved)
            # 4. commit: flip the consistent pointer, THEN truncate the
            # applied log prefix.  The order matters: truncating first
            # would let a crash between the two silently discard logged
            # updates — the old consistent copy would be restored with
            # the records that amend it already gone.  Truncating after
            # is safe because replaying an applied prefix is idempotent
            # (recovery discards unapplied records and checkpointing
            # rebuilds the working copy from the consistent base).
            self.machine.bulk_lines(1, MemType.NVM, is_write=True)
            self.machine.persist_barrier()
            applied_upto = pending[-1].seq + 1 if pending else saved.redo.applied_upto
            self.machine.persist_point("checkpoint.commit")
            saved.commit_working()
            for listener in self.on_commit:
                listener(process, saved)
            # Retire the reclamation epoch: the just-committed context
            # no longer references frames parked before this commit, so
            # they drain back to the allocator (crash points inside the
            # drain recover to the context committed above).
            self.reclaimer.on_commit(process, saved)
            self.machine.persist_point("redo.truncate")
            saved.redo.mark_applied(applied_upto)
        self.machine.stats.add("checkpoint.taken")
        self.machine.stats.add("redo.applied", len(pending))

    @staticmethod
    def _apply_records(working: ContextCopy, records) -> None:
        """Replay redo records onto the working copy's VMA layout."""
        space = AddressSpace.from_snapshot(working.vmas)
        for record in records:
            payload = record.payload
            if record.op == "mmap":
                prot = PROT_READ | (PROT_WRITE if payload["writable"] else 0)
                flags = MAP_FIXED
                if MemType(str(payload["mem_type"])) is MemType.NVM:
                    flags |= MAP_NVM
                space.map(
                    int(payload["start"]),
                    int(payload["end"]) - int(payload["start"]),
                    prot,
                    flags,
                    name=str(payload.get("name", "anon")),
                )
            elif record.op == "munmap":
                space.unmap(int(payload["start"]), int(payload["length"]))
            elif record.op == "mprotect":
                space.protect(
                    int(payload["start"]),
                    int(payload["length"]),
                    int(payload["prot"]),
                )
            # proc_create/proc_exit carry no layout change.
        working.vmas = space.snapshot()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def saved_states(self) -> List[SavedState]:
        return [
            obj
            for _key, obj in self.kernel.nvm_store.keys_with_prefix("saved_state:")
            if isinstance(obj, SavedState)
        ]
