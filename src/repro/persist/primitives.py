"""NVM consistency primitives (after Arun et al. [2], Wan et al. [41]).

The paper wraps page-table updates "inside [an] NVM consistency
mechanism [2]" without fixing which one; reference [41] is an empirical
study of redo vs undo logging for persistent memory.  This module
provides the three classic primitives as pluggable update wrappers so
the persistent page-table scheme (and any other NVM-resident
structure) can be studied under each:

*undo logging*
    Read the old value, persist it to the log (flush + fence), then
    update in place.  Commit is cheap (drop the log), but every update
    pays a read + an ordered log write *before* the store.

*redo logging*
    Append the new value to the log (flush + fence), update in place
    lazily; the in-place write needs no ordering against the log.
    Cheapest per update; recovery replays the log.

*no logging (Kiln-style [50])*
    Rely on a non-volatile last-level structure: just write and
    clwb+fence the line.  Cheapest overall, models hardware-supported
    persistence.

Each primitive charges its real machine costs; counts land under
``consistency.<name>.*`` stats.
"""

from __future__ import annotations

from repro.arch.machine import Machine
from repro.mem.hybrid import MemType


class ConsistencyPrimitive:
    """Wraps one 8-byte in-place update of an NVM-resident structure."""

    name = "abstract"

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def update(self, paddr: int) -> None:
        """Perform one consistency-wrapped update of the line at
        ``paddr``."""
        raise NotImplementedError

    def commit(self) -> None:
        """End the current failure-atomic section (drop/seal the log)."""

    def _count(self) -> None:
        self.machine.stats.add(f"consistency.{self.name}.updates")


class UndoLogPrimitive(ConsistencyPrimitive):
    """Old value to the log, ordered before the in-place store."""

    name = "undo"

    def update(self, paddr: int) -> None:
        machine = self.machine
        # Read the old value (through the caches).
        machine.phys_line_access(paddr, is_write=False)
        # Persist the undo record before the store may reach NVM.
        machine.bulk_lines(1, MemType.NVM, is_write=True)
        machine.persist_barrier()
        # In-place update, flushed and fenced.
        machine.phys_line_access(paddr, is_write=True)
        machine.clwb(paddr)
        machine.persist_barrier()
        self._count()

    def commit(self) -> None:
        # Invalidate the log: one ordered NVM write.
        self.machine.bulk_lines(1, MemType.NVM, is_write=True)
        self.machine.persist_barrier()
        self.machine.stats.add("consistency.undo.commits")


class RedoLogPrimitive(ConsistencyPrimitive):
    """New value to the log; in-place write is unordered."""

    name = "redo"

    def update(self, paddr: int) -> None:
        machine = self.machine
        # Append the redo record (streamed, fenced).
        machine.bulk_lines(1, MemType.NVM, is_write=True)
        machine.persist_barrier()
        # In-place update can linger in the caches.
        machine.phys_line_access(paddr, is_write=True)
        self._count()

    def commit(self) -> None:
        # Flush in-place data, then truncate the log.
        machine = self.machine
        machine.bulk_lines(1, MemType.NVM, is_write=True)
        machine.persist_barrier()
        machine.stats.add("consistency.redo.commits")


class NoLogPrimitive(ConsistencyPrimitive):
    """Kiln-style: write, clwb, fence — no logging at all."""

    name = "nolog"

    def update(self, paddr: int) -> None:
        machine = self.machine
        machine.phys_line_access(paddr, is_write=True)
        machine.clwb(paddr)
        machine.persist_barrier()
        self._count()


_PRIMITIVES = {
    UndoLogPrimitive.name: UndoLogPrimitive,
    RedoLogPrimitive.name: RedoLogPrimitive,
    NoLogPrimitive.name: NoLogPrimitive,
}


def make_primitive(name: str, machine: Machine) -> ConsistencyPrimitive:
    """Factory: ``"undo"``, ``"redo"`` or ``"nolog"``."""
    try:
        return _PRIMITIVES[name](machine)
    except KeyError:
        raise ValueError(
            f"unknown consistency primitive {name!r}; "
            f"choose from {sorted(_PRIMITIVES)}"
        ) from None
