"""Reclamation epochs: deferred frame reclamation for persistence.

The crash-consistency hazard this module closes (ROADMAP, found by
Hypothesis): ``mmap -> store -> checkpoint -> munmap -> crash ->
recover`` read 0 instead of the checkpointed value.  ``sys_munmap``
freed the NVM frame and — under the *persistent* scheme — cleared the
NVM-resident PTE in place, so rollback to the checkpointed VMA layout
could not resurrect the translation and the access refaulted a zeroed
frame.  The *rebuild* scheme escaped the translation half by accident
(its v2p journal is applied lazily, so the committed list still named
the frame) but shared the frame-*reuse* half: the freed frame could be
handed out again and scribbled on before the crash.

The fix follows the epoch discipline of NOVA-style log reclamation and
SSP shadow retirement: a frame named by the *committed* checkpoint must
not return to the allocator until the **next** checkpoint commits.
Concretely:

* every unmap path (``sys_munmap``, ``sys_mremap`` shrink/move,
  process exit, tiering migration) releases frames through a
  :class:`~repro.gemos.kernel.FrameReleasePolicy`;
* :class:`EpochFrameReclaimer` — the policy installed by the
  persistence manager — *parks* ``(pid, vpn, pfn)`` instead of freeing
  when the frame is reachable from the committed checkpoint.  The park
  record is made durable (NVM write + fence, crash point
  ``reclaim.park``) **before** the PTE is cleared, so at no instant
  does NVM hold a cleared translation without the park record that
  lets recovery undo it;
* the allocator refuses to hand out parked frames (and refuses to
  ``free`` them outside this module — see
  :meth:`~repro.gemos.frames.FrameAllocator.set_reclaim_guard`);
* a checkpoint commit retires the epoch (crash point
  ``reclaim.retire``): the committed context no longer references the
  parked frames, so they drain to the allocator;
* recovery replays the surviving park list to resurrect checkpointed
  translations, then retires the epoch once the recovered page tables
  are authoritative.

The park list lives in the NVM object store, so a crash mid-epoch
recovers it like every other persistent structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.gemos.kernel import FrameReleasePolicy, Kernel
from repro.gemos.process import Process
from repro.mem.hybrid import MemType
from repro.persist.savedstate import SavedState, store_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.persist.schemes import PageTableScheme

#: Bytes per packed park record in the log-structured epoch segment
#: (pid, vpn, pfn, gen and flags, packed).  Records stream out in
#: bursts — one log append per batched unmap — so durability is
#: charged per 64-byte line of *packed* records, not per record.
PARK_RECORD_BYTES = 24


@dataclass
class ParkedFrame:
    """One deferred reclamation: a committed translation torn down
    after its checkpoint.

    ``vpn`` is the *committed* virtual page (which may differ from the
    page being unmapped when an ``mremap`` moved the translation after
    the checkpoint).  ``owns_frame`` is False for translation-only
    records: the frame is still live under another mapping (mremap
    move), so retiring the epoch drops the record without freeing.
    ``gen`` is the pid's ``checkpoints_taken`` at park time: recovery
    resurrects a record only when no later checkpoint committed (a
    record surviving a crash mid-retire is superseded, not a target).
    """

    pid: int
    vpn: int
    pfn: int
    owns_frame: bool = True
    gen: int = 0


@dataclass
class ReclaimState:
    """NVM-resident reclamation metadata (one per system)."""

    epoch: int = 0
    parked: List[ParkedFrame] = field(default_factory=list)


class EpochFrameReclaimer(FrameReleasePolicy):
    """Epoch-based deferred frame reclamation (the persistence policy)."""

    name = "epoch"
    STORE_KEY = "reclaim_epoch"

    def __init__(self, scheme: "PageTableScheme") -> None:
        self.scheme = scheme
        #: pid -> {vpn: pfn} NVM translations at the last commit; the
        #: scheme may override this with its own persistent record
        #: (rebuild: the v2p list).  Volatile — rebuilt at recovery.
        self._snapshots: Dict[int, Dict[int, int]] = {}
        #: pfn -> number of park records naming it (a frame can be
        #: parked under several committed vpns).  Volatile mirror of
        #: ``state.parked``, rebuilt at bind.
        self._parked_pfns: Dict[int, int] = {}
        #: (pid, vpn, pfn) -> record, for O(1) re-park dedup.
        self._parked_index: Dict[Tuple[int, int, int], ParkedFrame] = {}
        #: pid -> (checkpoints_taken, {pfn: (vpns...)}) — the committed
        #: map inverted once per epoch instead of scanned per release.
        #: The committed map only changes when a checkpoint commits
        #: (which bumps ``checkpoints_taken``) or when the snapshot is
        #: refreshed (which drops the cache entry explicitly).
        self._reverse: Dict[int, Tuple[int, Dict[int, Tuple[int, ...]]]] = {}
        #: True when park records were written since the last persist
        #: barrier; the fence is issued lazily so one barrier can cover
        #: every record of a batched (multi-page) unmap.
        self._barrier_owed = False
        #: Park records appended since the last ``release_barrier`` —
        #: the pending log tail, charged (packed into lines) and fenced
        #: as one burst.
        self._pending_records = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def bind(self, kernel: Kernel) -> None:
        super().bind(kernel)
        self.machine = kernel.machine
        self.state: ReclaimState = kernel.nvm_store.setdefault(
            self.STORE_KEY, ReclaimState()
        )
        self._parked_pfns = {}
        self._parked_index = {}
        for entry in self.state.parked:
            self._index(entry)
        kernel.nvm_alloc.set_reclaim_guard(self.is_parked)

    def _index(self, entry: ParkedFrame) -> None:
        self._parked_pfns[entry.pfn] = self._parked_pfns.get(entry.pfn, 0) + 1
        self._parked_index[(entry.pid, entry.vpn, entry.pfn)] = entry

    def _unindex(self, entry: ParkedFrame) -> None:
        remaining = self._parked_pfns.get(entry.pfn, 0) - 1
        if remaining > 0:
            self._parked_pfns[entry.pfn] = remaining
        else:
            self._parked_pfns.pop(entry.pfn, None)
        self._parked_index.pop((entry.pid, entry.vpn, entry.pfn), None)

    def is_parked(self, pfn: int) -> bool:
        return pfn in self._parked_pfns

    def parked_count(self) -> int:
        return len(self.state.parked)

    def snapshot_for(self, pid: int) -> Dict[int, int]:
        """The reclaimer-maintained committed translation snapshot."""
        return self._snapshots.get(pid, {})

    # ------------------------------------------------------------------
    # the release paths (called by the kernel's unmap machinery)
    # ------------------------------------------------------------------

    def release_page(self, process: Process, vpn: int):
        table = process.page_table
        assert table is not None
        pte = table.lookup(vpn)
        if pte is None:
            return None
        mem_type = self.machine.layout.mem_type_of_pfn(pte.pfn)
        saved, committed = self._committed_vpns_for(process, pte.pfn, mem_type)
        if committed:
            # Park record durable BEFORE the PTE clear: a crash between
            # the two leaves either the live translation (park record
            # redundant) or the park record (translation resurrectable)
            # — never a cleared PTE with no way back.  When the caller
            # pre-parked the range via ``prepare_release`` these loops
            # dedup to no-ops and the barrier was already paid once.
            for committed_vpn in committed:
                self._park(
                    process.pid,
                    committed_vpn,
                    pte.pfn,
                    owns_frame=True,
                    gen=saved.checkpoints_taken,
                )
            self.release_barrier()
            table.unmap(vpn)
            return pte
        table.unmap(vpn)
        self.kernel.allocator_for(mem_type).free(pte.pfn)
        return pte

    def prepare_release(self, process: Process, vpn: int) -> None:
        """Write ``vpn``'s park records without fencing them — the
        caller issues one ``release_barrier()`` for the whole range."""
        table = process.page_table
        assert table is not None
        pte = table.lookup(vpn)
        if pte is None:
            return
        mem_type = self.machine.layout.mem_type_of_pfn(pte.pfn)
        saved, committed = self._committed_vpns_for(process, pte.pfn, mem_type)
        for committed_vpn in committed:
            self._park(
                process.pid,
                committed_vpn,
                pte.pfn,
                owns_frame=True,
                gen=saved.checkpoints_taken,
            )

    def release_barrier(self) -> None:
        """Charge and fence park records appended since the last
        barrier (if any): one packed log burst, one fence."""
        if self._pending_records:
            self.machine.bulk_lines(
                _record_lines(self._pending_records), MemType.NVM, is_write=True
            )
            self._pending_records = 0
        if self._barrier_owed:
            self.machine.persist_barrier()
            self._barrier_owed = False

    def release_frame(self, process: Process, pfn: int, mem_type: MemType) -> None:
        saved, committed = self._committed_vpns_for(process, pfn, mem_type)
        if committed:
            for committed_vpn in committed:
                self._park(
                    process.pid,
                    committed_vpn,
                    pfn,
                    owns_frame=True,
                    gen=saved.checkpoints_taken,
                )
            self.release_barrier()
            return
        self.kernel.allocator_for(mem_type).free(pfn)

    def note_remap(
        self,
        process: Process,
        old_vpn: int,
        new_vpn: int,
        pfn: int,
        mem_type: MemType,
    ) -> None:
        """An mremap is about to move a live translation.

        The frame stays allocated (it is live at ``new_vpn``), but if
        the *committed* checkpoint reaches it through ``old_vpn`` the
        in-place PTE clear would orphan that translation at recovery —
        park a translation-only record so recovery can resurrect it.
        The caller fences the batch with ``release_barrier()`` before
        clearing the old PTEs.
        """
        saved, committed = self._committed_vpns_for(process, pfn, mem_type)
        for committed_vpn in committed:
            self._park(
                process.pid,
                committed_vpn,
                pfn,
                owns_frame=False,
                gen=saved.checkpoints_taken,
            )

    # ------------------------------------------------------------------
    # parking
    # ------------------------------------------------------------------

    def _committed_vpns_for(
        self, process: Process, pfn: int, mem_type: MemType
    ) -> Tuple[Optional[SavedState], Tuple[int, ...]]:
        """Committed virtual pages whose checkpointed translation names
        ``pfn`` (with the saved state) — empty when the frame is not
        checkpoint-reachable."""
        if mem_type is not MemType.NVM or not process.persistent:
            return None, ()
        saved = self.kernel.nvm_store.get(store_key(process.pid))
        if not isinstance(saved, SavedState):
            return None, ()
        consistent = saved.consistent
        if consistent is None or not consistent.valid:
            return saved, ()
        return saved, self._reverse_for(process, saved).get(pfn, ())

    def _reverse_for(
        self, process: Process, saved: SavedState
    ) -> Dict[int, Tuple[int, ...]]:
        """``{pfn: (vpns...)}`` inversion of the committed map, cached
        per pid for the lifetime of the epoch."""
        cached = self._reverse.get(process.pid)
        if cached is not None and cached[0] == saved.checkpoints_taken:
            return cached[1]
        committed = self.scheme.committed_nvm_map(self, process, saved)
        inverted: Dict[int, List[int]] = {}
        for vpn in sorted(committed):
            inverted.setdefault(committed[vpn], []).append(vpn)
        frozen = {pfn: tuple(vpns) for pfn, vpns in inverted.items()}
        self._reverse[process.pid] = (saved.checkpoints_taken, frozen)
        return frozen

    def _park(
        self, pid: int, vpn: int, pfn: int, owns_frame: bool, gen: int
    ) -> None:
        entry = self._parked_index.get((pid, vpn, pfn))
        if entry is not None:
            if (owns_frame and not entry.owns_frame) or gen > entry.gen:
                # Re-park of an existing record (ownership upgrade
                # after an mremap move, or a later epoch touching
                # the same translation): one metadata line, no new
                # record.  Fenced with the batch, before the PTE clear.
                self.machine.bulk_lines(1, MemType.NVM, is_write=True)
                self._barrier_owed = True
                entry.owns_frame = entry.owns_frame or owns_frame
                entry.gen = max(entry.gen, gen)
            return
        # Expose the boundary to the crash matrix before mutating the
        # list: a kill at this point models the record never reaching
        # NVM, with the translation still intact.  The line charge and
        # fence are deferred to ``release_barrier`` so one packed log
        # burst and one barrier cover every record of a batched unmap;
        # both always land before the first PTE clear.
        self._pending_records += 1
        self._barrier_owed = True
        self.machine.persist_point("reclaim.park")
        entry = ParkedFrame(
            pid=pid, vpn=vpn, pfn=pfn, owns_frame=owns_frame, gen=gen
        )
        self.state.parked.append(entry)
        self._index(entry)
        self.machine.stats.add("reclaim.parked")
        if not owns_frame:
            self.machine.stats.add("reclaim.parked_translation_only")

    # ------------------------------------------------------------------
    # epoch retirement
    # ------------------------------------------------------------------

    def on_commit(self, process: Process, saved: SavedState) -> None:
        """Persistence-manager commit listener: the just-committed
        context no longer references this pid's parked frames — retire
        them, then snapshot the newly committed translations."""
        self.retire_pid(process.pid)
        self.refresh_snapshot(process)

    def retire_pid(self, pid: int) -> None:
        """Drain one process's parked frames back to the allocator."""
        indices = [
            i for i, entry in enumerate(self.state.parked) if entry.pid == pid
        ]
        if not indices:
            return
        self.machine.persist_point("reclaim.retire")
        # Invalidate the pid's records as one packed stream — dropped
        # records become durable before any frame is freed: a crash
        # mid-drain leaves allocated, unreferenced, unparked frames
        # that allocator reconciliation reclaims.
        self.machine.bulk_lines(
            _record_lines(len(indices)), MemType.NVM, is_write=True
        )
        freed = 0
        # Highest index first: each pop is O(trailing entries), O(1)
        # when the pid's records are the tail (the common case).
        for i in reversed(indices):
            entry = self.state.parked.pop(i)
            self._unindex(entry)
            if entry.owns_frame and self.kernel.nvm_alloc.is_allocated(entry.pfn):
                self.kernel.nvm_alloc.free(entry.pfn)
                freed += 1
        self._advance_epoch()
        self.machine.stats.add("reclaim.retired_frames", freed)

    def refresh_snapshot(self, process: Process) -> None:
        """Record the NVM translations the committed checkpoint can
        reach (taken at the commit instant / after recovery)."""
        table = process.page_table
        assert table is not None
        lo, hi = self.machine.layout.pfn_range(MemType.NVM)
        self._snapshots[process.pid] = {
            vpn: pte.pfn
            for vpn, pte in table.iter_leaves()
            if lo <= pte.pfn < hi
        }
        self._reverse.pop(process.pid, None)

    def forget_pid(self, pid: int) -> None:
        self._snapshots.pop(pid, None)
        self._reverse.pop(pid, None)

    def _advance_epoch(self) -> None:
        self.state.epoch += 1
        self.machine.bulk_lines(1, MemType.NVM, is_write=True)
        self.machine.stats.add("reclaim.epochs_retired")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def resurrect(self, process: Process, saved: SavedState) -> None:
        """Replay parked records: reinstall committed translations the
        post-checkpoint unmaps tore down (recovery path)."""
        entries = [e for e in self.state.parked if e.pid == process.pid]
        if not entries:
            return
        consistent = saved.consistent
        assert consistent is not None
        table = process.page_table
        assert table is not None
        # Stream the (packed) park list from NVM once.
        self.machine.bulk_lines(
            _record_lines(len(entries)), MemType.NVM, is_write=False
        )
        restored = 0
        for entry in entries:
            if entry.gen != saved.checkpoints_taken:
                # Parked before a checkpoint that has since committed
                # (the crash interrupted that commit's retire drain):
                # the newer committed context superseded this record —
                # resurrecting it would roll a translation back past
                # the recovery target.  Epoch retirement below drains
                # the frame instead.
                continue
            row = _row_covering(consistent.vmas, entry.vpn)
            if row is None:
                continue  # outside the committed layout: not resurrectable
            existing = table.lookup(entry.vpn)
            if existing is not None and existing.pfn == entry.pfn:
                continue  # crash landed between park record and PTE clear
            if existing is not None:
                # A post-checkpoint remap won the race into the live
                # table; the committed translation is authoritative.
                table.unmap(entry.vpn)
            table.map(entry.vpn, entry.pfn, writable=bool(row[2]))
            restored += 1
        self.machine.stats.add("recovery.resurrected_mappings", restored)

    def retire_after_recovery(self, referenced: Set[int]) -> None:
        """Recovery completion retires the epoch: recovered page tables
        are now authoritative, so any parked frame they do not reference
        is unreachable and drains to the allocator."""
        if not self.state.parked:
            return
        freed = 0
        while self.state.parked:
            entry = self.state.parked.pop()
            self._unindex(entry)
            if entry.pfn in referenced:
                continue  # resurrected (or never cleared): live again
            if self.kernel.nvm_alloc.is_allocated(entry.pfn):
                self.kernel.nvm_alloc.free(entry.pfn)
                freed += 1
        self._advance_epoch()
        self.machine.stats.add("recovery.retired_parked_frames", freed)


def _record_lines(n_records: int) -> int:
    """Cache lines holding ``n_records`` packed park records."""
    return max(1, (n_records * PARK_RECORD_BYTES + CACHE_LINE - 1) // CACHE_LINE)


def _row_covering(rows: Sequence, vpn: int) -> Optional[Tuple]:
    addr = vpn * PAGE_SIZE
    for row in rows:
        if row[0] <= addr < row[1]:
            return tuple(row)
    return None


def reconcile_nvm_allocator(
    kernel: Kernel,
    referenced: Set[int],
    reclaimer: Optional[EpochFrameReclaimer] = None,
) -> None:
    """Release NVM user frames not referenced by any recovered context.

    The allocator's metadata is persistent, so frames mapped after the
    final checkpoint survive the crash as allocated-but-unreachable;
    this pass reclaims them.  Parked frames are the reclaimer's to
    retire (they are allocated-but-unreferenced *by design* until the
    epoch ends) and are skipped here.  Page-table frames of
    persistent-scheme tables are accounted by re-walking the recovered
    tables.
    """
    allocator = kernel.nvm_alloc
    table_frames: Set[int] = set()
    for process in kernel.processes.values():
        table = process.page_table
        if table is None or table.allocator is not allocator:
            continue
        stack = [table.root]
        while stack:
            node = stack.pop()
            table_frames.add(node.frame)
            stack.extend(
                child
                for child in node.entries.values()
                if hasattr(child, "entries")
            )
    keep = referenced | table_frames
    state = allocator._state  # noqa: SLF001
    parked = (
        {entry.pfn for entry in reclaimer.state.parked}
        if reclaimer is not None
        else set()
    )
    # Frames allocated after the final checkpoint are unreachable: free
    # them.
    leaked = [
        pfn for pfn in list(state.allocated) if pfn not in keep and pfn not in parked
    ]
    for pfn in leaked:
        allocator.free(pfn)
    # Frames freed after the final checkpoint but still referenced by a
    # consistent context must be re-pinned, or the allocator would hand
    # them out again (the mirror-image inconsistency).
    repinned = keep - state.allocated
    if repinned:
        state.free_list = [pfn for pfn in state.free_list if pfn not in repinned]
        state.allocated |= repinned
    kernel.machine.stats.add("recovery.reclaimed_frames", len(leaked))
    kernel.machine.stats.add("recovery.repinned_frames", len(repinned))
