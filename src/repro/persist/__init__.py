"""Process persistence (the paper's core contribution, Section II-A).

Per-process *saved state* lives in NVM and holds two copies of the
execution context (a consistent copy and a working copy), a redo log of
OS-metadata modifications, and — under the *rebuild* scheme — the list
of virtual-to-NVM-physical page mappings used to reconstruct the page
table after reboot.

At the end of each checkpoint interval the engine logs the CPU state,
applies the interval's redo records to the working copy, lets the
page-table scheme refresh its translation bookkeeping, and atomically
marks the working copy as the new consistent copy.  Recovery scans the
saved states, recreates an execution context per entry, restores the
virtual memory layout and page table, and marks processes runnable.
"""

from repro.persist.checkpoint import PersistenceManager
from repro.persist.recovery import recover
from repro.persist.redolog import RedoLog, RedoRecord
from repro.persist.savedstate import ContextCopy, SavedState
from repro.persist.schemes import (
    PageTableScheme,
    PersistentScheme,
    RebuildScheme,
    make_scheme,
)

__all__ = [
    "PersistenceManager",
    "recover",
    "RedoLog",
    "RedoRecord",
    "ContextCopy",
    "SavedState",
    "PageTableScheme",
    "PersistentScheme",
    "RebuildScheme",
    "make_scheme",
]
