"""The two page-table consistency schemes compared in Section III-A.

*rebuild*
    Page tables live in DRAM (cheap, cached updates) and are **lost**
    at a crash.  The saved state therefore maintains a virtual-to-NVM-
    physical mapping list that is refreshed at every checkpoint by
    traversing the page table; recovery rebuilds the page table from
    that list.  The per-checkpoint maintenance is what Figure 4 and
    Tables III/IV charge this scheme for — its cost grows with the
    mapped virtual memory area size and the churn since the last
    checkpoint.

*persistent*
    Page tables live in NVM and every table mutation is wrapped in an
    NVM consistency mechanism (log + clwb + fence, after [2]), so after
    a reboot it "only requires setting the PTBR to point to the first
    level of page table".  Translation reads of the NVM-resident tables
    are mostly hidden by the TLBs and caches; the cost shows up on
    page-table *modifications*.

Cost-model constants below are the calibration surface of this
reproduction; each is motivated by a concrete micro-architectural
activity and exercised by the ablation benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable

from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.gemos.frames import FrameAllocator
from repro.gemos.kernel import Kernel, PageTableSchemeBase
from repro.gemos.pagetable import PageTable
from repro.gemos.process import Process
from repro.mem.hybrid import MemType

if TYPE_CHECKING:  # pragma: no cover
    from repro.persist.reclaim import EpochFrameReclaimer
    from repro.persist.savedstate import SavedState

#: Cycles to verify one live page-table entry against the v2p list at
#: each checkpoint (locate the node, read it from NVM, compare the
#: mapping, conditionally mark it validated).  This per-entry,
#: per-checkpoint pass is the cost the paper blames for the rebuild
#: scheme's overhead growing with the mapped virtual memory area size
#: and with checkpoint frequency (Fig. 4a, Table IV).
V2P_CHECK_CYCLES = 6000

#: Cycles to locate a v2p node when applying one journaled mapping
#: change (hash-indexed list: a couple of dependent NVM reads).
V2P_SEARCH_CYCLES = 800

#: NVM line writes per v2p list mutation (the node itself, its
#: index link, and the consistency log record wrapping the update).
V2P_MUTATE_LINES = 3

#: Additional kernel cycles per v2p list mutation (allocation of the
#: list node, fence waits of the consistency wrapping).
V2P_MUTATE_CYCLES = 2000

#: Entries per cache line when streaming the page table (8-byte PTEs).
PTES_PER_LINE = CACHE_LINE // 8


class PageTableScheme(PageTableSchemeBase):
    """Common persistence-aware scheme behaviour."""

    name = "abstract"

    def checkpoint_refresh(self, process: Process, saved: "SavedState") -> None:
        """Refresh translation bookkeeping at a checkpoint."""
        raise NotImplementedError

    def recover_page_table(self, process: Process, saved: "SavedState") -> None:
        """Reconstruct (or reattach) the page table after a reboot."""
        raise NotImplementedError

    def committed_nvm_map(
        self,
        reclaimer: "EpochFrameReclaimer",
        process: Process,
        saved: "SavedState",
    ) -> Dict[int, int]:
        """``{vpn: pfn}`` of NVM translations the *committed* checkpoint
        can reach — the set the reclamation epoch must protect.

        Default: the reclaimer's commit-instant snapshot (refreshed on
        every commit and after recovery).  Schemes with their own
        persistent translation record override this.
        """
        return reclaimer.snapshot_for(process.pid)


class RebuildScheme(PageTableScheme):
    """Page table in DRAM + v2p mapping list maintained at checkpoints."""

    name = "rebuild"

    def table_allocator(self) -> FrameAllocator:
        return self.kernel.dram_alloc

    def pte_write_observer(self, entry_paddr: int) -> None:
        # Plain cached DRAM write: the page table is volatile.
        self.kernel.machine.phys_line_access(entry_paddr, is_write=True)

    def checkpoint_refresh(self, process: Process, saved: "SavedState") -> None:
        """Traverse the page table and maintain the v2p list.

        Three cost components, per the paper's explanation of the
        rebuild overhead:

        1. a full page-table traversal (streaming DRAM reads),
        2. verification of every live entry against the list,
        3. search + update of the list for every mapping added or
           removed since the last checkpoint.
        """
        machine = self.kernel.machine
        table = process.page_table
        assert table is not None
        # Stage the refreshed list in a fresh node set and let
        # ``commit_working`` swing a single pointer to it: updating the
        # committed list in place would let a crash between here and the
        # context flip pair the OLD consistent context with NEW mappings.
        v2p = saved.v2p_staged = dict(saved.v2p)

        # 1. page-table traversal (leaf entries + intermediate tables).
        leaves = table.valid_leaves
        traversal_lines = (
            leaves + PTES_PER_LINE - 1
        ) // PTES_PER_LINE + table.table_count()
        machine.bulk_lines(traversal_lines, MemType.DRAM, is_write=False)

        # 2. verify every live entry against the list.
        machine.advance(leaves * V2P_CHECK_CYCLES)

        # 3. apply every journaled change to the list, in order.  Each
        # change pays an indexed node search plus a consistency-wrapped
        # NVM node update.
        journal = process.pending_nvm_ops
        machine.bulk_lines(
            V2P_MUTATE_LINES * len(journal), MemType.NVM, is_write=True
        )
        machine.advance((V2P_MUTATE_CYCLES + V2P_SEARCH_CYCLES) * len(journal))
        added = removed = 0
        for op, vpn, pfn in journal:
            if op == "map":
                v2p[vpn] = pfn
                added += 1
            else:
                v2p.pop(vpn, None)
                removed += 1
        machine.stats.add("v2p.added", added)
        machine.stats.add("v2p.removed", removed)
        process.pending_nvm_ops = []

    def recover_page_table(self, process: Process, saved: "SavedState") -> None:
        """Rebuild the DRAM page table from the consistent v2p list."""
        machine = self.kernel.machine
        consistent = saved.consistent
        assert consistent is not None
        table = process.page_table
        assert table is not None
        entries = saved.v2p
        # Stream the list from NVM, then install each mapping (DRAM
        # page-table writes through the observer).
        machine.bulk_lines(
            (len(entries) + 3) // 4, MemType.NVM, is_write=False
        )
        for vpn, pfn in sorted(entries.items()):
            table.map(vpn, pfn, writable=self._vpn_writable(consistent, vpn))
        machine.stats.add("recovery.rebuilt_mappings", len(entries))

    @staticmethod
    def _vpn_writable(context: "ContextCopy", vpn: int) -> bool:  # noqa: F821
        addr = vpn * PAGE_SIZE
        for start, end, writable, _mem, _name in context.vmas:
            if start <= addr < end:
                return writable
        return True

    def committed_nvm_map(
        self,
        reclaimer: "EpochFrameReclaimer",
        process: Process,
        saved: "SavedState",
    ) -> Dict[int, int]:
        """The committed v2p list *is* the committed translation map.

        This is the explicit fix for the rebuild scheme's frame-reuse
        hazard: the scheme used to escape translation loss only because
        its v2p journal is applied lazily, while freed frames could
        still be reallocated and scribbled on before a crash.  Deriving
        the parking set from the committed list (not from journal
        timing) makes the protection intentional.
        """
        return saved.v2p


class PersistentScheme(PageTableScheme):
    """Page table hosted in NVM, kept consistent on every update.

    The per-update consistency mechanism [2] is pluggable (see
    :mod:`repro.persist.primitives`): undo logging by default (each
    update is made durable in place, so a crash at any instant leaves
    a recoverable table), redo logging or Kiln-style no-logging for
    the primitive ablation.
    """

    name = "persistent"

    def __init__(self, primitive_name: str = "undo") -> None:
        self.primitive_name = primitive_name
        self._primitive = None

    def bind(self, kernel: Kernel) -> None:
        super().bind(kernel)
        from repro.persist.primitives import make_primitive

        self._primitive = make_primitive(self.primitive_name, kernel.machine)

    def table_allocator(self) -> FrameAllocator:
        return self.kernel.nvm_alloc

    def pte_write_observer(self, entry_paddr: int) -> None:
        """Wrap the entry update in the NVM consistency mechanism [2]."""
        assert self._primitive is not None
        self._primitive.update(entry_paddr)
        self.kernel.machine.stats.add("ptp.consistent_updates")

    def create_page_table(self, process: Process) -> PageTable:
        key = self._root_key(process.pid)
        existing = self.kernel.nvm_store.get(key)
        if isinstance(existing, PageTable):
            # The NVM-resident table survived a crash: reattach it to
            # the new kernel instead of allocating a fresh root.
            existing.allocator = self.kernel.nvm_alloc
            existing.write_observer = self.pte_write_observer
            return existing
        table = super().create_page_table(process)
        self.kernel.nvm_store.put(key, table)
        from repro.persist.savedstate import SavedState, store_key

        saved = self.kernel.nvm_store.get(store_key(process.pid))
        if isinstance(saved, SavedState):
            saved.pt_root_key = key
        return table

    @staticmethod
    def _root_key(pid: int) -> str:
        return f"pt_root:{pid:08d}"

    def checkpoint_refresh(self, process: Process, saved: "SavedState") -> None:
        """Nothing to refresh: the page table is always consistent.

        The pending journal still clears (it exists for scheme
        symmetry) and the v2p list in the saved state is left
        unmaintained, as in the paper.
        """
        process.pending_nvm_ops = []

    def recover_page_table(self, process: Process, saved: "SavedState") -> None:
        """Set the PTBR to the NVM-resident root; prune dead leaves.

        Reattaching costs O(1); one streaming pass over the table then
        drops two classes of leaf entry:

        * entries pointing at DRAM frames (their contents are gone);
        * entries for virtual pages *outside* the recovered consistent
          VMA layout.  The NVM table is always up-to-the-instant, but
          the context being restored is the last checkpoint — keeping a
          mapping the recovered address space never created would let
          the process touch a frame the allocator reconciliation is
          about to reclaim.
        """
        machine = self.kernel.machine
        key = saved.pt_root_key or self._root_key(process.pid)
        table = self.kernel.nvm_store.get(key)
        if not isinstance(table, PageTable):
            from repro.common.errors import RecoveryError

            raise RecoveryError(
                f"pid {process.pid}: persistent page table root missing"
            )
        # Rebind the surviving table to the new kernel's allocator and
        # consistency observer.
        table.allocator = self.kernel.nvm_alloc
        table.write_observer = self.pte_write_observer
        dram_lo, dram_hi = machine.layout.pfn_range(MemType.DRAM)
        consistent = saved.consistent
        spans = (
            [(row[0], row[1]) for row in consistent.vmas]
            if consistent is not None
            else []
        )

        def in_layout(vpn: int) -> bool:
            addr = vpn * PAGE_SIZE
            return any(start <= addr < end for start, end in spans)

        stale = []
        orphans = []
        for vpn, pte in table.iter_leaves():
            if dram_lo <= pte.pfn < dram_hi:
                stale.append(vpn)
            elif not in_layout(vpn):
                orphans.append(vpn)
        machine.bulk_lines(
            (table.valid_leaves + PTES_PER_LINE - 1) // PTES_PER_LINE,
            MemType.NVM,
            is_write=False,
        )
        for vpn in stale:
            table.unmap(vpn)
        for vpn in orphans:
            table.unmap(vpn)
        process.page_table = table
        machine.stats.add("recovery.ptbr_sets")
        machine.stats.add("recovery.stale_dram_leaves", len(stale))
        machine.stats.add("recovery.orphan_nvm_leaves", len(orphans))


_SCHEMES = {
    RebuildScheme.name: RebuildScheme,
    PersistentScheme.name: PersistentScheme,
}


def make_scheme(name: str) -> PageTableScheme:
    """Factory: ``"rebuild"`` or ``"persistent"``."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown page-table scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None
