"""Per-process saved state in NVM.

"We maintain per-process saved state in NVM, containing two copies of
the execution context — one as a consistent copy and another as a
working copy" (Section II-A).  The saved state also carries the redo
log and, for the rebuild scheme, the virtual-to-NVM-physical mapping
list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.persist.redolog import RedoLog

VmaRow = Tuple[int, int, bool, str, str]


@dataclass
class ContextCopy:
    """One copy of an execution context."""

    valid: bool = False
    registers: Dict[str, int] = field(default_factory=dict)
    vmas: List[VmaRow] = field(default_factory=list)


@dataclass
class SavedState:
    """Everything NVM holds for one persistent process."""

    pid: int
    name: str
    slots: Tuple[ContextCopy, ContextCopy] = field(
        default_factory=lambda: (ContextCopy(), ContextCopy())
    )
    #: Index of the consistent copy in ``slots``; None until the first
    #: checkpoint completes.
    consistent_idx: Optional[int] = None
    redo: RedoLog = field(default_factory=RedoLog)
    #: NVM-store key of the persistent page table root (persistent
    #: scheme only).
    pt_root_key: Optional[str] = None
    #: Virtual page -> NVM physical frame mapping list, refreshed at
    #: each checkpoint by the rebuild scheme ("As part of the saved
    #: state, we also maintain a list of virtual page to NVM physical
    #: page frame mappings" — a single list alongside the two context
    #: copies).
    v2p: Dict[int, int] = field(default_factory=dict)
    #: In-progress v2p refresh.  The rebuild scheme must not update
    #: ``v2p`` in place mid-checkpoint: a crash between the refresh and
    #: the context flip would pair the *old* consistent context with a
    #: *new* mapping list (a hybrid).  The refresh therefore stages its
    #: result here and :meth:`commit_working` promotes it together with
    #: the context flip; recovery discards any leftover staging.
    v2p_staged: Optional[Dict[int, int]] = None
    checkpoints_taken: int = 0

    @property
    def consistent(self) -> Optional[ContextCopy]:
        if self.consistent_idx is None:
            return None
        return self.slots[self.consistent_idx]

    @property
    def working(self) -> ContextCopy:
        """The slot a checkpoint may scribble on."""
        if self.consistent_idx is None:
            return self.slots[0]
        return self.slots[1 - self.consistent_idx]

    def commit_working(self) -> None:
        """Atomically flip the working copy (and staged v2p) to consistent."""
        if self.consistent_idx is None:
            self.consistent_idx = 0
        else:
            self.consistent_idx = 1 - self.consistent_idx
        self.slots[self.consistent_idx].valid = True
        if self.v2p_staged is not None:
            self.v2p = self.v2p_staged
            self.v2p_staged = None
        self.checkpoints_taken += 1

    def discard_staging(self) -> bool:
        """Drop an uncommitted v2p refresh (recovery path).

        Returns True when stale staging was actually present, i.e. the
        crash interrupted a checkpoint between refresh and commit.
        """
        had = self.v2p_staged is not None
        self.v2p_staged = None
        return had


def store_key(pid: int) -> str:
    """NVM object-store key of a process's saved state."""
    return f"saved_state:{pid:08d}"
