"""NVM-resident redo log of OS-metadata modifications.

"We use redo log (stored in NVM) to capture all modifications to the
OS-level process meta-data" (Section II-A).  Records are appended as
metadata changes happen and *applied* to the working context copy at
checkpoint time; records appended after the last applied checkpoint are
discarded by recovery (they were never made consistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class RedoRecord:
    """One logged metadata modification."""

    seq: int
    op: str  # "mmap" | "munmap" | "mprotect" | "proc_create" | ...
    payload: Dict[str, object]


@dataclass
class RedoLog:
    """Append-only log with checkpoint truncation.

    The log object itself is NVM-resident (it lives inside a
    :class:`~repro.persist.savedstate.SavedState`); callers charge the
    NVM write cost of each append on the machine.
    """

    records: List[RedoRecord] = field(default_factory=list)
    next_seq: int = 0
    #: Sequence number up to which records have been applied to the
    #: working copy and made consistent.
    applied_upto: int = 0

    def append(self, op: str, payload: Dict[str, object]) -> RedoRecord:
        record = RedoRecord(seq=self.next_seq, op=op, payload=dict(payload))
        self.next_seq += 1
        self.records.append(record)
        return record

    def pending(self) -> List[RedoRecord]:
        """Records not yet applied to the working copy."""
        return [r for r in self.records if r.seq >= self.applied_upto]

    def mark_applied(self, upto_seq: int) -> None:
        """Checkpoint commit: records below ``upto_seq`` are consistent."""
        if upto_seq < self.applied_upto:
            raise ValueError(
                f"apply watermark moved backwards: {upto_seq} < {self.applied_upto}"
            )
        self.applied_upto = upto_seq
        self.records = [r for r in self.records if r.seq >= upto_seq]

    def discard_unapplied(self) -> int:
        """Recovery: drop the uncommitted tail; returns records dropped."""
        pending = len(self.records)
        self.records = []
        self.next_seq = self.applied_upto
        return pending

    def __len__(self) -> int:
        return len(self.records)
