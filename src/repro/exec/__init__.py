"""``repro.exec`` — the parallel sweep execution engine.

Every figure/table sweep, throughput bench and crash-matrix campaign is
a grid of *cells*: deterministic, state-free simulation runs that differ
only in their keyword arguments.  This package turns each cell into a
:class:`~repro.exec.task.Task` (callable name + canonicalized kwargs +
a code-version fingerprint), fans tasks out across a process pool sized
from ``os.cpu_count()`` (:class:`~repro.exec.engine.SweepEngine`), and
persists finished results in an on-disk content-addressed cache
(:class:`~repro.exec.cache.ResultCache`, ``artifacts/cache/<hash>.json``)
so re-running a sweep after an unrelated edit — or resuming an
interrupted one — only recomputes changed or missing cells.

Results are collected in task-submission order, so a parallel sweep is
observably identical to the serial loop it replaced.
"""

from repro.exec.cache import ResultCache
from repro.exec.engine import SweepEngine, SweepError, sweep
from repro.exec.fingerprint import code_fingerprint
from repro.exec.task import Task, canonical_bytes, payload_bytes, resolve

__all__ = [
    "ResultCache",
    "SweepEngine",
    "SweepError",
    "Task",
    "canonical_bytes",
    "code_fingerprint",
    "payload_bytes",
    "resolve",
    "sweep",
]
