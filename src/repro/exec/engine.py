"""The sweep engine: fan cells out, collect in order, cache results.

:class:`SweepEngine` executes a list of :class:`~repro.exec.task.Task`
cells.  Finished results are collected **in task order** regardless of
completion order, and every result is normalized through the canonical
JSON round trip before it is handed back — so serial runs, parallel
runs, and cache hits all return observably identical values and the
drivers built on top produce byte-identical output either way.

``jobs`` defaults to ``os.cpu_count()``; one job (or one runnable cell)
executes inline with no pool, which is the degenerate serial engine.
Workers receive ``(call, kwargs)`` pairs and resolve the callable by
import path, so nothing heavier than plain data crosses the process
boundary; the parent owns the cache (lookups before dispatch, stores on
completion) so entries are written once, canonically.

Progress goes to **stderr** — drivers print their tables to stdout and
redirecting one must not corrupt the other.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.common.errors import KindleError
from repro.exec.cache import MISS, ResultCache
from repro.exec.fingerprint import code_fingerprint
from repro.exec.task import Task, payload_bytes


class SweepError(KindleError):
    """A sweep cell raised.

    Carries the failing cell's :meth:`~repro.exec.task.Task.display`
    label and chains the original exception as ``__cause__``, so a
    10,000-cell sweep that dies names the one cell that killed it.
    """

    def __init__(self, task: Task, cause: BaseException) -> None:
        self.task = task
        super().__init__(
            f"sweep cell {task.display()!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


def default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def _normalize(result: Any) -> Any:
    """Order-preserving JSON round trip: what a cache hit would return."""
    return json.loads(payload_bytes(result))


def _execute(call: str, kwargs: Dict[str, Any]) -> Any:
    """Worker entry: run one cell in this process."""
    return Task(call=call, kwargs=kwargs).run()


def _init_worker(path: List[str]) -> None:
    """Make the parent's import path visible under any start method."""
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def probe_cell(a: int = 0, b: int = 0) -> Dict[str, int]:
    """Tiny deterministic cell used by tests and the engine self-check."""
    return {"a": a, "b": b, "sum": a + b}


def failing_cell(message: str = "boom", a: int = 0) -> Dict[str, int]:
    """Deliberately-raising cell for the engine's failure-path tests."""
    raise RuntimeError(message)


class SweepEngine:
    """Execute task grids across a process pool with result caching."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        cache_dir: Union[str, Path, None] = None,
        cache: Optional[ResultCache] = None,
        progress: bool = False,
        stream=None,
    ) -> None:
        if jobs is None:
            self.jobs = default_jobs()
        else:
            # An explicit worker count must be positive: silently
            # expanding 0 (or -2) to cpu_count hides caller bugs.
            self.jobs = int(jobs)
            if self.jobs < 1:
                raise KindleError(
                    f"jobs must be >= 1, got {jobs!r} "
                    "(pass None for the cpu-count default)"
                )
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif use_cache:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        #: Accumulated across every :meth:`map` call on this engine.
        self.cells = 0
        self.cache_hits = 0
        self.executed = 0
        self.elapsed_s = 0.0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def map(self, tasks: Sequence[Task]) -> List[Any]:
        """Run every task; results in task order.

        A raising cell aborts the sweep with :class:`SweepError` naming
        the failing cell (original exception chained as ``__cause__``);
        in-flight pool work is cancelled/drained first, and the
        ``cells``/``executed``/``elapsed_s`` accounting stays
        consistent whether the sweep finished or died.
        """
        tasks = list(tasks)
        started = time.perf_counter()  # repro: allow-nondet(progress reporting only)
        results: List[Any] = [None] * len(tasks)
        pending: List[tuple] = []  # (index, task, key-or-None)
        done = 0
        try:
            for index, task in enumerate(tasks):
                key = None
                if self.cache is not None and task.cacheable:
                    key = task.key(code_fingerprint(task.module))
                    hit = self.cache.get(key)
                    if hit is not MISS:
                        results[index] = hit
                        self.cache_hits += 1
                        done += 1
                        self._note(done, len(tasks), task, cached=True)
                        continue
                pending.append((index, task, key))
            if len(pending) <= 1 or self.jobs <= 1:
                for index, task, key in pending:
                    cell_start = time.perf_counter()  # repro: allow-nondet(progress reporting only)
                    try:
                        result = task.run()
                    except Exception as exc:
                        self.executed += 1
                        raise SweepError(task, exc) from exc
                    self.executed += 1
                    results[index] = self._finish(task, key, result)
                    done += 1
                    self._note(
                        done, len(tasks), task,
                        elapsed=time.perf_counter() - cell_start,  # repro: allow-nondet(progress reporting only)
                    )
            else:
                self._map_pool(pending, results, done, len(tasks))
        finally:
            self.cells += len(tasks)
            self.elapsed_s += time.perf_counter() - started  # repro: allow-nondet(progress reporting only)
        return results

    def _map_pool(
        self, pending: List[tuple], results: List[Any], done: int, total: int
    ) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(list(sys.path),),
        ) as pool:
            starts: Dict[Any, float] = {}
            future_meta: Dict[Any, tuple] = {}
            for index, task, key in pending:
                future = pool.submit(_execute, task.call, dict(task.kwargs))
                future_meta[future] = (index, task, key)
                starts[future] = time.perf_counter()  # repro: allow-nondet(progress reporting only)
            waiting = set(future_meta)
            while waiting:
                finished, waiting = wait(waiting, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, task, key = future_meta[future]
                    try:
                        result = future.result()
                    except Exception as exc:
                        # The failing cell ran; abandon the rest of the
                        # sweep without leaking workers: queued futures
                        # are cancelled, in-flight ones drain (their
                        # results are discarded — a partial sweep is
                        # not handed out).
                        self.executed += 1
                        for other in waiting:
                            other.cancel()
                        wait(waiting)
                        raise SweepError(task, exc) from exc
                    self.executed += 1
                    results[index] = self._finish(task, key, result)
                    done += 1
                    self._note(
                        done, total, task,
                        elapsed=time.perf_counter() - starts[future],  # repro: allow-nondet(progress reporting only)
                    )

    def _finish(self, task: Task, key: Optional[str], result: Any) -> Any:
        if key is not None and self.cache is not None:
            return self.cache.put(key, task.describe(), result)
        return _normalize(result)

    def _note(
        self,
        done: int,
        total: int,
        task: Task,
        cached: bool = False,
        elapsed: Optional[float] = None,
    ) -> None:
        if not self.progress:
            return
        suffix = "cached" if cached else f"{elapsed:.2f}s"
        print(
            f"[sweep] {done}/{total} {task.display()} ({suffix})",
            file=self.stream,
            flush=True,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "elapsed_s": round(self.elapsed_s, 4),
            "cache_dir": str(self.cache.root) if self.cache else None,
        }

    def write_stats(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.stats(), indent=2) + "\n")


def sweep(
    engine: Optional[SweepEngine],
    call: str,
    kwargs_list: Iterable[Dict[str, Any]],
    labels: Optional[Iterable[str]] = None,
    cacheable: bool = True,
) -> List[Any]:
    """Run one cell function over a kwargs grid, serially or engine-fanned.

    With ``engine=None`` the cells run inline in this process with no
    cache and no normalization — the plain loop the drivers always had,
    and the reference the engine path is tested against.
    """
    kwargs_list = list(kwargs_list)
    if engine is None:
        return [Task(call=call, kwargs=kwargs).run() for kwargs in kwargs_list]
    labels = list(labels) if labels is not None else [""] * len(kwargs_list)
    tasks = [
        Task(call=call, kwargs=kwargs, cacheable=cacheable, label=label)
        for kwargs, label in zip(kwargs_list, labels)
    ]
    return engine.map(tasks)
