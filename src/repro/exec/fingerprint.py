"""Code-version fingerprints for cache invalidation.

A cached cell result is only valid while the code that produced it is
unchanged.  Hashing the whole source tree would invalidate every cache
entry on any edit; instead each task carries a fingerprint of the
*transitive in-package import closure* of the module that defines its
callable: the module's own source plus, recursively, every sibling
module it imports from the same top-level package.  Editing
``repro.harness.plots`` therefore leaves ``repro.faults.explorer``
results cached, while editing ``repro.arch.machine`` (which everything
simulating a machine eventually imports) invalidates them all.

The closure is computed statically (``ast`` over the module sources, no
imports executed) and memoized per process.  Third-party and standard
library imports are ignored: the environment is pinned by the container
and tracking it would be noise.
"""

from __future__ import annotations

import ast
import hashlib
from importlib import util as importlib_util
from pathlib import Path
from typing import Dict, Iterable, Optional, Set, Tuple

#: module name -> (source bytes, is_package) — per-process memo.
_SOURCE_CACHE: Dict[str, Optional[Tuple[bytes, bool]]] = {}
#: (module name, root package) -> fingerprint hex digest.
_FINGERPRINT_CACHE: Dict[Tuple[str, str], str] = {}


def _load_source(name: str) -> Optional[Tuple[bytes, bool]]:
    """Source bytes of ``name`` and whether it is a package, if it is a
    plain ``.py`` module importable on the current path."""
    if name in _SOURCE_CACHE:
        return _SOURCE_CACHE[name]
    result: Optional[Tuple[bytes, bool]] = None
    try:
        spec = importlib_util.find_spec(name)
    except (ImportError, ValueError, ModuleNotFoundError):
        spec = None
    if spec is not None and spec.origin and spec.origin.endswith(".py"):
        try:
            source = Path(spec.origin).read_bytes()
        except OSError:
            source = None
        if source is not None:
            result = (source, bool(spec.submodule_search_locations))
    _SOURCE_CACHE[name] = result
    return result


def _relative_base(name: str, is_package: bool, level: int) -> Optional[str]:
    """The package a ``level``-dot relative import resolves against."""
    parts = name.split(".")
    # Inside a package __init__, one dot refers to the package itself.
    drop = level - 1 if is_package else level
    if drop >= len(parts):
        return None
    return ".".join(parts[: len(parts) - drop]) if drop else name


def _imported_candidates(
    name: str, source: bytes, is_package: bool, root: str
) -> Set[str]:
    """Module names ``name`` might import from the ``root`` package.

    ``from pkg import x`` is ambiguous between attribute and submodule;
    both forms are emitted and non-modules are discarded by the caller.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return set()
    prefix = root + "."
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == root or alias.name.startswith(prefix):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(name, is_package, node.level)
                if base is None:
                    continue
                module = f"{base}.{node.module}" if node.module else base
            else:
                module = node.module or ""
            if module != root and not module.startswith(prefix):
                continue
            found.add(module)
            for alias in node.names:
                found.add(f"{module}.{alias.name}")
    return found


def module_source(name: str) -> Optional[Tuple[bytes, bool]]:
    """Public face of the closure walker's source loader.

    Returns ``(source bytes, is_package)`` for a plain ``.py`` module
    importable on the current path, without importing it — shared with
    :mod:`repro.analysis`, which resolves task targets and cross-module
    contracts against exactly the sources a fingerprint would cover.
    """
    return _load_source(name)


def clear_caches() -> None:
    """Forget memoized sources/fingerprints (tests, long-lived REPLs)."""
    _SOURCE_CACHE.clear()
    _FINGERPRINT_CACHE.clear()


def code_fingerprint(module: str, root: Optional[str] = None) -> str:
    """Hex digest of ``module``'s transitive in-package import closure.

    ``root`` bounds the closure to one top-level package and defaults to
    the first component of ``module``.  Unknown modules hash to a
    closure of whatever *does* resolve — a task naming a module that no
    longer exists simply fingerprints differently and misses the cache.
    """
    root = root or module.split(".", 1)[0]
    memo_key = (module, root)
    cached = _FINGERPRINT_CACHE.get(memo_key)
    if cached is not None:
        return cached
    closure: Dict[str, bytes] = {}
    queue = [module]
    seen: Set[str] = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        loaded = _load_source(name)
        if loaded is None:
            continue
        source, is_package = loaded
        closure[name] = source
        for candidate in _imported_candidates(name, source, is_package, root):
            if candidate not in seen:
                queue.append(candidate)
    digest = hashlib.sha256()
    for name in sorted(closure):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(closure[name]).digest())
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[memo_key] = fingerprint
    return fingerprint


def closure_modules(module: str, root: Optional[str] = None) -> Iterable[str]:
    """The module names a fingerprint covers (introspection/debugging)."""
    root = root or module.split(".", 1)[0]
    code_fingerprint(module, root)  # populate the source memo
    closure: Set[str] = set()
    queue = [module]
    while queue:
        name = queue.pop()
        if name in closure:
            continue
        loaded = _load_source(name)
        if loaded is None:
            continue
        closure.add(name)
        source, is_package = loaded
        for candidate in _imported_candidates(name, source, is_package, root):
            if candidate not in closure:
                queue.append(candidate)
    return sorted(closure)
