"""On-disk content-addressed result cache: ``artifacts/cache/<hash>.json``.

One finished task = one file named by the task key (sha256 of call +
canonical kwargs + code fingerprint).  The file stores the identity
document next to the result so entries are self-describing::

    {"schema": "sweep_cache/v1", "key": ..., "task": {...}, "result": ...}

Entries are written atomically (temp file + ``os.replace``) so a sweep
killed mid-write never leaves a torn entry, and every load re-validates
schema and key — a corrupt or truncated entry reads as a miss and is
recomputed, never a crash.  Because the document encoding is canonical,
recomputing an unchanged cell rewrites byte-identical files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exec.task import payload_bytes

SCHEMA = "sweep_cache/v1"

#: Returned by :meth:`ResultCache.get` on a miss; ``None`` is a valid
#: cached result so a sentinel disambiguates.
MISS = object()

#: Default location, resolved relative to the working directory (the
#: repository checkout for CLI runs).  ``KINDLE_CACHE_DIR`` overrides.
DEFAULT_CACHE_DIR = Path("artifacts") / "cache"


def default_cache_dir() -> Path:
    return Path(
        # repro: allow-nondet(cache location only; contents are content-addressed)
        os.environ.get("KINDLE_CACHE_DIR", str(DEFAULT_CACHE_DIR))
    )


class ResultCache:
    """Content-addressed store of finished task results."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def encode(self, key: str, task_doc: Dict[str, Any], result: Any) -> bytes:
        """The entry bytes for a finished task.

        Deterministic for a given code version: the outer document has
        a fixed field order and the result preserves the cell's own
        (deterministic) key order, so recomputing an unchanged cell
        rewrites byte-identical files.
        """
        return payload_bytes(
            {"schema": SCHEMA, "key": key, "task": task_doc, "result": result}
        )

    def get(self, key: str) -> Any:
        """The cached result for ``key``, or :data:`MISS`.

        Any defect — absent file, truncated JSON, wrong schema, key
        mismatch from a hand-edited entry — is a miss; the caller
        recomputes and overwrites.
        """
        try:
            raw = self.path_for(key).read_bytes()
        except OSError:
            self.misses += 1
            return MISS
        try:
            doc = json.loads(raw)
            if not isinstance(doc, dict):
                raise ValueError("cache entry is not an object")
            if doc.get("schema") != SCHEMA or doc.get("key") != key:
                raise ValueError("cache entry schema/key mismatch")
            result = doc["result"]
        except (ValueError, KeyError):
            self.misses += 1
            return MISS
        self.hits += 1
        return result

    def put(self, key: str, task_doc: Dict[str, Any], result: Any) -> Any:
        """Persist a finished task atomically.

        Returns the result as it will read back from the cache (the
        canonical-JSON round trip), so callers hand out identical
        objects on cold and warm runs.
        """
        payload = self.encode(key, task_doc, result)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed replace
                tmp.unlink()
        self.stores += 1
        return json.loads(payload)["result"]

    def clear(self) -> int:
        """Wipe every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
