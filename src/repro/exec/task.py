"""Task descriptions: one deterministic simulation cell, hashable.

A task is ``call`` (a ``"module.path:function"`` string), canonicalized
``kwargs``, and the code fingerprint of the callable's module (see
:mod:`repro.exec.fingerprint`).  The three together name the cell's
result content-addressably: the sha256 of their canonical JSON encoding
is the cache key and the worker dispatch unit.

Kwargs must be JSON-representable; tuples canonicalize to lists, so a
cell called with ``sizes=(1, 2)`` and one called with ``sizes=[1, 2]``
are the same task — cell functions must treat the two identically
(every driver in this repo only iterates them).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


def canonical_bytes(value: Any) -> bytes:
    """Canonical JSON encoding for *identity*: sorted keys, minimal
    separators.  Only hashes use this — two kwargs dicts built in
    different orders must name the same task."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_encode_default
    ).encode("utf-8")


def payload_bytes(value: Any) -> bytes:
    """JSON encoding for *results*: minimal separators, **insertion
    order preserved**.  Cell results flow through this round trip on
    their way to the caller and into cache entries; sorting keys here
    would reorder table columns relative to the serial loop and break
    byte-identical output."""
    return json.dumps(
        value, separators=(",", ":"), default=_encode_default
    ).encode("utf-8")


def _encode_default(value: Any):
    if isinstance(value, (tuple, set, frozenset)):
        # Sets have no stable order; only tuples appear in our kwargs.
        if isinstance(value, (set, frozenset)):
            return sorted(value)
        return list(value)
    raise TypeError(f"task kwargs must be JSON-representable, got {value!r}")


def resolve(call: str) -> Callable:
    """``"repro.harness.experiments:fig4a_cell"`` -> the callable."""
    module_name, _, attr_path = call.partition(":")
    if not attr_path:
        raise ValueError(f"task call {call!r} is not 'module:function'")
    obj: Any = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        obj = getattr(obj, attr)
    if not callable(obj):
        raise TypeError(f"task call {call!r} resolved to non-callable {obj!r}")
    return obj


@dataclass(frozen=True)
class Task:
    """One deterministic cell of a sweep."""

    call: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Timing-style cells (the throughput bench) set this False: their
    #: results depend on wall-clock, not just code + kwargs.
    cacheable: bool = True
    #: Human label for progress lines; defaults to the call target.
    label: str = ""

    @property
    def module(self) -> str:
        return self.call.partition(":")[0]

    def display(self) -> str:
        return self.label or self.call.partition(":")[2] or self.call

    def describe(self, fingerprint: Optional[str] = None) -> Dict[str, Any]:
        """The identity document hashed into the cache key."""
        if fingerprint is None:
            from repro.exec.fingerprint import code_fingerprint

            fingerprint = code_fingerprint(self.module)
        return {
            "call": self.call,
            "kwargs": json.loads(canonical_bytes(self.kwargs)),
            "fingerprint": fingerprint,
        }

    def key(self, fingerprint: Optional[str] = None) -> str:
        """Content address: sha256 over call + kwargs + code version."""
        return hashlib.sha256(
            canonical_bytes(self.describe(fingerprint))
        ).hexdigest()

    def run(self) -> Any:
        """Execute the cell in this process (serial path and workers)."""
        return resolve(self.call)(**self.kwargs)
