"""The batch replay engine: vectorized run detection and commit.

Equivalence argument
--------------------

A *committable run* is a maximal stretch of operations that each

* fit in one cache line (``vaddr % CACHE_LINE + size <= CACHE_LINE``),
* translate through a TLB-resident entry (writable when the op writes),
* hit the L1 (the line is resident at run start), and
* execute in user mode with the fast path enabled and no extensions.

During such a run the scalar path performs only commutative
bookkeeping: per-op ``tlb.hit``/``l1.hit``/``ops.*`` counter bumps, a
fixed clock advance of ``op_base + l1_hit_latency`` cycles, an LRU
refresh of the touched TLB entry and L1 line, and a dirty-bit merge on
writes.  None of it changes *membership* of any structure, so residency
checked at run start holds for the whole run, and the final LRU state
depends only on each key's **last** access position (untouched keys
keep their relative order ahead of touched ones).  The batch kernel
therefore commits the run as: counter increments of the run totals, one
batched clock advance, and one ordered :meth:`Tlb.touch_run` /
:meth:`Cache.touch_run` per structure.

Timers are the one coupling to the clock: the scalar loop fires due
timers after every op, so a run is truncated at the op whose batched
clock advance first reaches the earliest armed deadline, the timers
fire there exactly as they would scalar, and — since callbacks may
mutate arbitrary machine state — every cached eligibility mask is
treated as stale afterwards and re-verified before the next commit.

Everything else — faults, TLB/L1 misses, protection upgrades,
multi-line and page-crossing ops, os-mode execution, attached
extensions, persist boundaries — falls back to the scalar
:meth:`Machine.access` path op by op, which is definitionally
equivalent.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.arch.machine import LINES_PER_PAGE, Machine
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.prep.trace import PackedTrace

#: Operations analyzed per vectorized precheck pass.
DEFAULT_CHUNK = 8192

#: Scalar run-ahead while the next op is ineligible: starts small so a
#: cold-start warmup flips to batch mode quickly, doubles while
#: re-probes stay ineligible so miss-heavy traces pay a bounded number
#: of prechecks per chunk.
_MIN_SCALAR_SPAN = 32
_MAX_SCALAR_SPAN = 4096  # repro: allow-geometry(op-count span cap, not a byte size)

_LINE_MASK = np.uint64(CACHE_LINE - 1)
_PAGE_MASK = np.uint64(PAGE_SIZE - 1)
_PAGE_SHIFT = np.uint64(PAGE_SIZE.bit_length() - 1)
_LINE_SHIFT = np.uint64(CACHE_LINE.bit_length() - 1)
_LINES_PER_PAGE = np.uint64(LINES_PER_PAGE)

#: A scalar trace operation, as built by the bench scenarios.
Op = Tuple[int, int, bool]


class BatchReplayer:
    """Replays a trace against one machine in vectorized batches.

    The replayer owns no simulated state — it is a pure execution
    strategy over the machine's own TLB/cache/counter structures — so
    interleaving :meth:`replay` calls with direct ``machine.access``
    calls is safe.

    ``batched_ops`` / ``scalar_ops`` count how the trace actually
    executed (they are engine-local diagnostics, deliberately *not*
    machine stats: the stats dump must stay byte-identical to a scalar
    replay).
    """

    def __init__(self, machine: Machine, chunk: int = DEFAULT_CHUNK) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be positive: {chunk}")
        self.machine = machine
        self.chunk = chunk
        self.batched_ops = 0
        self.scalar_ops = 0
        # Scalar run-ahead length, persisted across chunks so an
        # entirely-scalar trace converges to one precheck per span
        # instead of restarting the doubling ladder every chunk.
        self._span = _MIN_SCALAR_SPAN

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def replay(self, trace: Union[PackedTrace, Sequence[Op]]) -> int:
        """Replay every operation of ``trace``; returns ops replayed."""
        packed = (
            trace
            if isinstance(trace, PackedTrace)
            else PackedTrace.from_ops(trace)
        )
        addr = np.ascontiguousarray(packed.addr, dtype=np.uint64)
        size = np.ascontiguousarray(packed.size, dtype=np.uint64)
        is_write = np.ascontiguousarray(packed.is_write, dtype=bool)
        total = len(addr)
        chunk = self.chunk
        for start in range(0, total, chunk):
            stop = min(total, start + chunk)
            self._replay_chunk(
                addr[start:stop], size[start:stop], is_write[start:stop]
            )
        return total

    # ------------------------------------------------------------------
    # chunk machinery
    # ------------------------------------------------------------------

    def _replay_chunk(
        self, addr: np.ndarray, size: np.ndarray, is_write: np.ndarray
    ) -> None:
        machine = self.machine
        count = len(addr)
        if not machine._fast_ok or machine._mode_stack:  # noqa: SLF001
            # Extensions attached / fast path off / os mode: the whole
            # chunk is scalar by definition; skip the precheck entirely.
            self._scalar_span(addr, size, is_write, 0, count)
            return
        base = 0
        while base < count:
            # Cheap scalar probe of the next op first: if it is not
            # committable (the common case in miss-heavy stretches) the
            # whole vectorized precheck would be wasted work, since runs
            # are only consumed from the front of the remainder.
            if not self._probe_one(
                int(addr[base]), int(size[base]), bool(is_write[base])
            ):
                stop = min(count, base + self._span)
                self._scalar_span(addr, size, is_write, base, stop)
                base = stop
                self._span = min(self._span * 2, _MAX_SCALAR_SPAN)
                continue
            mask, key, line = self._eligibility(
                addr[base:], size[base:], is_write[base:]
            )
            remaining = count - base
            cursor = 0
            fired = False
            # Consume verified True runs.  Commits refresh LRU order and
            # merge dirty bits but never change TLB/L1 *membership*, so
            # the mask stays valid across commits — it goes stale only
            # when a scalar op executes or a timer callback runs.
            while cursor < remaining and mask[cursor]:
                run_end = cursor + 1
                while run_end < remaining and mask[run_end]:
                    run_end += 1
                while cursor < run_end:
                    consumed, fired = self._commit(
                        key[cursor:run_end],
                        line[cursor:run_end],
                        is_write[base + cursor : base + run_end],
                    )
                    cursor += consumed
                    if fired:
                        break
                if fired:
                    break
            if fired:
                base += cursor
                self._span = _MIN_SCALAR_SPAN
                continue
            if cursor >= remaining:
                break
            # The op at the cursor is not committable right now.  Replay
            # a scalar span and re-probe: misses *fill* state, so
            # eligibility can improve mid-chunk (cold-start warmup), but
            # each fill can also evict, so nothing is committed without
            # a fresh mask.  The span doubles while re-probes keep
            # coming back immediately ineligible (miss-heavy stretches
            # pay a bounded number of prechecks) and resets once a run
            # commits again.
            stop = min(remaining, cursor + self._span)
            self._scalar_span(addr, size, is_write, base + cursor, base + stop)
            base += stop
            if cursor == 0:
                self._span = min(self._span * 2, _MAX_SCALAR_SPAN)
            else:
                self._span = _MIN_SCALAR_SPAN

    def _scalar_span(
        self,
        addr: np.ndarray,
        size: np.ndarray,
        is_write: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        """Replay ``[start, stop)`` through the scalar access path."""
        access = self.machine.access
        for vaddr, nbytes, write in zip(
            addr[start:stop].tolist(),
            size[start:stop].tolist(),
            is_write[start:stop].tolist(),
        ):
            access(vaddr, nbytes, write)
        self.scalar_ops += stop - start

    def _probe_one(self, vaddr: int, nbytes: int, is_write: bool) -> bool:
        """Scalar committability check of a single op (precheck gate).

        Mirrors :meth:`_eligibility` exactly for one op, at dict-probe
        cost; used to skip the vectorized pass when the op at the front
        of the remainder is not committable anyway.
        """
        machine = self.machine
        if not machine._fast_ok or machine._mode_stack:  # noqa: SLF001
            return False
        if nbytes <= 0 or vaddr % CACHE_LINE + nbytes > CACHE_LINE:
            return False
        key = vaddr // PAGE_SIZE | machine._asid_base  # noqa: SLF001
        entry = machine.tlb._entries.get(key)  # noqa: SLF001 - hot path
        if entry is None or (is_write and not entry.writable):
            return False
        line = entry.pfn * LINES_PER_PAGE + vaddr % PAGE_SIZE // CACHE_LINE
        l1_sets = machine._l1_sets  # noqa: SLF001 - hot path
        return line in l1_sets[line % machine._l1_nsets]  # noqa: SLF001

    def _eligibility(
        self, addr: np.ndarray, size: np.ndarray, is_write: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized precheck: which ops are committable *right now*.

        Returns ``(mask, key, line)``; ``key``/``line`` values are only
        meaningful where ``mask`` is set.
        """
        machine = self.machine
        count = len(addr)
        if not machine._fast_ok or machine._mode_stack:  # noqa: SLF001
            zeros = np.zeros(count, dtype=np.uint64)
            return np.zeros(count, dtype=bool), zeros, zeros
        entries = machine.tlb._entries  # noqa: SLF001 - hot path
        if not entries:
            zeros = np.zeros(count, dtype=np.uint64)
            return np.zeros(count, dtype=bool), zeros, zeros
        # Set-index / tag extraction, in bulk.
        line_offset = addr & _LINE_MASK
        single = (line_offset + size <= CACHE_LINE) & (size > 0)
        key = (addr >> _PAGE_SHIFT) | np.uint64(machine._asid_base)  # noqa: SLF001
        # Translation residency: snapshot the TLB (at most ``entries``
        # config slots, typically 64) into sorted arrays once, then
        # binary-search every op against it — no per-op dict probes.
        tlb_keys = np.fromiter(entries.keys(), dtype=np.uint64, count=len(entries))
        tlb_pfns = np.fromiter(
            (entry.pfn for entry in entries.values()),
            dtype=np.uint64,
            count=len(entries),
        )
        tlb_writable = np.fromiter(
            (entry.writable for entry in entries.values()),
            dtype=bool,
            count=len(entries),
        )
        tlb_order = np.argsort(tlb_keys)
        tlb_keys = tlb_keys[tlb_order]
        slot = np.minimum(
            np.searchsorted(tlb_keys, key), len(tlb_keys) - 1
        )
        resident = tlb_keys[slot] == key
        mask = single & resident & (tlb_writable[tlb_order][slot] | ~is_write)
        line = tlb_pfns[tlb_order][slot] * _LINES_PER_PAGE + (
            (addr & _PAGE_MASK) >> _LINE_SHIFT
        )
        # L1 residency, probed once per unique candidate line.
        candidates = np.flatnonzero(mask)
        if len(candidates):
            unique_lines, line_inverse = np.unique(
                line[candidates], return_inverse=True
            )
            l1_sets = machine._l1_sets  # noqa: SLF001 - hot path
            l1_nsets = machine._l1_nsets  # noqa: SLF001 - hot path
            l1_resident = np.fromiter(
                (
                    cached in l1_sets[cached % l1_nsets]
                    for cached in unique_lines.tolist()
                ),
                dtype=bool,
                count=len(unique_lines),
            )
            mask[candidates] &= l1_resident[line_inverse]
        return mask, key, line

    def _commit(
        self, key: np.ndarray, line: np.ndarray, is_write: np.ndarray
    ) -> Tuple[int, bool]:
        """Commit a verified run; returns ``(ops committed, timers fired)``.

        The run is truncated at the op whose batched clock advance first
        reaches the earliest armed timer deadline, mirroring the scalar
        loop's post-op timer check exactly.
        """
        machine = self.machine
        per_op_cycles = machine._fast_cycles  # noqa: SLF001 - hot path
        heap = machine._timer_heap  # noqa: SLF001 - hot path
        length = len(key)
        if heap:
            gap = heap[0][0] - machine.clock
            # Ops until the batched clock first reaches the deadline;
            # at least one op always commits (the scalar loop, too,
            # replays the op before checking timers).
            length = min(length, max(1, -(-gap // per_op_cycles)))
            key = key[:length]
            line = line[:length]
            is_write = is_write[:length]
        counters = machine._counters  # noqa: SLF001 - hot path
        writes = int(np.count_nonzero(is_write))
        counters["tlb.hit"] += length
        counters[machine._l1_hit_key] += length  # noqa: SLF001 - hot path
        counters["ops.writes"] += writes
        counters["ops.reads"] += length - writes
        cycles = length * per_op_cycles
        machine.clock += cycles
        counters["cycles.user"] += cycles
        # L1 LRU refresh + dirty merge: unique lines in last-access
        # order, each merged with "was any access in the run a write".
        # One unique pass over the reversed run yields both the sorted
        # unique lines and each line's last-access position (the first
        # occurrence in the reversed view).
        unique_lines, rev_first, rev_inverse = np.unique(
            line[::-1], return_index=True, return_inverse=True
        )
        inverse = rev_inverse[::-1]
        wrote = (
            np.bincount(inverse[is_write], minlength=len(unique_lines)) > 0
        )
        order = np.argsort(length - 1 - rev_first)
        machine.l1.touch_run(
            unique_lines[order].tolist(), wrote[order].tolist()
        )
        # TLB LRU refresh: unique translation keys in last-access order.
        unique_keys, key_last = np.unique(key[::-1], return_index=True)
        key_order = np.argsort(length - 1 - key_last)
        machine.tlb.touch_run(unique_keys[key_order].tolist())
        self.batched_ops += length
        fired = 0
        if heap and heap[0][0] <= machine.clock:
            fired = machine.timers.fire_due(machine._read_clock)  # noqa: SLF001
        return length, bool(fired)


def replay_batch(
    machine: Machine,
    trace: Union[PackedTrace, Sequence[Op]],
    chunk: int = DEFAULT_CHUNK,
) -> BatchReplayer:
    """Replay ``trace`` on ``machine`` in batch mode; returns the
    replayer (whose ``batched_ops``/``scalar_ops`` describe the split)."""
    replayer = BatchReplayer(machine, chunk=chunk)
    replayer.replay(trace)
    return replayer
