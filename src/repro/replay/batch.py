"""The batch replay engine: vectorized run detection and commit.

Equivalence argument — L1-resident fast runs
--------------------------------------------

A *fast-committable run* is a maximal stretch of operations that each

* fit in one cache line (``vaddr % CACHE_LINE + size <= CACHE_LINE``),
* translate through a TLB-resident entry (writable when the op writes),
* hit the L1 (the line is resident at run start), and
* execute in user mode with the fast path enabled and no extensions.

During such a run the scalar path performs only commutative
bookkeeping: per-op ``tlb.hit``/``l1.hit``/``ops.*`` counter bumps, a
fixed clock advance of ``op_base + l1_hit_latency`` cycles, an LRU
refresh of the touched TLB entry and L1 line, and a dirty-bit merge on
writes.  None of it changes *membership* of any structure, so residency
checked at run start holds for the whole run, and the final LRU state
depends only on each key's **last** access position (untouched keys
keep their relative order ahead of touched ones).  The batch kernel
therefore commits the run as: counter increments of the run totals, one
batched clock advance, and one ordered :meth:`Tlb.touch_run` /
:meth:`Cache.touch_run` per structure.

Equivalence argument — miss runs
--------------------------------

Ops that miss the L1 change structure membership (fills, victim
evictions, open-row switches, write-buffer drains), so a precomputed
mask cannot stay valid across them.  The miss-run kernel
(:meth:`BatchReplayer._miss_run`) instead *interprets* the scalar
sequence op by op against the live hardware structures — the same set
dicts, open-row dicts and drain deque the scalar path mutates, obtained
once through :meth:`Machine.miss_run_view` — while deferring everything
that is only *observable at run end* to a single commit:

* stat counters accumulate in locals and land as guarded bulk adds
  (``Cache.commit_run``, ``MemoryChannel.read_run``/``write_run``,
  ``HybridMemoryController.read_run``/``write_run``,
  ``NvmWriteBuffer.commit_run``); guarded, because a zero-valued add
  would create counter keys the scalar replay never creates;
* the clock advances once (``machine.clock = base + cycles``); every
  point where the scalar path *reads* the clock mid-op (the write
  buffer's ``enqueue(now)``) receives ``base + cycles`` at exactly the
  scalar read point;
* TLB insertions from inline page walks are staged in a ``pending``
  dict that participates in LRU/eviction decisions (combined order =
  untouched entries, then pending, exactly the scalar dict order) and
  are materialized into real :class:`TlbEntry` objects at commit — so a
  thrashing run only constructs the entries that survive it;
* the TLB micro-cache and each channel's ``last_row_hit`` are restored
  at commit to what the scalar sequence would have left behind.

Inline page walks come in two flavors.  A walker declared pure
(``install_context(..., pure_walker=True)``) is side-effect-free and
charges no cycles, so the kernel simply calls it.  An *impure* walker
(gemOS: four charged page-table reads through the cache hierarchy) can
still run inline when the context also installed a ``walker_peek`` — a
pure preview returning exactly what the walker would.  The kernel peeks
first, free of charge; a faulting or write-protected translation breaks
to scalar *before* any side effect, so the scalar retry never sees a
half-executed op.  On a clean peek the kernel synchronizes
``machine.clock`` and the write-buffer drain horizon to the exact
scalar call point, runs the real walker (whose cache fills, wear and
``advance()`` charges all act on live structures and therefore commute
with the deferred sums), absorbs the walked cycles into the run, and
subtracts them from the deferred ``cycles.user`` add since
``advance()`` already charged them.  Walks invalidate the kernel's
row-hit trackers (the walk may have switched open rows), making the
live channel state authoritative again.  TLB misses under an impure
walker *without* a peek fall back to scalar.

Timers are the coupling to the clock: the scalar loop fires due timers
after every op, so both kinds of run are truncated at the op whose
batched clock advance first reaches the earliest armed deadline.  All
deferred state is committed *before* the callbacks fire — so a callback
that resets row buffers, drains the write buffer (persist barrier),
power-cycles the controller or switches contexts acts on fully
synchronized structures, all of which are cleared in place — and the
kernel returns afterwards, forcing a fresh probe before anything else
commits (mid-run invalidation hazards cannot leak into a stale run).

Everything else — faults, protection upgrades, TLB misses under an
impure walker with no peek, multi-line and page-crossing ops, os-mode
execution,
attached extensions, installed persist hooks — falls back to the scalar
:meth:`Machine.access` path op by op, which is definitionally
equivalent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.machine import LINES_PER_PAGE, Machine
from repro.arch.tlb import TlbEntry
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.prep.trace import PackedTrace

#: Operations analyzed per vectorized precheck pass.
DEFAULT_CHUNK = 8192

#: Scalar run-ahead while the next op is ineligible: starts small so a
#: cold-start warmup flips to batch mode quickly, doubles while
#: re-probes stay ineligible so miss-heavy traces pay a bounded number
#: of prechecks per chunk.
_MIN_SCALAR_SPAN = 32
_MAX_SCALAR_SPAN = 4096  # repro: allow-geometry(op-count span cap, not a byte size)

#: Ops handed to the miss-run kernel per call: starts small (short runs
#: — e.g. traffic traces where most stretches are L1-resident — should
#: not pay full-chunk slicing), doubles while the kernel consumes whole
#: blocks, resets when a run breaks early.
_MIN_KERNEL_BLOCK = 64
_MAX_KERNEL_BLOCK = DEFAULT_CHUNK

#: A kernel run shorter than this is treated like an ineligible probe
#: for span pacing: interleaved workloads with only occasional miss ops
#: should stay on the scalar ladder instead of ping-ponging into the
#: kernel for a handful of ops at a time.
_MIN_KERNEL_RUN = 8

#: _probe_one outcomes.
_PROBE_SCALAR = 0  #: not committable: scalar Machine.access fallback
_PROBE_KERNEL = 1  #: committable by the miss-run kernel
_PROBE_FAST = 2  #: TLB- and L1-resident: vectorized fast-run path

_LINE_MASK = np.uint64(CACHE_LINE - 1)
_PAGE_MASK = np.uint64(PAGE_SIZE - 1)
_PAGE_SHIFT = np.uint64(PAGE_SIZE.bit_length() - 1)
_LINE_SHIFT = np.uint64(CACHE_LINE.bit_length() - 1)
_LINES_PER_PAGE = np.uint64(LINES_PER_PAGE)

#: A scalar trace operation, as built by the bench scenarios.
Op = Tuple[int, int, bool]


class BatchReplayer:
    """Replays a trace against one machine in vectorized batches.

    The replayer owns no simulated state — it is a pure execution
    strategy over the machine's own TLB/cache/controller structures —
    so interleaving :meth:`replay` calls with direct ``machine.access``
    calls is safe.

    ``batched_ops`` / ``scalar_ops`` count how the trace actually
    executed (they are engine-local diagnostics, deliberately *not*
    machine stats: the stats dump must stay byte-identical to a scalar
    replay).
    """

    def __init__(self, machine: Machine, chunk: int = DEFAULT_CHUNK) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be positive: {chunk}")
        self.machine = machine
        self.chunk = chunk
        self.batched_ops = 0
        self.scalar_ops = 0
        # Scalar run-ahead length, persisted across chunks so an
        # entirely-scalar trace converges to one precheck per span
        # instead of restarting the doubling ladder every chunk.
        self._span = _MIN_SCALAR_SPAN
        # Miss-run kernel block size, adapted the same way.
        self._kernel_block = _MIN_KERNEL_BLOCK
        # Cached miss_run_view tuple (stable for the machine lifetime;
        # see Machine.miss_run_view for why caching is sound).
        self._view: Optional[tuple] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def replay(self, trace: Union[PackedTrace, Sequence[Op]]) -> int:
        """Replay every operation of ``trace``; returns ops replayed."""
        packed = (
            trace
            if isinstance(trace, PackedTrace)
            else PackedTrace.from_ops(trace)
        )
        addr = np.ascontiguousarray(packed.addr, dtype=np.uint64)
        size = np.ascontiguousarray(packed.size, dtype=np.uint64)
        is_write = np.ascontiguousarray(packed.is_write, dtype=bool)
        total = len(addr)
        chunk = self.chunk
        for start in range(0, total, chunk):
            stop = min(total, start + chunk)
            self._replay_chunk(
                addr[start:stop], size[start:stop], is_write[start:stop]
            )
        return total

    # ------------------------------------------------------------------
    # chunk machinery
    # ------------------------------------------------------------------

    def _replay_chunk(
        self, addr: np.ndarray, size: np.ndarray, is_write: np.ndarray
    ) -> None:
        machine = self.machine
        count = len(addr)
        if not machine._fast_ok or machine._mode_stack:  # noqa: SLF001
            # Extensions attached / fast path off / os mode: the whole
            # chunk is scalar by definition; skip the precheck entirely.
            self._scalar_span(addr, size, is_write, 0, count)
            return
        # Plain-python columns for the miss-run kernel, converted once
        # per chunk on first use (the values are immutable, so they stay
        # valid however state evolves).
        addr_list: Optional[List[int]] = None
        write_list: Optional[List[bool]] = None
        single_list: Optional[List[bool]] = None
        base = 0
        while base < count:
            # Cheap scalar probe of the next op first: it decides which
            # engine (scalar span / miss-run kernel / vectorized fast
            # path) consumes the front of the remainder.
            probe = self._probe_one(
                int(addr[base]), int(size[base]), bool(is_write[base])
            )
            if probe == _PROBE_SCALAR:
                stop = min(count, base + self._span)
                self._scalar_span(addr, size, is_write, base, stop)
                base = stop
                self._span = min(self._span * 2, _MAX_SCALAR_SPAN)
                continue
            if probe == _PROBE_KERNEL:
                if addr_list is None:
                    addr_list = addr.tolist()
                    write_list = is_write.tolist()
                    single_list = (
                        ((addr & _LINE_MASK) + size <= CACHE_LINE)
                        & (size > 0)
                    ).tolist()
                stop = min(count, base + self._kernel_block)
                consumed, fired = self._miss_run(
                    addr_list[base:stop],
                    write_list[base:stop],
                    single_list[base:stop],
                )
                requested = stop - base
                base += consumed
                if consumed == requested:
                    # Whole block consumed: the run is still going.
                    self._kernel_block = min(
                        self._kernel_block * 2, _MAX_KERNEL_BLOCK
                    )
                    self._span = _MIN_SCALAR_SPAN
                    continue
                self._kernel_block = _MIN_KERNEL_BLOCK
                if fired:
                    # Timer callbacks may have mutated anything; the
                    # next iteration re-probes from scratch.
                    self._span = _MIN_SCALAR_SPAN
                    continue
                # The kernel broke on a hazard (fault, protection
                # upgrade, multi-line op, impure-walker TLB miss): the
                # op at the break point needs the scalar path.
                stop = min(count, base + self._span)
                self._scalar_span(addr, size, is_write, base, stop)
                base = stop
                if consumed < _MIN_KERNEL_RUN:
                    self._span = min(self._span * 2, _MAX_SCALAR_SPAN)
                else:
                    self._span = _MIN_SCALAR_SPAN
                continue
            # _PROBE_FAST: vectorized eligibility + fast-run commits.
            mask, key, line = self._eligibility(
                addr[base:], size[base:], is_write[base:]
            )
            remaining = count - base
            cursor = 0
            fired = False
            # Consume verified True runs.  Fast commits refresh LRU
            # order and merge dirty bits but never change TLB/L1
            # *membership*, so the mask stays valid across commits — it
            # goes stale only when a scalar op, a kernel run, or a timer
            # callback executes.
            while cursor < remaining and mask[cursor]:
                run_end = cursor + 1
                while run_end < remaining and mask[run_end]:
                    run_end += 1
                while cursor < run_end:
                    consumed, fired = self._commit(
                        key[cursor:run_end],
                        line[cursor:run_end],
                        is_write[base + cursor : base + run_end],
                    )
                    cursor += consumed
                    if fired:
                        break
                if fired:
                    break
            base += cursor
            if fired:
                self._span = _MIN_SCALAR_SPAN
                continue
            if cursor >= remaining:
                break
            if cursor == 0:
                # Defensive: the probe said fast but the mask disagreed
                # (unreachable today — both test the same structures).
                stop = min(count, base + self._span)
                self._scalar_span(addr, size, is_write, base, stop)
                base = stop
                self._span = min(self._span * 2, _MAX_SCALAR_SPAN)
                continue
            # A fast run just ended at an op that is no longer
            # L1-resident; re-probe to pick the next engine.
            self._span = _MIN_SCALAR_SPAN

    def _scalar_span(
        self,
        addr: np.ndarray,
        size: np.ndarray,
        is_write: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        """Replay ``[start, stop)`` through the scalar access path."""
        access = self.machine.access
        for vaddr, nbytes, write in zip(
            addr[start:stop].tolist(),
            size[start:stop].tolist(),
            is_write[start:stop].tolist(),
        ):
            access(vaddr, nbytes, write)
        self.scalar_ops += stop - start

    def _probe_one(self, vaddr: int, nbytes: int, is_write: bool) -> int:
        """Classify the next op: scalar fallback, miss-run kernel, or
        the vectorized fast path.

        Mirrors the per-op eligibility tests of both batch engines at
        dict-probe cost, so the expensive vectorized precheck only runs
        when the front op would actually take the fast path.
        """
        machine = self.machine
        if not machine._fast_ok or machine._mode_stack:  # noqa: SLF001
            return _PROBE_SCALAR
        if nbytes <= 0 or vaddr % CACHE_LINE + nbytes > CACHE_LINE:
            return _PROBE_SCALAR
        key = vaddr // PAGE_SIZE | machine._asid_base  # noqa: SLF001
        entry = machine.tlb._entries.get(key)  # noqa: SLF001 - hot path
        if entry is None:
            # TLB miss: only the kernel can proceed, and only by
            # walking inline — which requires either a declared-pure
            # walker or an impure walker with a pure peek, plus the
            # stock eviction hook and no persist hook (crash injection
            # must see every scalar persist event).
            if (
                machine.persist_hook is not None
                or machine.walker is None
                or machine.tlb.on_evict != machine._tlb_evict_hook  # noqa: SLF001
            ):
                return _PROBE_SCALAR
            if machine._pure_walker:  # noqa: SLF001
                translation = machine.walker(machine, vaddr // PAGE_SIZE)
            elif machine._walker_peek is not None:  # noqa: SLF001
                translation = machine._walker_peek(vaddr // PAGE_SIZE)  # noqa: SLF001
            else:
                return _PROBE_SCALAR
            if translation is None or (is_write and not translation[1]):
                return _PROBE_SCALAR
            return _PROBE_KERNEL
        if is_write and not entry.writable:
            return _PROBE_SCALAR
        line = entry.pfn * LINES_PER_PAGE + vaddr % PAGE_SIZE // CACHE_LINE
        l1_sets = machine._l1_sets  # noqa: SLF001 - hot path
        if line in l1_sets[line % machine._l1_nsets]:  # noqa: SLF001
            return _PROBE_FAST
        if machine.persist_hook is not None:
            # L1 misses can write back to NVM; those must emit scalar
            # persist events when an injector is attached.
            return _PROBE_SCALAR
        return _PROBE_KERNEL

    # ------------------------------------------------------------------
    # miss-run kernel
    # ------------------------------------------------------------------

    def _bind_view(self) -> tuple:
        """Flatten :meth:`Machine.miss_run_view` into the positional
        tuple the kernel unpacks (cached; every container is mutated in
        place by its owner, never replaced)."""
        view = self.machine.miss_run_view()
        (
            dram_rows, dram_row_size, dram_banks,
            dram_read_hit, dram_read_miss, dram_write_hit, dram_write_miss,
        ) = view["dram_view"]
        (
            nvm_rows, nvm_row_size, nvm_banks,
            nvm_read_hit, nvm_read_miss, nvm_write_hit, nvm_write_miss,
        ) = view["nvm_view"]
        drains, wb_capacity, insert_cycles = view["buffer_view"]
        op_base = view["op_base_cycles"]
        self._view = (
            view["tlb"], view["tlb_entries"], view["tlb_capacity"],
            view["l1"], view["l2"], view["llc"],
            view["l1_sets"], view["l1_nsets"], view["l1_assoc"],
            view["l2_sets"], view["l2_nsets"], view["l2_assoc"],
            view["llc_sets"], view["llc_nsets"], view["llc_assoc"],
            op_base + view["l1_hit_latency"],
            op_base + view["l2_hit_latency"],
            op_base + view["llc_hit_latency"],
            view["controller"], view["dram_channel"], view["nvm_channel"],
            dram_rows, dram_row_size, dram_banks,
            dram_read_hit, dram_read_miss, dram_write_hit, dram_write_miss,
            nvm_rows, nvm_row_size, nvm_banks,
            nvm_read_hit, nvm_read_miss, nvm_write_hit, nvm_write_miss,
            view["write_buffer"], drains, wb_capacity, insert_cycles,
            view["page_writes"], view["page_row_misses"], view["page_shift"],
            view["dram_base"], view["nvm_base"], view["mem_end"],
            view["counters"], view["timer_heap"], op_base,
        )
        return self._view

    def _miss_run(
        self,
        addrs: List[int],
        writes: List[bool],
        singles: List[bool],
    ) -> Tuple[int, bool]:
        """Execute a run of ops through the inlined miss path.

        Consumes ops until a hazard (see the module docstring's
        fallback taxonomy) or the earliest timer deadline; commits all
        deferred state, then fires any due timers.  Returns
        ``(ops consumed, timers fired)``.
        """
        machine = self.machine
        view = self._view
        if view is None:
            view = self._bind_view()
        (
            tlb, entries, tlb_capacity,
            l1, l2, llc,
            l1_sets, l1_nsets, l1_assoc,
            l2_sets, l2_nsets, l2_assoc,
            llc_sets, llc_nsets, llc_assoc,
            op_l1_cycles, op_l2_cycles, op_llc_cycles,
            controller, dram_channel, nvm_channel,
            dram_rows, dram_row_size, dram_banks,
            dram_read_hit, dram_read_miss, dram_write_hit, dram_write_miss,
            nvm_rows, nvm_row_size, nvm_banks,
            nvm_read_hit, nvm_read_miss, nvm_write_hit, nvm_write_miss,
            write_buffer, drains, wb_capacity, insert_cycles,
            page_writes, page_row_misses, page_shift,
            dram_base, nvm_base, mem_end,
            counters, heap, op_base,
        ) = view
        asid = machine.asid
        asid_base = machine._asid_base  # noqa: SLF001 - hot path
        imon = machine._imon  # noqa: SLF001 - hot path
        walker = machine.walker if machine._pure_walker else None  # noqa: SLF001
        # Impure walker with a pure peek: the kernel peeks for free and
        # runs the real charged walk inline on clean translations.
        peek = None if walker is not None else machine._walker_peek  # noqa: SLF001
        raw_walker = machine.walker
        if tlb.on_evict != machine._tlb_evict_hook:  # noqa: SLF001
            walker = peek = None
        # Without a monitor watching evictions, staged TLB entries can
        # be deferred tuples — only survivors get materialized.  With a
        # monitor, victims must be real entries at note_tlb_evict time.
        defer_entries = imon is None
        clock_base = machine.clock
        last_drain_end = write_buffer._last_drain_end  # noqa: SLF001
        deadline = heap[0][0] - clock_base if heap else None

        cycles = 0
        #: Cycles the machine charged itself during inline impure walks
        #: (advance() already added them to clock and cycles.user);
        #: subtracted from the commit's bulk cycles.user add.
        external = 0
        consumed = 0
        last_key = 0
        #: Staged TLB activity: every op's key ends up here (moved real
        #: entries, or walk fills as (pfn, writable, vpn) tuples).  The
        #: combined LRU order is ``entries`` then ``pending``, matching
        #: the scalar dict exactly; evictions pop the combined head.
        pending: dict = {}
        n_tlb_hit = n_tlb_miss = n_tlb_evict = 0
        n_l1_hit = n_l1_miss = n_l1_evict = 0
        n_l2_hit = n_l2_miss = n_l2_evict = 0
        n_llc_hit = n_llc_miss = n_llc_evict = 0
        n_dram_reads = n_nvm_reads = 0
        n_dram_writes = n_nvm_writes = 0
        dram_r_hit = dram_r_miss = dram_w_hit = dram_w_miss = 0
        nvm_r_hit = nvm_r_miss = nvm_w_hit = nvm_w_miss = 0
        n_writebacks = n_buffered = n_full_stalls = 0
        n_write_ops = 0
        #: Final row-buffer outcome per channel (None = untouched).
        dram_last_hit: Optional[bool] = None
        nvm_last_hit: Optional[bool] = None

        def _writeback(victim_line: int) -> None:
            """Dirty victim to memory — inline Machine._writeback."""
            nonlocal cycles, n_writebacks, n_dram_writes, n_nvm_writes
            nonlocal dram_w_hit, dram_w_miss, nvm_w_hit, nvm_w_miss
            nonlocal dram_last_hit, nvm_last_hit
            nonlocal last_drain_end, n_buffered, n_full_stalls
            addr = victim_line * CACHE_LINE
            if addr >= nvm_base:
                n_nvm_writes += 1
                page = addr >> page_shift
                page_writes[page] = page_writes.get(page, 0) + 1
                row = addr // nvm_row_size
                bank = row % nvm_banks
                hit = nvm_rows.get(bank) == row
                nvm_rows[bank] = row
                if hit:
                    nvm_w_hit += 1
                    latency = nvm_write_hit
                else:
                    nvm_w_miss += 1
                    latency = nvm_write_miss
                nvm_last_hit = hit
                # Write-buffer enqueue at the scalar clock read point.
                now = clock_base + cycles
                while drains and drains[0] <= now:
                    drains.popleft()
                stall = 0
                if len(drains) >= wb_capacity:
                    stall = drains.popleft() - now
                    n_full_stalls += 1
                drain_start = now + stall
                if last_drain_end > drain_start:
                    drain_start = last_drain_end
                last_drain_end = drain_start + latency
                drains.append(last_drain_end)
                n_buffered += 1
                if imon is not None:
                    nvm_channel.last_row_hit = hit
                    imon.note_device(addr, True)
                cycles += stall + insert_cycles
            else:
                n_dram_writes += 1
                row = addr // dram_row_size
                bank = row % dram_banks
                hit = dram_rows.get(bank) == row
                dram_rows[bank] = row
                if hit:
                    dram_w_hit += 1
                    latency = dram_write_hit
                else:
                    dram_w_miss += 1
                    latency = dram_write_miss
                dram_last_hit = hit
                if imon is not None:
                    dram_channel.last_row_hit = hit
                    imon.note_device(addr, False)
                cycles += latency
            n_writebacks += 1

        for vaddr, w, ok in zip(addrs, writes, singles):
            if not ok:
                break  # multi-line / page-crossing / zero-size op
            vpn = vaddr // PAGE_SIZE
            key = asid_base | vpn
            entry = entries.get(key)
            if entry is not None:
                if w and not entry.writable:
                    break  # protection upgrade: scalar fault path
                pfn = entry.pfn
                n_tlb_hit += 1
                # LRU refresh: a touched real entry moves behind the
                # staged ones (the combined MRU end).
                del entries[key]
                pending[key] = entry
            else:
                staged = pending.get(key)
                if staged is not None:
                    if type(staged) is tuple:
                        pfn = staged[0]
                        if w and not staged[1]:
                            break
                    else:
                        pfn = staged.pfn
                        if w and not staged.writable:
                            break
                    n_tlb_hit += 1
                    pending[key] = pending.pop(key)
                else:
                    if walker is not None:
                        translation = walker(machine, vpn)
                        if translation is None:
                            break  # demand fault: scalar path
                    elif peek is not None:
                        translation = peek(vpn)
                        if translation is None or (
                            w and not translation[1]
                        ):
                            # Fault / protection upgrade: bail BEFORE
                            # the charged walk — the scalar path then
                            # executes the op (and its walk) whole.
                            break
                        # Clean translation: run the real charged walk
                        # at the exact scalar clock point (op_base is
                        # charged before the walk; the hit-stage add
                        # below re-adds it, so it cancels here).  The
                        # walk's own advance()/enqueue calls need the
                        # live clock and drain horizon, and its cycles
                        # land in cycles.user immediately — tracked in
                        # ``external`` so the commit does not double-
                        # charge them.
                        walk_at = cycles + op_base
                        machine.clock = clock_base + walk_at
                        write_buffer._last_drain_end = last_drain_end  # noqa: SLF001
                        translation = raw_walker(machine, vpn)
                        walked = machine.clock - clock_base - walk_at
                        external += walked
                        cycles += walked
                        last_drain_end = write_buffer._last_drain_end  # noqa: SLF001
                        # The walk may have touched the channels; their
                        # live last_row_hit is now authoritative, so
                        # the deferred end-of-run restore resets.
                        dram_last_hit = nvm_last_hit = None
                    else:
                        break  # impure-walker TLB miss: scalar path
                    pfn = translation[0]
                    writable = translation[1]
                    if w and not writable:
                        break
                    n_tlb_miss += 1
                    if len(entries) + len(pending) >= tlb_capacity:
                        if entries:
                            victim = entries.pop(next(iter(entries)))
                        else:
                            victim = pending.pop(next(iter(pending)))
                        n_tlb_evict += 1
                        if imon is not None:
                            imon.note_tlb_evict(victim)
                    if defer_entries:
                        pending[key] = (pfn, writable, vpn)
                    else:
                        pending[key] = TlbEntry(
                            vpn, pfn, writable, asid=asid
                        )
            line = pfn * LINES_PER_PAGE + vaddr % PAGE_SIZE // CACHE_LINE
            set1 = l1_sets[line % l1_nsets]
            if line in set1:
                set1[line] = set1.pop(line) or w
                n_l1_hit += 1
                cycles += op_l1_cycles
            else:
                n_l1_miss += 1
                set2 = l2_sets[line % l2_nsets]
                if line in set2:
                    set2[line] = set2.pop(line)
                    n_l2_hit += 1
                    cycles += op_l2_cycles
                else:
                    n_l2_miss += 1
                    set3 = llc_sets[line % llc_nsets]
                    if line in set3:
                        set3[line] = set3.pop(line)
                        n_llc_hit += 1
                        cycles += op_llc_cycles
                    else:
                        n_llc_miss += 1
                        addr = line * CACHE_LINE
                        if addr >= nvm_base:
                            if addr >= mem_end:
                                break  # out of range: scalar raises
                            n_nvm_reads += 1
                            row = addr // nvm_row_size
                            bank = row % nvm_banks
                            hit = nvm_rows.get(bank) == row
                            nvm_rows[bank] = row
                            if hit:
                                nvm_r_hit += 1
                                latency = nvm_read_hit
                            else:
                                nvm_r_miss += 1
                                latency = nvm_read_miss
                                page = addr >> page_shift
                                page_row_misses[page] = (
                                    page_row_misses.get(page, 0) + 1
                                )
                            nvm_last_hit = hit
                            if imon is not None:
                                nvm_channel.last_row_hit = hit
                                imon.note_device(addr, True)
                        else:
                            if addr < dram_base:
                                break  # out of range: scalar raises
                            n_dram_reads += 1
                            row = addr // dram_row_size
                            bank = row % dram_banks
                            hit = dram_rows.get(bank) == row
                            dram_rows[bank] = row
                            if hit:
                                dram_r_hit += 1
                                latency = dram_read_hit
                            else:
                                dram_r_miss += 1
                                latency = dram_read_miss
                            dram_last_hit = hit
                            if imon is not None:
                                dram_channel.last_row_hit = hit
                                imon.note_device(addr, False)
                        cycles += op_llc_cycles + latency
                        # Fill LLC (inline Machine._fill_llc).
                        if len(set3) >= llc_assoc:
                            victim_line = next(iter(set3))
                            victim_dirty = set3.pop(victim_line)
                            n_llc_evict += 1
                            set3[line] = False
                            victim_dirty = (
                                l1_sets[victim_line % l1_nsets].pop(
                                    victim_line, False
                                )
                                or victim_dirty
                            )
                            victim_dirty = (
                                l2_sets[victim_line % l2_nsets].pop(
                                    victim_line, False
                                )
                                or victim_dirty
                            )
                            if victim_dirty:
                                _writeback(victim_line)
                            if imon is not None:
                                imon.note_llc_fill(line, victim_line)
                        else:
                            set3[line] = False
                            if imon is not None:
                                imon.note_llc_fill(line, None)
                    # Fill L2 (inline Machine._fill_l2).
                    if len(set2) >= l2_assoc:
                        victim_line = next(iter(set2))
                        victim_dirty = set2.pop(victim_line)
                        n_l2_evict += 1
                        set2[line] = False
                        victim_dirty = (
                            l1_sets[victim_line % l1_nsets].pop(
                                victim_line, False
                            )
                            or victim_dirty
                        )
                        if victim_dirty:
                            vset = llc_sets[victim_line % llc_nsets]
                            if victim_line in vset:
                                vset[victim_line] = True
                            else:
                                _writeback(victim_line)
                    else:
                        set2[line] = False
                # Fill L1 (inline Machine._fill_l1).
                if len(set1) >= l1_assoc:
                    victim_line = next(iter(set1))
                    victim_dirty = set1.pop(victim_line)
                    n_l1_evict += 1
                    set1[line] = w
                    if victim_dirty:
                        vset = l2_sets[victim_line % l2_nsets]
                        if victim_line in vset:
                            vset[victim_line] = True
                        else:
                            vset = llc_sets[victim_line % llc_nsets]
                            if victim_line in vset:
                                vset[victim_line] = True
                            else:
                                _writeback(victim_line)
                else:
                    set1[line] = w
            if w:
                n_write_ops += 1
            last_key = key
            consumed += 1
            if deadline is not None and cycles >= deadline:
                break  # timer due: commit, then fire at the boundary

        if not consumed:
            return 0, False

        # ---- commit: all deferred state lands before any callback ----
        if defer_entries:
            for staged_key, staged in pending.items():
                entries[staged_key] = (
                    TlbEntry(staged[2], staged[0], staged[1], asid=asid)
                    if type(staged) is tuple
                    else staged
                )
        else:
            entries.update(pending)
        tlb.sync_mru(last_key)
        if n_tlb_hit:
            counters["tlb.hit"] += n_tlb_hit
        if n_tlb_miss:
            counters["tlb.miss"] += n_tlb_miss
        if n_tlb_evict:
            counters["tlb.evictions"] += n_tlb_evict
        l1.commit_run(n_l1_hit, n_l1_miss, n_l1_evict)
        l2.commit_run(n_l2_hit, n_l2_miss, n_l2_evict)
        llc.commit_run(n_llc_hit, n_llc_miss, n_llc_evict)
        if n_write_ops:
            counters["ops.writes"] += n_write_ops
        if consumed - n_write_ops:
            counters["ops.reads"] += consumed - n_write_ops
        if n_writebacks:
            counters["cache.writebacks"] += n_writebacks
        machine.clock = clock_base + cycles
        # Inline impure walks already charged their share via advance().
        counters["cycles.user"] += cycles - external
        controller.read_run(n_nvm_reads, n_dram_reads)
        controller.write_run(n_nvm_writes, n_dram_writes)
        dram_channel.read_run(dram_r_hit, dram_r_miss)
        dram_channel.write_run(dram_w_hit, dram_w_miss)
        nvm_channel.read_run(nvm_r_hit, nvm_r_miss)
        nvm_channel.write_run(nvm_w_hit, nvm_w_miss)
        if dram_last_hit is not None:
            dram_channel.end_run(dram_last_hit)
        if nvm_last_hit is not None:
            nvm_channel.end_run(nvm_last_hit)
        if n_nvm_writes:
            write_buffer.commit_run(last_drain_end, n_buffered, n_full_stalls)
        self.batched_ops += consumed
        fired = 0
        if heap and heap[0][0] <= machine.clock:
            fired = machine.timers.fire_due(machine._read_clock)  # noqa: SLF001
        return consumed, bool(fired)

    # ------------------------------------------------------------------
    # vectorized fast-run path
    # ------------------------------------------------------------------

    def _eligibility(
        self, addr: np.ndarray, size: np.ndarray, is_write: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized precheck: which ops are fast-committable *right
        now*.

        Returns ``(mask, key, line)``; ``key``/``line`` values are only
        meaningful where ``mask`` is set.
        """
        machine = self.machine
        count = len(addr)
        if not machine._fast_ok or machine._mode_stack:  # noqa: SLF001
            zeros = np.zeros(count, dtype=np.uint64)
            return np.zeros(count, dtype=bool), zeros, zeros
        entries = machine.tlb._entries  # noqa: SLF001 - hot path
        if not entries:
            zeros = np.zeros(count, dtype=np.uint64)
            return np.zeros(count, dtype=bool), zeros, zeros
        # Set-index / tag extraction, in bulk.
        line_offset = addr & _LINE_MASK
        single = (line_offset + size <= CACHE_LINE) & (size > 0)
        key = (addr >> _PAGE_SHIFT) | np.uint64(machine._asid_base)  # noqa: SLF001
        # Translation residency: snapshot the TLB (at most ``entries``
        # config slots, typically 64) into sorted arrays once, then
        # binary-search every op against it — no per-op dict probes.
        tlb_keys = np.fromiter(entries.keys(), dtype=np.uint64, count=len(entries))
        tlb_pfns = np.fromiter(
            (entry.pfn for entry in entries.values()),
            dtype=np.uint64,
            count=len(entries),
        )
        tlb_writable = np.fromiter(
            (entry.writable for entry in entries.values()),
            dtype=bool,
            count=len(entries),
        )
        tlb_order = np.argsort(tlb_keys)
        tlb_keys = tlb_keys[tlb_order]
        slot = np.minimum(
            np.searchsorted(tlb_keys, key), len(tlb_keys) - 1
        )
        resident = tlb_keys[slot] == key
        mask = single & resident & (tlb_writable[tlb_order][slot] | ~is_write)
        line = tlb_pfns[tlb_order][slot] * _LINES_PER_PAGE + (
            (addr & _PAGE_MASK) >> _LINE_SHIFT
        )
        # L1 residency, probed once per unique candidate line.
        candidates = np.flatnonzero(mask)
        if len(candidates):
            unique_lines, line_inverse = np.unique(
                line[candidates], return_inverse=True
            )
            l1_sets = machine._l1_sets  # noqa: SLF001 - hot path
            l1_nsets = machine._l1_nsets  # noqa: SLF001 - hot path
            l1_resident = np.fromiter(
                (
                    cached in l1_sets[cached % l1_nsets]
                    for cached in unique_lines.tolist()
                ),
                dtype=bool,
                count=len(unique_lines),
            )
            mask[candidates] &= l1_resident[line_inverse]
        return mask, key, line

    def _commit(
        self, key: np.ndarray, line: np.ndarray, is_write: np.ndarray
    ) -> Tuple[int, bool]:
        """Commit a verified fast run; returns ``(ops, timers fired)``.

        The run is truncated at the op whose batched clock advance first
        reaches the earliest armed timer deadline, mirroring the scalar
        loop's post-op timer check exactly.
        """
        machine = self.machine
        per_op_cycles = machine._fast_cycles  # noqa: SLF001 - hot path
        heap = machine._timer_heap  # noqa: SLF001 - hot path
        length = len(key)
        if heap:
            gap = heap[0][0] - machine.clock
            # Ops until the batched clock first reaches the deadline;
            # at least one op always commits (the scalar loop, too,
            # replays the op before checking timers).
            length = min(length, max(1, -(-gap // per_op_cycles)))
            key = key[:length]
            line = line[:length]
            is_write = is_write[:length]
        counters = machine._counters  # noqa: SLF001 - hot path
        writes = int(np.count_nonzero(is_write))
        counters["tlb.hit"] += length
        counters[machine._l1_hit_key] += length  # noqa: SLF001 - hot path
        # Guarded: an all-read (or all-write) run must not create the
        # other key at zero — scalar replay never would.
        if writes:
            counters["ops.writes"] += writes
        if length - writes:
            counters["ops.reads"] += length - writes
        cycles = length * per_op_cycles
        machine.clock += cycles
        counters["cycles.user"] += cycles
        # L1 LRU refresh + dirty merge: unique lines in last-access
        # order, each merged with "was any access in the run a write".
        # One unique pass over the reversed run yields both the sorted
        # unique lines and each line's last-access position (the first
        # occurrence in the reversed view).
        unique_lines, rev_first, rev_inverse = np.unique(
            line[::-1], return_index=True, return_inverse=True
        )
        inverse = rev_inverse[::-1]
        wrote = (
            np.bincount(inverse[is_write], minlength=len(unique_lines)) > 0
        )
        order = np.argsort(length - 1 - rev_first)
        machine.l1.touch_run(
            unique_lines[order].tolist(), wrote[order].tolist()
        )
        # TLB LRU refresh: unique translation keys in last-access order.
        unique_keys, key_last = np.unique(key[::-1], return_index=True)
        key_order = np.argsort(length - 1 - key_last)
        machine.tlb.touch_run(unique_keys[key_order].tolist())
        self.batched_ops += length
        fired = 0
        if heap and heap[0][0] <= machine.clock:
            fired = machine.timers.fire_due(machine._read_clock)  # noqa: SLF001
        return length, bool(fired)


def replay_batch(
    machine: Machine,
    trace: Union[PackedTrace, Sequence[Op]],
    chunk: int = DEFAULT_CHUNK,
) -> BatchReplayer:
    """Replay ``trace`` on ``machine`` in batch mode; returns the
    replayer (whose ``batched_ops``/``scalar_ops`` describe the split)."""
    replayer = BatchReplayer(machine, chunk=chunk)
    replayer.replay(trace)
    return replayer
