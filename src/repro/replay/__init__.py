"""Vectorized batch replay of memory-access traces.

The scalar replay loop (``for op in trace: machine.access(*op)``) pays
Python dispatch per operation; :class:`BatchReplayer` replays the same
trace by committing *runs* of pure-bookkeeping operations — single-line
accesses whose translation is TLB-resident and whose line is L1-resident
— as one vectorized batch, and falling back to the scalar
:meth:`~repro.arch.machine.Machine.access` path at every fault, TLB or
cache miss, multi-line access, extension hook, persist boundary and
os-mode transition.  Observable behavior (stats dump, clock, physical
memory) is byte-identical to the scalar loop by construction, and the
golden-equivalence suite holds both paths against each other.
"""

from repro.replay.batch import DEFAULT_CHUNK, BatchReplayer, replay_batch

__all__ = ["BatchReplayer", "replay_batch", "DEFAULT_CHUNK"]
