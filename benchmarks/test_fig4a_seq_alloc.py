"""Fig. 4a: execution time vs sequential allocation size.

Paper shape: the rebuild scheme is slower at every size and its
disadvantage grows with the mapped size (2.4x at 64 MB to 74.2x at
512 MB on the authors' testbed).
"""

from conftest import bench_scale, write_result

from repro.harness.experiments import run_fig4a


def test_fig4a(benchmark):
    result = benchmark.pedantic(
        run_fig4a,
        kwargs={"sizes_mb": (64, 128, 256, 512), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    write_result("fig4a", result)
    rows = result["rows"]
    # rebuild loses at every size.
    assert all(r["rebuild_ms"] > r["persistent_ms"] for r in rows)
    # the gap widens monotonically with size.
    overheads = [r["overhead_x"] for r in rows]
    assert all(a < b for a, b in zip(overheads, overheads[1:]))
    # and spans at least a few x to tens of x across the range.
    assert overheads[0] > 1.5
    assert overheads[-1] / overheads[0] > 3
