"""Ablation: TLB reach vs the persistent scheme's NVM page tables.

Section III-A's closing claim: address translation hides NVM read
latency "through multiple levels of TLBs and intermediate caches".  A
smaller TLB forces more hardware walks of the NVM-resident tables, so
the persistent scheme's translation cost grows as reach shrinks.
"""

from conftest import write_result

from repro.common.config import MachineConfig, TlbConfig, small_machine_config
from repro.common.units import MiB
from repro.platform import HybridSystem
from repro.workloads.microbench import seq_alloc_access


def _run(tlb_entries: int) -> int:
    base = small_machine_config(dram_bytes=64 * MiB, nvm_bytes=128 * MiB)
    config = MachineConfig(layout=base.layout, tlb=TlbConfig(entries=tlb_entries))
    system = HybridSystem(
        config=config, scheme="persistent", checkpoint_interval_ms=100.0
    )
    system.boot()
    system.spawn("m")
    # Fault 16 MiB in, then loop over a 256-page working set: larger
    # than a 16- or 64-entry TLB (every access walks the NVM tables),
    # within a 512-entry TLB (walk-free).
    seq_alloc_access(system, 16 * MiB, touches_per_page=1, unmap=False)
    proc = system.kernel.current
    vma = next(iter(proc.address_space))
    start = system.machine.clock
    for _round in range(4):
        for page in range(256):
            system.machine.access(vma.start + page * 4096, 8, False)
    recycle = system.machine.clock - start
    system.shutdown()
    return recycle


def test_tlb_reach(benchmark):
    def run():
        return {entries: _run(entries) for entries in (16, 64, 512)}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_tlb",
        {
            "experiment": "ablation: TLB entries vs NVM page-table walks",
            "rows": [
                {"tlb_entries": e, "revisit_cycles": c} for e, c in costs.items()
            ],
        },
    )
    # 16 MiB working set = 4096 pages: far beyond a 16- or 64-entry
    # TLB, within a 512-entry TLB's thrash-free zone only partially —
    # more entries must never be slower.
    assert costs[16] >= costs[64] >= costs[512]
    assert costs[16] > costs[512]
