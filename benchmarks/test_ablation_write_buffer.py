"""Ablation: NVM write-buffer depth (Table I uses 48 entries).

The write buffer hides PCM's slow writes behind a cheap insert; a
deeper buffer absorbs larger bursts between persist barriers.  This
ablation streams bursts of dirty NVM lines through clwb + fence and
sweeps the depth.
"""

from conftest import write_result

from repro.arch.machine import Machine
from repro.common.config import MachineConfig, NvmBufferConfig, small_machine_config
from repro.common.units import CACHE_LINE
from repro.mem.hybrid import MemType


def _write_burst_cycles(depth: int, bursts: int = 40, burst_lines: int = 24) -> int:
    base = small_machine_config()
    config = MachineConfig(
        layout=base.layout, nvm_buffers=NvmBufferConfig(write_buffer_entries=depth)
    )
    machine = Machine(config)
    nvm_lo, _ = machine.layout.pfn_range(MemType.NVM)
    base_addr = nvm_lo * 4096
    start = machine.clock
    line = 0
    think = 50_000
    for _burst in range(bursts):
        for _ in range(burst_lines):
            addr = base_addr + line * CACHE_LINE
            machine.phys_line_access(addr, is_write=True)
            machine.clwb(addr)
            line += 1
        # Think time between bursts: a deep buffer drains quietly in the
        # background, a shallow one already stalled the clwb stream.
        machine.advance(think)
    machine.persist_barrier()
    # Report the write-path cost only (think time is identical by
    # construction and would dilute the comparison).
    return machine.clock - start - bursts * think


def test_write_buffer_depth(benchmark):
    def run():
        return {depth: _write_burst_cycles(depth) for depth in (1, 8, 48, 256)}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_write_buffer",
        {
            "experiment": "ablation: NVM write buffer depth",
            "rows": [
                {"depth": d, "cycles": c, "vs_depth48": round(c / costs[48], 3)}
                for d, c in costs.items()
            ],
        },
    )
    # Deeper buffers are never slower, and a single-entry buffer pays
    # full PCM write latency on nearly every line.
    assert costs[1] > costs[8] >= costs[48] >= costs[256]
    assert costs[1] / costs[48] > 1.5
