"""Study: NVM wear under the two page-table consistency schemes.

PCM endurance is bounded, so *where* the persistence machinery's
writes land matters.  The persistent scheme updates NVM-resident page
tables in place on every mapping change — concentrating device writes
on a few table frames — while the rebuild scheme's NVM writes spread
across the saved-state area.  The wear counters quantify that skew.

Accounting note: wear counters record *addressed* device writes
(demand stores, writebacks, clwb); the analytic bulk streams kernel
loops use (v2p list rewrites, logs) carry no addresses and are not
attributed to pages.  The comparison below therefore isolates the
page-table write concentration, which is the effect of interest.
"""

from conftest import write_result

from repro.common.units import MiB
from repro.platform import HybridSystem
from repro.workloads.microbench import vma_churn


def _run(scheme: str):
    system = HybridSystem(scheme=scheme, checkpoint_interval_ms=10.0)
    system.boot()
    system.spawn("m")
    vma_churn(system, 32 * MiB, 16 * MiB, churn_rounds=3)
    report = system.machine.controller.wear_report()
    system.shutdown()
    return report


def test_wear_by_scheme(benchmark):
    def run():
        return {scheme: _run(scheme) for scheme in ("persistent", "rebuild")}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "study_wear",
        {
            "experiment": "study: NVM wear by page-table scheme",
            "rows": [
                {
                    "scheme": scheme,
                    "pages_written": r["pages_written"],
                    "total_line_writes": r["total_line_writes"],
                    "max_page_writes": r["max_page_writes"],
                    "wear_skew": round(r["skew"], 2),
                }
                for scheme, r in reports.items()
            ],
        },
    )
    persistent = reports["persistent"]
    rebuild = reports["rebuild"]
    # The persistent scheme's in-place PT updates concentrate wear: its
    # hottest NVM page absorbs far more writes than any under rebuild.
    assert persistent["max_page_writes"] > 2 * rebuild["max_page_writes"]
    assert persistent["skew"] > rebuild["skew"]