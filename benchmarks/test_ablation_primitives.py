"""Ablation: NVM consistency primitive under the persistent PT scheme.

References [2] and [41] study architectural primitives and redo/undo
logging for NVRAM consistency; Kindle wraps page-table updates in "an
NVM consistency mechanism [2]" without fixing one.  This ablation runs
the update-heavy churn micro-benchmark under each primitive.
"""

from conftest import write_result

from repro.common.units import MiB, ms_from_cycles
from repro.persist.checkpoint import PersistenceManager
from repro.persist.recovery import recover
from repro.persist.schemes import PersistentScheme
from repro.platform import HybridSystem
from repro.workloads.microbench import vma_churn


def _run(primitive: str) -> float:
    system = HybridSystem(scheme="persistent", checkpoint_interval_ms=10.0)
    # Build the system by hand so the scheme carries the primitive.
    scheme = PersistentScheme(primitive_name=primitive)
    from repro.gemos.kernel import Kernel

    system.kernel = Kernel(system.machine, system.nvm_store, scheme)
    system.scheme = scheme
    system.manager = PersistenceManager(system.kernel, scheme, 10.0)
    recover(system.kernel, scheme)
    system.spawn("m")
    cycles = vma_churn(system, 32 * MiB, 16 * MiB, churn_rounds=2)
    system.shutdown()
    return ms_from_cycles(cycles)


def test_consistency_primitives(benchmark):
    def run():
        return {name: _run(name) for name in ("undo", "redo", "nolog")}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_primitives",
        {
            "experiment": "ablation: NVM consistency primitive (persistent PT)",
            "rows": [
                {
                    "primitive": name,
                    "exec_ms": round(ms, 2),
                    "vs_redo": round(ms / times["redo"], 3),
                }
                for name, ms in times.items()
            ],
        },
    )
    # Undo logging is the most expensive wrapper; skipping logging
    # entirely is at most as expensive as redo.
    assert times["undo"] > times["redo"] >= times["nolog"]
