"""Ablation: SSP page-consolidation thread interval.

Section III-B: "it also allows carrying out additional studies on the
influence of page consolidation thread invocation frequency on an
application by varying the thread time interval, which is not explored
in the original SSP proposal."  This is that study.
"""

from conftest import write_result

from repro.harness.experiments import (
    _install_program,
    _replay_system,
    _nvm_span,
    _run_repeated,
)
from repro.ssp.manager import SspManager
from repro.workloads import generate_ycsb


def _run(image, consolidation_ms: float, passes: int = 6) -> int:
    system = _replay_system()
    process, program = _install_program(system, image)
    ssp = SspManager(
        system.kernel,
        process,
        consistency_interval_ms=5.0,
        consolidation_interval_ms=consolidation_ms,
    )
    lo, hi = _nvm_span(process)
    start = system.machine.clock
    ssp.checkpoint_start(lo, hi)
    _run_repeated(system, program, process, passes)
    ssp.checkpoint_end()
    cycles = system.machine.clock - start
    system.shutdown()
    return cycles


def test_consolidation_interval(benchmark):
    image = generate_ycsb(total_ops=40_000)

    def run():
        return {ms: _run(image, ms) for ms in (0.25, 1.0, 4.0)}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_consolidation",
        {
            "experiment": "ablation: SSP consolidation interval",
            "rows": [
                {
                    "consolidation_ms": ms,
                    "cycles": c,
                    "vs_1ms": round(c / costs[1.0], 4),
                }
                for ms, c in costs.items()
            ],
        },
    )
    # A more frequent consolidation thread costs more (the paper's
    # rationale for fixing it at 1 ms rather than lower).
    assert costs[0.25] >= costs[1.0] >= costs[4.0]
