"""Table V: number of pages migrated per workload and threshold.

Paper shape: migrated-page counts fall steeply with the fetch
threshold (Ycsb_mem: ~13x fewer at Th-25 and ~101x fewer at Th-50
than at Th-5).
"""

from collections import defaultdict

from conftest import write_result


def test_table5(benchmark, fig6_result):
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    table5 = {
        "experiment": "table5",
        "rows": [
            {
                "benchmark": r["benchmark"],
                "threshold": r["threshold"],
                "pages_migrated": r["pages_migrated"],
            }
            for r in result["rows"]
        ],
    }
    write_result("table5", table5)
    by_workload = defaultdict(dict)
    for row in result["rows"]:
        by_workload[row["benchmark"]][row["threshold"]] = row["pages_migrated"]
    for name, series in by_workload.items():
        # monotone decrease with threshold, and a steep drop overall.
        assert series[5] >= series[25] >= series[50], (name, series)
        assert series[5] > 0, name
    # the zipf-skewed store shows the paper's steep threshold cliff.
    ycsb = by_workload["ycsb_mem"]
    assert ycsb[5] >= 4 * max(ycsb[50], 1)
