"""Study: memory energy under different data placements.

The paper's introduction motivates hybrid memory by energy ("reduce
energy cost"); this study quantifies the trade with the energy model:
all-DRAM placement pays background (refresh) power on the whole DRAM
capacity, all-NVM placement pays higher dynamic energy per access and
longer runtimes.
"""

from conftest import write_result

from repro.mem.energy import EnergyModel
from repro.platform import HybridSystem
from repro.prep.codegen import PlacementPolicy, ReplayProgram
from repro.workloads import generate_ycsb


def _run(image, placement):
    system = HybridSystem(persistence=False)
    system.boot()
    proc = system.spawn(image.name)
    program = ReplayProgram(image, placement)
    program.install(system.kernel, proc)
    for _ in range(4):
        proc.registers["pc"] = 0
        program.run(system.kernel, proc)
    layout = system.machine.config.layout
    report = EnergyModel().report(
        system.stats, system.machine.clock, layout.dram_bytes, layout.nvm_bytes
    )
    elapsed = system.machine.clock
    system.shutdown()
    return elapsed, report


def test_placement_energy(benchmark):
    image = generate_ycsb(total_ops=50_000)

    def run():
        return {
            policy.value: _run(image, policy)
            for policy in (PlacementPolicy.ALL_DRAM, PlacementPolicy.ALL_NVM)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "study_energy",
        {
            "experiment": "study: placement vs memory energy",
            "rows": [
                {
                    "placement": name,
                    "exec_ms": round(cycles / 3e6, 3),
                    "dynamic_mj": round(report.dynamic_mj, 4),
                    "background_mj": round(report.background_mj, 4),
                    "total_mj": round(report.total_mj, 4),
                }
                for name, (cycles, report) in results.items()
            ],
        },
    )
    dram_cycles, dram_report = results["all_dram"]
    nvm_cycles, nvm_report = results["all_nvm"]
    # DRAM placement is faster but pays more dynamic energy per unit
    # time is irrelevant — the decisive asymmetries:
    assert dram_cycles < nvm_cycles  # NVM latency costs time
    assert nvm_report.components_mj["nvm.dynamic"] > (
        dram_report.components_mj["nvm.dynamic"]
    )
    # Background power always dwarfs NVM standby.
    for _name, (_cycles, report) in results.items():
        assert (
            report.components_mj["dram.background"]
            > report.components_mj["nvm.background"]
        )
