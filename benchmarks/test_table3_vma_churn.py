"""Table III: execution time vs mmap/munmap churn size.

Paper shape: both schemes grow with the alloc/free size (~1.6x
persistent, ~1.5x rebuild from 64 MB to 256 MB) and rebuild is far
slower throughout.
"""

from conftest import bench_scale, write_result

from repro.harness.experiments import run_table3


def test_table3(benchmark):
    result = benchmark.pedantic(
        run_table3,
        kwargs={
            "churn_sizes_mb": (64, 128, 256),
            "total_mb": 512,
            "scale": bench_scale(),
        },
        rounds=1,
        iterations=1,
    )
    write_result("table3", result)
    rows = result["rows"]
    assert all(r["rebuild_ms"] > r["persistent_ms"] for r in rows)
    persistent = [r["persistent_ms"] for r in rows]
    rebuild = [r["rebuild_ms"] for r in rows]
    assert persistent == sorted(persistent)
    assert rebuild == sorted(rebuild)
    # growth factors from the smallest to the largest churn size are
    # moderate (paper: ~1.6x / ~1.5x).
    assert 1.1 < persistent[-1] / persistent[0] < 4
