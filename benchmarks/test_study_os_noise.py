"""Extension study: OS activity and cache pollution under HSCC.

Section III-C: "As Kindle provides a full-system simulation, it allows
studying ... the influence of other OS activities such as context
switches, and the effect of cache pollution due to OS activities on
migration" — the insight user-level simulators (ZSim) cannot produce.
This study runs the HSCC workload with and without periodic OS
background work and quantum-based context switching.
"""

from conftest import write_result

from repro.gemos.scheduler import OsNoiseSource
from repro.harness.experiments import _install_program, _replay_system, _run_repeated
from repro.hscc.manager import HsccManager
from repro.workloads import generate_ycsb


def _run(image, with_noise: bool, passes: int = 6) -> int:
    system = _replay_system()
    process, program = _install_program(system, image)
    manager = HsccManager(
        system.kernel,
        process,
        fetch_threshold=5,
        migration_interval_ms=4.0,
        pool_pages=256,
    )
    noise = None
    if with_noise:
        # Kernel background work thrashing the caches several times per
        # migration interval.
        noise = OsNoiseSource(
            system.kernel, interval_ms=0.25, lines_per_tick=4096,
            buffer_pages=512,
        )
        noise.start()
    cycles = _run_repeated(system, program, process, passes)
    if noise is not None:
        noise.stop()
    manager.disarm()
    system.shutdown()
    return cycles


def test_os_noise_influence(benchmark):
    image = generate_ycsb(total_ops=40_000)

    def run():
        return {
            "quiet": _run(image, with_noise=False),
            "noisy": _run(image, with_noise=True),
        }

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "study_os_noise",
        {
            "experiment": "study: OS background activity under HSCC",
            "rows": [
                {
                    "configuration": name,
                    "cycles": c,
                    "slowdown": round(c / cycles["quiet"], 4),
                }
                for name, c in cycles.items()
            ],
        },
    )
    # Background OS activity must cost the application real time.
    assert cycles["noisy"] > cycles["quiet"] * 1.02
