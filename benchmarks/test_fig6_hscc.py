"""Fig. 6: HSCC OS-migration overhead vs fetch threshold.

Paper shape: execution time with OS migration activity charged is
above the hardware-only baseline for every workload, and the overhead
falls as the fetch threshold rises (fewer candidate pages migrate).
"""

from collections import defaultdict

from repro.harness.experiments import run_fig6  # noqa: F401 (session fixture)


def test_fig6(benchmark, fig6_result):
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    by_workload = defaultdict(dict)
    for row in result["rows"]:
        by_workload[row["benchmark"]][row["threshold"]] = row
    for name, series in by_workload.items():
        # OS activity costs something wherever migration really runs;
        # rows with near-zero migration sit at 1.0 within timer-
        # alignment noise.
        assert all(
            r["normalized_time"] > 0.99 for r in series.values()
        ), name
        assert series[5]["normalized_time"] > 1.005, name
        # overhead falls (or stays flat) as the threshold rises.
        assert (
            series[5]["normalized_time"] + 0.01
            >= series[50]["normalized_time"]
        ), (name, {t: r["normalized_time"] for t, r in series.items()})
