"""Section V-D study: NVM technologies beyond PCM.

"We can use Kindle to study other NVM technologies by changing NVM
interface parameters in gem5."  This sweep re-runs the persistent-
scheme sequential micro-benchmark with PCM, STT-RAM and ReRAM NVM
interfaces: faster write paths shrink the cost of the consistency
machinery (page zeroing, PTE logging, clwb+fence).
"""

from conftest import write_result

from repro.common.config import (
    NVM_TECHNOLOGIES,
    MachineConfig,
    small_machine_config,
)
from repro.common.units import MiB, ms_from_cycles
from repro.platform import HybridSystem
from repro.workloads.microbench import seq_alloc_access


def _run(technology: str) -> float:
    base = small_machine_config(dram_bytes=64 * MiB, nvm_bytes=128 * MiB)
    config = MachineConfig(layout=base.layout, nvm=NVM_TECHNOLOGIES[technology])
    system = HybridSystem(
        config=config, scheme="persistent", checkpoint_interval_ms=10.0
    )
    system.boot()
    system.spawn("m")
    cycles = seq_alloc_access(system, 32 * MiB, touches_per_page=4)
    system.shutdown()
    return ms_from_cycles(cycles)


def test_nvm_technologies(benchmark):
    def run():
        return {tech: _run(tech) for tech in NVM_TECHNOLOGIES}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "study_nvm_technologies",
        {
            "experiment": "study: NVM interface technology (Section V-D)",
            "rows": [
                {
                    "technology": tech,
                    "exec_ms": round(ms, 2),
                    "vs_pcm": round(ms / times["pcm"], 3),
                }
                for tech, ms in times.items()
            ],
        },
    )
    # Write latency ordering carries through end to end.
    assert times["stt-ram"] < times["reram"] < times["pcm"]
    assert times["pcm"] / times["stt-ram"] > 1.5
