"""Table VI: % of OS migration time in page selection vs page copy.

Paper shape: page copy dominates (62.65%-98.63%), but page selection
spikes when the DRAM pool runs out of free/clean pages and dirty
copy-backs happen during selection.
"""

from conftest import write_result


def test_table6(benchmark, fig6_result):
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    table6 = {
        "experiment": "table6",
        "rows": [
            {
                "benchmark": r["benchmark"],
                "threshold": r["threshold"],
                "selection_pct": round(r["selection_pct"], 2),
                "copy_pct": round(r["copy_pct"], 2),
                "dirty_copybacks": r["dirty_copybacks"],
            }
            for r in result["rows"]
        ],
    }
    write_result("table6", table6)
    for row in result["rows"]:
        if row["pages_migrated"] == 0:
            continue
        assert abs(row["selection_pct"] + row["copy_pct"] - 100.0) < 1e-6
        # Page copy dominates except when the pool runs dry and dirty
        # copy-backs land in selection time (the paper's G500/Ycsb
        # Th-5 spikes).
        if row["dirty_copybacks"] == 0:
            assert row["copy_pct"] > 50.0, row
        else:
            assert row["selection_pct"] > 10.0, row
