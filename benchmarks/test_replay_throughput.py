"""Replay-throughput trajectory bench (ops/sec of the simulator itself).

Unlike the paper benches (which regenerate tables/figures of *simulated*
results), this one measures the simulator: wall-clock throughput of the
replay hot path per scenario, persisted to ``benchmarks/results/`` next
to the paper artifacts.  The committed trajectory lives in the repo-root
``BENCH_machine.json`` (see README); this bench keeps a smoke-scale copy
flowing through the same results pipeline and asserts the shape that
must hold for any healthy tree: scenarios that touch more machinery are
slower, and simulated clocks stay deterministic run to run.
"""

from conftest import write_result

from repro.harness.bench import SMOKE_OPS, run_bench, run_scenario


def test_replay_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_bench(smoke=True), rounds=1, iterations=1
    )
    rates = report["current"]["ops_per_sec"]
    rows = [
        {
            "scenario": name,
            "ops": report["current"]["ops"][name],
            "ops_per_sec": round(rate),
            "final_clock": report["current"]["final_clock"][name],
        }
        for name, rate in rates.items()
    ]
    write_result(
        "replay_throughput", {"experiment": "replay throughput", "rows": rows}
    )
    # The pure hot path outruns every scenario that leaves the L1.
    assert rates["l1_resident"] > rates["llc_resident"]
    assert rates["l1_resident"] > rates["nvm_miss_heavy"]
    assert rates["l1_resident"] > rates["fault_heavy"]


def test_simulated_clock_is_timing_independent():
    """Wall-clock speed must never leak into simulated time."""
    ops = SMOKE_OPS["nvm_miss_heavy"]
    first = run_scenario("nvm_miss_heavy", ops, repeats=1)
    second = run_scenario("nvm_miss_heavy", ops, repeats=2)
    assert first["final_clock"] == second["final_clock"]
