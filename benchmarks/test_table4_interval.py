"""Table IV: checkpoint-interval sweep (10 ms / 100 ms / 1 s).

Paper shape: the persistent scheme is insensitive to the interval; the
rebuild scheme improves ~5x from 10 ms to 100 ms and drops *below* the
persistent scheme at 1 s.
"""

import pytest
from conftest import bench_scale, write_result

from repro.harness.experiments import run_table4


def test_table4(benchmark):
    result = benchmark.pedantic(
        run_table4,
        kwargs={
            "churn_sizes_mb": (64, 128, 256),
            "total_mb": 512,
            "scale": bench_scale(),
        },
        rounds=1,
        iterations=1,
    )
    write_result("table4", result)
    rows = result["rows"]
    for churn in {r["churn_mb"] for r in rows}:
        per_interval = {
            r["interval_ms"]: r for r in rows if r["churn_mb"] == churn
        }
        persistent = [r["persistent_ms"] for r in per_interval.values()]
        # persistent: flat across intervals.
        assert max(persistent) / min(persistent) < 1.05
        # rebuild: large win from 10 -> 100 ms.
        assert (
            per_interval[10.0]["rebuild_ms"]
            > 2 * per_interval[100.0]["rebuild_ms"]
        )
        # crossover at 1 s: rebuild beats persistent.
        assert (
            per_interval[1000.0]["rebuild_ms"]
            < per_interval[1000.0]["persistent_ms"]
        )
