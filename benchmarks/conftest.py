"""Benchmark fixtures and result-artifact helpers.

Every benchmark regenerates one paper table/figure via the harness
drivers and writes the formatted rows to ``benchmarks/results/`` so the
numbers survive pytest's output capture.  Heavy shared runs (the HSCC
sweep feeding Fig. 6 and Tables V/VI) are session-scoped.

Scale note: workload benchmarks replay scaled-down instances (the paper
uses 10M-op traces on multi-hour gem5 runs); region sizes for the
persistence micro-benchmarks default to the paper's.  Set
``KINDLE_BENCH_SCALE`` (e.g. ``0.25``) to shrink the persistence
experiments further for quick runs.
"""

import os
from pathlib import Path

import pytest

from repro.harness.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("KINDLE_BENCH_SCALE", "1.0"))


def write_result(name: str, result: dict) -> None:
    """Persist one experiment's rows as an aligned text table."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows = result["rows"]
    if not rows:
        return
    headers = list(rows[0].keys())
    table = format_table(headers, [[row[h] for h in headers] for row in rows])
    (RESULTS_DIR / f"{name}.txt").write_text(
        f"== {result['experiment']} ==\n{table}\n"
    )


@pytest.fixture(scope="session")
def fig6_result():
    """One HSCC sweep shared by the Fig. 6 / Table V / Table VI benches.

    Uses the paper's thresholds (5/25/50) on the cache-scaled HSCC
    platform (see ``repro.harness.experiments.hscc_study_config``) with
    the migration interval time-compressed to 4 ms so one interval
    covers about one pass of the scaled trace -- the same ops-per-
    interval the paper's 31.25 ms interval sees on full-size traces.
    """
    from repro.harness.experiments import run_fig6

    result = run_fig6(
        total_ops=60_000,
        thresholds=(5, 25, 50),
        migration_interval_ms=4.0,
        target_ms=60.0,
    )
    write_result("fig6", result)
    return result
