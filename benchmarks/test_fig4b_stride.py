"""Fig. 4b: execution time vs access stride (1 GB / 2 MB / 4 KB).

Paper shape: the persistent scheme pays more when strides populate
many page-table levels (1 GB, 2 MB) and wins when modifications are
minimal (4 KB).
"""

from conftest import write_result

from repro.harness.experiments import run_fig4b


def test_fig4b(benchmark):
    result = benchmark.pedantic(run_fig4b, rounds=1, iterations=1)
    write_result("fig4b", result)
    by_stride = {r["stride"]: r["ratio"] for r in result["rows"]}
    # persistent/rebuild ratio falls as the stride shrinks...
    assert by_stride["1GB"] > by_stride["2MB"] > by_stride["4KB"]
    # ...is clearly above 1 for the sparse strides...
    assert by_stride["1GB"] > 1.1
    # ...and the schemes flip (or tie) at 4 KB.
    assert by_stride["4KB"] <= 1.02
