"""Ablation: HSCC DRAM pool size (the paper fixes 512 pages).

Pool capacity sets how much of the hot set DRAM can cache: a bigger
pool admits more migrations per interval *and* retains cached pages
long enough for stores to dirty them, so evictions increasingly demand
copy-backs during page selection — the ingredients of the Table VI
selection-time behaviour.
"""

from conftest import write_result

from repro.harness.experiments import _run_hscc_once
from repro.workloads import generate_ycsb


def test_pool_size(benchmark):
    image = generate_ycsb(total_ops=40_000)

    def run():
        out = {}
        for pool_pages in (64, 256, 1024):
            out[pool_pages] = _run_hscc_once(
                image,
                fetch_threshold=5,
                charge_os=True,
                migration_interval_ms=4.0,
                pool_pages=pool_pages,
                target_ms=40.0,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_pool_size",
        {
            "experiment": "ablation: HSCC DRAM pool size",
            "rows": [
                {
                    "pool_pages": pool,
                    "pages_migrated": r["pages_migrated"],
                    "dirty_copybacks": r["dirty_copybacks"],
                    "selection_cycles": r["selection_cycles"],
                    "copy_cycles": r["copy_cycles"],
                }
                for pool, r in results.items()
            ],
        },
    )
    # Capacity admits migrations: strictly more with every doubling.
    assert (
        results[64]["pages_migrated"]
        < results[256]["pages_migrated"]
        < results[1024]["pages_migrated"]
    )
    # Pages retained long enough get dirtied, so copy-backs (selection
    # -time work) appear as the pool grows.
    assert results[1024]["dirty_copybacks"] >= results[64]["dirty_copybacks"]
    assert results[64]["pages_migrated"] > 0
