"""Table II: benchmark details (op counts, read/write mixes)."""

from conftest import write_result

from repro.harness.experiments import run_table2


def test_table2(benchmark):
    result = benchmark.pedantic(
        run_table2, kwargs={"total_ops": 100_000}, rounds=1, iterations=1
    )
    write_result("table2", result)
    for row in result["rows"]:
        assert abs(row["read_pct"] - row["paper_read_pct"]) <= 4, row
