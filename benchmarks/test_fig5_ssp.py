"""Fig. 5: SSP memory-consistency overhead vs consistency interval.

Paper shape: normalized execution time falls as the interval widens
(1 ms -> 10 ms shrinks the consistency overhead by ~3x on average).
"""

from collections import defaultdict

from conftest import write_result

from repro.harness.experiments import run_fig5


def test_fig5(benchmark):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"total_ops": 60_000, "target_ms": 30.0},
        rounds=1,
        iterations=1,
    )
    write_result("fig5", result)
    by_workload = defaultdict(dict)
    for row in result["rows"]:
        by_workload[row["benchmark"]][row["interval_ms"]] = row["normalized_time"]
    overhead_reductions = []
    for name, series in by_workload.items():
        # consistency costs something, always.
        assert all(v > 1.0 for v in series.values()), (name, series)
        # monotone: wider interval, lower overhead.
        assert series[1.0] >= series[5.0] >= series[10.0], (name, series)
        overhead_reductions.append(
            (series[1.0] - 1.0) / (series[10.0] - 1.0)
        )
    # Average overhead reduction from 1 ms to 10 ms is a few x
    # (paper: ~3x).
    mean_reduction = sum(overhead_reductions) / len(overhead_reductions)
    assert mean_reduction > 1.5
