"""Study: prefetching is worth more in front of NVM than DRAM.

An LLC miss served by PCM costs ~3x one served by DRAM, so hiding
streaming misses with a stride prefetcher buys disproportionately more
on NVM-resident data — a hybrid-memory-specific argument for
aggressive prefetch.
"""

from conftest import write_result

from repro.arch.prefetch import StridePrefetcher
from repro.common.units import CACHE_LINE, PAGE_SIZE
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.platform import HybridSystem

RW = PROT_READ | PROT_WRITE
SCAN_LINES = 4096


def _scan_cycles(nvm: bool, prefetch: bool) -> int:
    system = HybridSystem(persistence=False)
    system.boot()
    if prefetch:
        system.machine.attach_extension(StridePrefetcher(degree=4))
    proc = system.spawn("scan")
    flags = MAP_NVM if nvm else 0
    addr = system.kernel.sys_mmap(
        proc, None, SCAN_LINES * CACHE_LINE, RW, flags
    )
    # Warm the mappings so the measured loop is pure memory behavior.
    for page in range(SCAN_LINES * CACHE_LINE // PAGE_SIZE):
        system.machine.access(addr + page * PAGE_SIZE, 8, False)
    start = system.machine.clock
    for line in range(SCAN_LINES):
        system.machine.access(addr + line * CACHE_LINE, 8, False)
    cycles = system.machine.clock - start
    system.shutdown()
    return cycles


def test_prefetch_benefit_by_technology(benchmark):
    def run():
        out = {}
        for tech in ("dram", "nvm"):
            base = _scan_cycles(nvm=tech == "nvm", prefetch=False)
            fast = _scan_cycles(nvm=tech == "nvm", prefetch=True)
            out[tech] = (base, fast)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for tech, (base, fast) in results.items():
        rows.append(
            {
                "technology": tech,
                "baseline_cycles": base,
                "prefetch_cycles": fast,
                "speedup": round(base / fast, 3),
            }
        )
    write_result(
        "study_prefetch",
        {"experiment": "study: stride prefetch benefit by technology", "rows": rows},
    )
    dram_speedup = results["dram"][0] / results["dram"][1]
    nvm_speedup = results["nvm"][0] / results["nvm"][1]
    assert nvm_speedup > 1.2  # prefetching pays at all
    assert nvm_speedup > dram_speedup  # and pays *more* in front of NVM
