"""Unit tests for the vectorized batch-replay engine.

The byte-identical batch-vs-scalar gating lives in
``test_golden_equivalence.py``; these tests pin the engine's contract
details — input handling, fallback triggers, interleaving with direct
``Machine.access`` calls — and the ``detach_extension`` bookkeeping the
engine's fallback logic relies on.
"""

import pytest

from repro.arch.hooks import HardwareExtension
from repro.arch.machine import Machine
from repro.common.config import small_machine_config
from repro.harness.bench import SCENARIOS
from repro.prep.trace import PackedTrace
from repro.replay import BatchReplayer, replay_batch


def _fingerprint(machine: Machine):
    return machine.stats.dump(), machine.clock


class TestBatchReplayer:
    def test_rejects_nonpositive_chunk(self):
        machine, _ = SCENARIOS["l1_resident"](10)
        with pytest.raises(ValueError, match="chunk"):
            BatchReplayer(machine, chunk=0)

    def test_accepts_ops_and_packed_traces(self):
        machine_a, trace = SCENARIOS["l1_resident"](1500)
        replay_batch(machine_a, trace)
        machine_b, trace = SCENARIOS["l1_resident"](1500)
        replay_batch(machine_b, PackedTrace.from_ops(trace))
        assert _fingerprint(machine_a) == _fingerprint(machine_b)

    def test_chunk_size_does_not_change_results(self):
        reference = None
        for chunk in (1, 7, 512, 100_000):
            machine, trace = SCENARIOS["l1_resident"](1500)
            replay_batch(machine, trace, chunk=chunk)
            fingerprint = _fingerprint(machine)
            if reference is None:
                reference = fingerprint
            else:
                assert fingerprint == reference, f"chunk={chunk}"

    def test_op_split_accounts_for_every_op(self):
        machine, trace = SCENARIOS["l1_resident"](2000)
        replayer = replay_batch(machine, trace)
        assert replayer.batched_ops + replayer.scalar_ops == len(trace)
        assert replayer.batched_ops > 0

    def test_extension_forces_scalar_fallback(self):
        machine, trace = SCENARIOS["l1_extensions"](1000)
        replayer = replay_batch(machine, trace)
        assert replayer.batched_ops == 0
        assert replayer.scalar_ops == 1000

    def test_disabled_fast_path_forces_scalar_fallback(self):
        machine, trace = SCENARIOS["l1_resident"](1000)
        machine.set_fast_path(False)
        replayer = replay_batch(machine, trace)
        assert replayer.batched_ops == 0

    def test_os_mode_forces_scalar_fallback(self):
        machine, trace = SCENARIOS["l1_resident"](1000)
        with machine.os_region("pinned"):
            replayer = replay_batch(machine, trace)
        assert replayer.batched_ops == 0

    def test_interleaves_with_direct_access(self):
        """The replayer owns no state: mixing batch replay with direct
        scalar calls on the same machine must match an all-scalar run."""
        scalar_machine, trace = SCENARIOS["l1_resident"](3000)
        for vaddr, size, is_write in trace:
            scalar_machine.access(vaddr, size, is_write)

        mixed_machine, trace = SCENARIOS["l1_resident"](3000)
        replayer = BatchReplayer(mixed_machine)
        replayer.replay(trace[:1000])
        for vaddr, size, is_write in trace[1000:1100]:
            mixed_machine.access(vaddr, size, is_write)
        replayer.replay(trace[1100:])
        assert _fingerprint(mixed_machine) == _fingerprint(scalar_machine)

    def test_zero_size_op_raises_like_scalar(self):
        machine, _ = SCENARIOS["l1_resident"](10)
        with pytest.raises(ValueError):
            machine.access(0, 0, False)
        machine, _ = SCENARIOS["l1_resident"](10)
        with pytest.raises(Exception):
            replay_batch(machine, [(0, 0, False)])


class TestDetachExtension:
    def test_detach_restores_fast_path(self):
        machine = Machine(small_machine_config())
        machine.set_fast_path(True)
        extension = HardwareExtension()
        machine.attach_extension(extension)
        assert not machine._fast_ok  # noqa: SLF001
        machine.detach_extension(extension)
        assert machine._fast_ok  # noqa: SLF001
        assert machine.extensions == []

    def test_detach_keeps_fast_path_off_when_others_remain(self):
        machine = Machine(small_machine_config())
        machine.set_fast_path(True)
        first, second = HardwareExtension(), HardwareExtension()
        machine.attach_extension(first)
        machine.attach_extension(second)
        machine.detach_extension(first)
        assert not machine._fast_ok  # noqa: SLF001
        machine.detach_extension(second)
        assert machine._fast_ok  # noqa: SLF001

    def test_order_independent_with_set_fast_path(self):
        """set_fast_path before or after the attach/detach cycle must
        land on the same state."""
        extension = HardwareExtension()

        before = Machine(small_machine_config())
        before.set_fast_path(True)
        before.attach_extension(extension)
        before.detach_extension(extension)

        after = Machine(small_machine_config())
        after.attach_extension(extension)
        after.set_fast_path(True)
        after.detach_extension(extension)

        assert before._fast_ok and after._fast_ok  # noqa: SLF001

    def test_detach_respects_disabled_fast_path(self):
        machine = Machine(small_machine_config())
        machine.set_fast_path(False)
        extension = HardwareExtension()
        machine.attach_extension(extension)
        machine.detach_extension(extension)
        assert not machine._fast_ok  # noqa: SLF001

    def test_detach_unattached_raises(self):
        machine = Machine(small_machine_config())
        with pytest.raises(ValueError, match="not attached"):
            machine.detach_extension(HardwareExtension())

    def test_batch_replay_resumes_after_detach(self):
        """Attach → scalar fallback; detach → batching resumes, and the
        result still matches an all-scalar machine doing the same."""
        extension = HardwareExtension()

        def run(machine, trace, batch):
            half = len(trace) // 2
            machine.attach_extension(extension)
            if batch:
                replayer = BatchReplayer(machine)
                replayer.replay(trace[:half])
                machine.detach_extension(extension)
                replayer.replay(trace[half:])
                return replayer
            for vaddr, size, is_write in trace[:half]:
                machine.access(vaddr, size, is_write)
            machine.detach_extension(extension)
            for vaddr, size, is_write in trace[half:]:
                machine.access(vaddr, size, is_write)
            return None

        scalar_machine, trace = SCENARIOS["l1_resident"](2000)
        run(scalar_machine, trace, batch=False)
        batch_machine, trace = SCENARIOS["l1_resident"](2000)
        replayer = run(batch_machine, trace, batch=True)
        assert replayer.scalar_ops >= 1000  # attached half fell back
        assert replayer.batched_ops > 0  # detached half re-engaged
        assert _fingerprint(batch_machine) == _fingerprint(scalar_machine)
