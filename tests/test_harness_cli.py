"""``python -m repro.harness`` argument parsing and dispatch.

Each subcommand must invoke its driver with the options the user gave —
including the sweep-engine flags (``--jobs``, ``--no-cache``,
``--cache-dir``, ``--sweep-stats``).  Drivers are monkeypatched so these
tests exercise only the CLI layer.
"""

import json

import pytest

from repro.harness import experiments
from repro.harness.__main__ import main


@pytest.fixture()
def capture(monkeypatch):
    """Monkeypatch every experiment driver to record its call."""
    calls = {}

    def recorder(name):
        def fake(**kwargs):
            calls[name] = kwargs
            return {"experiment": name, "rows": [{"col": 1}]}

        return fake

    for name in ("run_table2", "run_fig4a", "run_fig4b", "run_table3",
                 "run_table4", "run_fig5", "run_fig6"):
        monkeypatch.setattr(experiments, name, recorder(name))
    return calls


class TestExperimentDispatch:
    def test_each_experiment_calls_its_driver(self, capture):
        for experiment, driver in [
            ("table2", "run_table2"),
            ("fig4a", "run_fig4a"),
            ("fig4b", "run_fig4b"),
            ("table3", "run_table3"),
            ("table4", "run_table4"),
            ("fig5", "run_fig5"),
            ("fig6", "run_fig6"),
            ("table5", "run_fig6"),
            ("table6", "run_fig6"),
        ]:
            capture.clear()
            assert main([experiment, "--no-cache"]) == 0
            assert driver in capture, experiment

    def test_scale_and_ops_flow_through(self, capture):
        main(["fig4a", "--scale", "0.25", "--no-cache"])
        assert capture["run_fig4a"]["scale"] == 0.25
        main(["fig5", "--ops", "7000", "--no-cache"])
        assert capture["run_fig5"]["total_ops"] == 7000

    def test_jobs_flag_sizes_the_engine(self, capture):
        main(["fig4a", "-j", "3", "--no-cache"])
        engine = capture["run_fig4a"]["engine"]
        assert engine.jobs == 3
        assert engine.cache is None  # --no-cache

    def test_cache_dir_flag_relocates_the_cache(self, capture, tmp_path):
        main(["fig4a", "-j", "1", "--cache-dir", str(tmp_path / "c")])
        engine = capture["run_fig4a"]["engine"]
        assert engine.cache is not None
        assert engine.cache.root == tmp_path / "c"

    def test_default_engine_caches_under_artifacts(self, capture):
        main(["table2", "-j", "1"])
        engine = capture["run_table2"]["engine"]
        assert engine.cache is not None
        assert engine.cache.root.parts[-2:] == ("artifacts", "cache")

    def test_sweep_stats_written(self, capture, tmp_path):
        stats_path = tmp_path / "nested" / "stats.json"
        main(["fig4b", "-j", "2", "--no-cache", "--sweep-stats", str(stats_path)])
        stats = json.loads(stats_path.read_text())
        assert stats["jobs"] == 2
        assert set(stats) >= {"cells", "cache_hits", "executed", "elapsed_s"}


class TestBenchDispatch:
    def test_bench_options_flow_through(self, monkeypatch, tmp_path):
        seen = {}

        def fake_bench_main(out, smoke=False, repeats=3, jobs=None, batch=False):
            seen.update(
                out=out, smoke=smoke, repeats=repeats, jobs=jobs, batch=batch
            )
            return 0

        import repro.harness.bench as bench

        monkeypatch.setattr(bench, "bench_main", fake_bench_main)
        out = tmp_path / "B.json"
        assert (
            main(["bench", "--smoke", "--batch", "--repeats", "5",
                  "--out", str(out), "-j", "4"])
            == 0
        )
        assert seen == {
            "out": str(out), "smoke": True, "repeats": 5, "jobs": 4,
            "batch": True,
        }


class TestCrashtestDispatch:
    def test_crashtest_options_flow_through(self, monkeypatch):
        seen = {}

        def fake_crashtest_main(smoke=False, scenario_names=None, engine=None):
            seen.update(smoke=smoke, scenario_names=scenario_names, engine=engine)
            return 0

        import repro.harness.crashtest as crashtest

        monkeypatch.setattr(crashtest, "crashtest_main", fake_crashtest_main)
        assert (
            main(["crashtest", "--smoke", "--scenario", "ssp-commit",
                  "--scenario", "multiprocess", "-j", "2", "--no-cache"])
            == 0
        )
        assert seen["smoke"] is True
        assert seen["scenario_names"] == ["ssp-commit", "multiprocess"]
        assert seen["engine"].jobs == 2
        assert seen["engine"].cache is None

    def test_crashtest_propagates_exit_code(self, monkeypatch):
        import repro.harness.crashtest as crashtest

        monkeypatch.setattr(
            crashtest,
            "crashtest_main",
            lambda smoke=False, scenario_names=None, engine=None: 1,
        )
        assert main(["crashtest", "--no-cache"]) == 1


class TestParserRejects:
    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_jobs_requires_an_integer(self):
        with pytest.raises(SystemExit):
            main(["fig4a", "--jobs", "lots"])
