"""Property tests: random workloads × random crash points.

Hypothesis drives :class:`~repro.faults.scenarios.RandomOpsScenario`
(a seeded stream of mmap/munmap/mprotect/store/checkpoint ops) and
picks a crash point anywhere in the run.  Whatever the interleaving,
recovery must land on a prefix-consistent golden — never a hybrid —
under both page-table schemes.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import CrashExplorer
from repro.faults.scenarios import RandomOpsScenario

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    # Each example builds whole systems; shrinking re-runs them many
    # times for little diagnostic gain (the seed names the workload).
    phases=[p for p in hypothesis.Phase if p.name != "shrink"],
)


@given(
    seed=st.integers(min_value=0, max_value=2**16 - 1),
    frac=st.floats(min_value=0.0, max_value=1.0),
)
@_SETTINGS
@pytest.mark.parametrize("scheme", ["rebuild", "persistent"])
def test_random_crash_recovers_to_a_golden(scheme, seed, frac):
    scenario = RandomOpsScenario(scheme, seed=seed, n_ops=12)
    explorer = CrashExplorer(scenario)
    total, _labels = explorer.count_points()
    assert total > 0  # the spawn alone persists process state
    index = min(total - 1, int(frac * total))
    _ctx, result = explorer.run_point(index)
    assert not result.violations, str(result.violations[0])
    assert result.point.index == index


@given(seed=st.integers(min_value=0, max_value=2**16 - 1))
@_SETTINGS
def test_point_numbering_is_deterministic(seed):
    """Two counting passes of the same seed see identical journals."""
    scenario = RandomOpsScenario("rebuild", seed=seed, n_ops=10)
    explorer = CrashExplorer(scenario)
    total_a, labels_a = explorer.count_points()
    journal_a = [(p.kind, p.detail, p.epoch) for p in explorer.last_journal]
    total_b, labels_b = explorer.count_points()
    journal_b = [(p.kind, p.detail, p.epoch) for p in explorer.last_journal]
    assert total_a == total_b
    assert labels_a == labels_b
    assert journal_a == journal_b
