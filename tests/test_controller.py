"""Memory channel timing: row buffers and the NVM write buffer."""

import pytest

from repro.common.config import DDR4_2400, PCM, NvmBufferConfig
from repro.common.stats import Stats
from repro.common.units import cycles_from_ns
from repro.common.units import PAGE_SIZE
from repro.mem.controller import (
    HybridMemoryController,
    MemoryChannel,
    NvmWriteBuffer,
)


@pytest.fixture
def stats():
    return Stats()


class TestRowBuffer:
    def test_first_access_misses_row(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        latency = channel.read_latency(0)
        assert latency == cycles_from_ns(PCM.read_row_miss_ns)

    def test_second_access_same_row_hits(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        channel.read_latency(0)
        assert channel.read_latency(64) == cycles_from_ns(PCM.read_row_hit_ns)

    def test_different_row_same_bank_misses(self, stats):
        channel = MemoryChannel(DDR4_2400, stats, "dram", banks=4)
        channel.read_latency(0)
        # Same bank (row % banks), different row.
        other = 4 * DDR4_2400.row_size
        assert channel.read_latency(other) == cycles_from_ns(
            DDR4_2400.read_row_miss_ns
        )

    def test_reset_rows_closes_everything(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        channel.read_latency(0)
        channel.reset_rows()
        assert channel.read_latency(0) == cycles_from_ns(PCM.read_row_miss_ns)

    def test_stats_recorded(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        channel.read_latency(0)
        channel.read_latency(0)
        assert stats["nvm.read_row_miss"] == 1
        assert stats["nvm.read_row_hit"] == 1


class TestNvmWriteBuffer:
    def _buffer(self, stats, capacity=4):
        channel = MemoryChannel(PCM, stats, "nvm")
        return NvmWriteBuffer(capacity, channel, stats)

    def test_buffered_write_is_cheap(self, stats):
        buf = self._buffer(stats)
        latency = buf.enqueue(0, now=0)
        assert latency == cycles_from_ns(NvmWriteBuffer.INSERT_NS)

    def test_full_buffer_stalls(self, stats):
        buf = self._buffer(stats, capacity=2)
        buf.enqueue(0, 0)
        buf.enqueue(64, 0)
        latency = buf.enqueue(128, 0)
        assert latency > cycles_from_ns(NvmWriteBuffer.INSERT_NS)
        assert stats["nvm.write_buffer_full"] == 1

    def test_drains_free_slots_over_time(self, stats):
        buf = self._buffer(stats, capacity=2)
        buf.enqueue(0, 0)
        buf.enqueue(64, 0)
        # Far in the future everything has drained.
        latency = buf.enqueue(128, 10_000_000)
        assert latency == cycles_from_ns(NvmWriteBuffer.INSERT_NS)

    def test_drain_all_blocks_until_empty(self, stats):
        buf = self._buffer(stats)
        buf.enqueue(0, 0)
        stall = buf.drain_all(0)
        assert stall > 0
        assert buf.occupancy == 0

    def test_drain_all_noop_when_empty(self, stats):
        buf = self._buffer(stats)
        assert buf.drain_all(0) == 0

    def test_capacity_validation(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        with pytest.raises(ValueError):
            NvmWriteBuffer(0, channel, stats)

    def test_reset_discards_in_flight(self, stats):
        buf = self._buffer(stats)
        buf.enqueue(0, 0)
        buf.reset()
        assert buf.occupancy == 0
        assert buf.drain_all(0) == 0


class TestHybridController:
    def _controller(self, stats):
        return HybridMemoryController(DDR4_2400, PCM, NvmBufferConfig(), stats)

    def test_routes_reads_by_technology(self, stats):
        ctrl = self._controller(stats)
        ctrl.read(0, is_nvm=False, now=0)
        ctrl.read(0, is_nvm=True, now=0)
        assert stats["dram.reads"] == 1
        assert stats["nvm.reads"] == 1

    def test_nvm_writes_are_buffered(self, stats):
        ctrl = self._controller(stats)
        ctrl.write(0, is_nvm=True, now=0)
        assert stats["nvm.buffered_writes"] == 1

    def test_persist_barrier_drains(self, stats):
        ctrl = self._controller(stats)
        ctrl.write(0, is_nvm=True, now=0)
        assert ctrl.persist_barrier(0) > 0
        assert ctrl.persist_barrier(0) == 0

    def test_power_cycle_clears_buffer(self, stats):
        ctrl = self._controller(stats)
        ctrl.write(0, is_nvm=True, now=0)
        ctrl.power_cycle()
        assert ctrl.persist_barrier(0) == 0


class TestLastRowHitInitialisation:
    """``last_row_hit`` must be defined from construction (RBLA/tiering
    policies may poll it before the channel has seen any traffic)."""

    def test_defined_before_first_access(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        assert channel.last_row_hit is False

    def test_defined_on_fresh_machine(self):
        from repro.arch.machine import Machine
        from repro.common.config import small_machine_config

        machine = Machine(small_machine_config())
        assert machine.controller.nvm.last_row_hit is False
        assert machine.controller.dram.last_row_hit is False

    def test_reset_rows_clears_it(self, stats):
        channel = MemoryChannel(PCM, stats, "nvm")
        channel.read_latency(0)
        channel.read_latency(64)
        assert channel.last_row_hit is True
        channel.reset_rows()
        assert channel.last_row_hit is False


class TestPageSizeDerivedAccounting:
    """Wear/row-miss accounting must follow the configured page size,
    not a hardcoded ``addr >> 12``."""

    def test_wear_page_under_8k_pages(self, stats, monkeypatch):
        from repro.common import units

        monkeypatch.setattr(units, "PAGE_SIZE", 8192)
        ctrl = HybridMemoryController(DDR4_2400, PCM, NvmBufferConfig(), stats)
        addr = 3 * 8192 + 64  # page 3 under 8K pages; page 6 under 4K
        ctrl.write(addr, is_nvm=True, now=0)
        assert ctrl.nvm_page_writes == {3: 1}

    def test_row_miss_page_under_8k_pages(self, stats, monkeypatch):
        from repro.common import units

        monkeypatch.setattr(units, "PAGE_SIZE", 8192)
        ctrl = HybridMemoryController(DDR4_2400, PCM, NvmBufferConfig(), stats)
        addr = 5 * 8192  # cold row -> miss recorded against page 5
        ctrl.read(addr, is_nvm=True, now=0)
        assert ctrl.nvm_page_row_misses == {5: 1}

    def test_default_page_size_unchanged(self, stats):
        ctrl = HybridMemoryController(DDR4_2400, PCM, NvmBufferConfig(), stats)
        ctrl.write(6 * PAGE_SIZE, is_nvm=True, now=0)
        assert ctrl.nvm_page_writes == {6: 1}

    def test_rejects_non_power_of_two_page_size(self, stats, monkeypatch):
        from repro.common import units

        monkeypatch.setattr(units, "PAGE_SIZE", 3000)
        with pytest.raises(ValueError):
            HybridMemoryController(DDR4_2400, PCM, NvmBufferConfig(), stats)
