"""Four-level page table: mapping, reclamation, walks, observers."""

import pytest

from repro.arch.machine import Machine
from repro.common.config import small_machine_config
from repro.common.stats import Stats
from repro.gemos.frames import FrameAllocator
from repro.gemos.pagetable import ENTRIES_PER_TABLE, LEVELS, PageTable
from repro.mem.hybrid import MemType


@pytest.fixture
def allocator():
    return FrameAllocator(  # repro: allow-geometry(pfn range bound, not a byte size)
        MemType.DRAM, 0, 4096, Stats()
    )


@pytest.fixture
def table(allocator):
    return PageTable(allocator)


class TestMapping:
    def test_lookup_unmapped(self, table):
        assert table.lookup(5) is None

    def test_map_then_lookup(self, table):
        table.map(5, 42)
        pte = table.lookup(5)
        assert pte is not None and pte.pfn == 42 and pte.writable

    def test_map_readonly(self, table):
        table.map(5, 42, writable=False)
        assert not table.lookup(5).writable

    def test_first_map_writes_all_levels(self, table):
        writes = table.map(0, 1)
        assert writes == LEVELS  # 3 new tables + 1 leaf

    def test_adjacent_map_writes_only_leaf(self, table):
        table.map(0, 1)
        assert table.map(1, 2) == 1

    def test_distant_vpns_use_separate_subtrees(self, table):
        far = ENTRIES_PER_TABLE**3  # different level-3 slot
        table.map(0, 1)
        writes = table.map(far, 2)
        assert writes == LEVELS

    def test_valid_leaves_counter(self, table):
        table.map(0, 1)
        table.map(1, 2)
        assert table.valid_leaves == 2
        table.unmap(0)
        assert table.valid_leaves == 1

    def test_iter_leaves_sorted(self, table):
        table.map(9, 1)
        table.map(3, 2)
        assert [vpn for vpn, _ in table.iter_leaves()] == [3, 9]

    def test_update_pfn(self, table):
        table.map(5, 42)
        assert table.update_pfn(5, 43)
        assert table.lookup(5).pfn == 43

    def test_update_pfn_missing(self, table):
        assert not table.update_pfn(5, 43)

    def test_protect(self, table):
        table.map(5, 42)
        assert table.protect(5, writable=False)
        assert not table.lookup(5).writable

    def test_protect_missing(self, table):
        assert not table.protect(5, True)


class TestReclamation:
    def test_unmap_returns_pte(self, table):
        table.map(5, 42)
        pte = table.unmap(5)
        assert pte.pfn == 42
        assert table.lookup(5) is None

    def test_unmap_missing(self, table):
        assert table.unmap(5) is None

    def test_empty_tables_are_reclaimed(self, table, allocator):
        before = allocator.allocated_count  # just the root
        table.map(5, 42)
        table.unmap(5)
        assert allocator.allocated_count == before

    def test_shared_tables_survive_partial_unmap(self, table):
        table.map(0, 1)
        table.map(1, 2)
        table.unmap(0)
        assert table.lookup(1).pfn == 2

    def test_table_count(self, table):
        assert table.table_count() == 1  # root only
        table.map(0, 1)
        assert table.table_count() == LEVELS

    def test_destroy_frees_everything(self, table, allocator):
        table.map(0, 1)
        table.map(ENTRIES_PER_TABLE**3, 2)
        table.destroy()
        assert allocator.allocated_count == 0


class TestObserver:
    def test_observer_sees_every_entry_write(self, allocator):
        paddrs = []
        table = PageTable(allocator, write_observer=paddrs.append)
        table.map(0, 1)
        assert len(paddrs) == LEVELS
        table.unmap(0)
        # leaf clear + 3 parent clears from reclamation
        assert len(paddrs) == 2 * LEVELS

    def test_entry_writes_counter(self, table):
        table.map(0, 1)
        assert table.entry_writes == LEVELS


class TestHardwareWalk:
    def test_walk_finds_mapping(self, table):
        machine = Machine(small_machine_config())
        table.map(7, 12)
        assert table.hw_walk(machine, 7) == (12, True)
        assert machine.stats["walk.completed"] == 1

    def test_walk_charges_four_accesses(self, table):
        machine = Machine(small_machine_config())
        table.map(7, 12)
        machine.stats.reset()
        table.hw_walk(machine, 7)
        probes = machine.stats["l1.hit"] + machine.stats["l1.miss"]
        assert probes == LEVELS

    def test_walk_aborts_on_missing(self, table):
        machine = Machine(small_machine_config())
        assert table.hw_walk(machine, 7) is None
        assert machine.stats["walk.aborted"] == 1
