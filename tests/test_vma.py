"""VMA layout: placement, overlap handling, unmap splitting, mprotect."""

import pytest

from repro.common.errors import FaultError
from repro.common.units import GiB, MiB, PAGE_SIZE
from repro.gemos.vma import (
    MAP_FIXED,
    MAP_NVM,
    MMAP_BASE,
    PROT_READ,
    PROT_WRITE,
    AddressSpace,
    Vma,
)
from repro.mem.hybrid import MemType

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def space():
    return AddressSpace()


class TestVmaBasics:
    def test_rejects_unaligned(self):
        with pytest.raises(FaultError):
            Vma(100, PAGE_SIZE, True, MemType.DRAM)

    def test_rejects_empty(self):
        with pytest.raises(FaultError):
            Vma(PAGE_SIZE, PAGE_SIZE, True, MemType.DRAM)

    def test_properties(self):
        vma = Vma(0, 2 * PAGE_SIZE, True, MemType.NVM, "x")
        assert vma.length == 2 * PAGE_SIZE
        assert vma.pages == 2
        assert list(vma.vpn_range()) == [0, 1]
        assert vma.contains(PAGE_SIZE) and not vma.contains(2 * PAGE_SIZE)


class TestMap:
    def test_unhinted_goes_to_mmap_base(self, space):
        vma = space.map(None, PAGE_SIZE, RW)
        assert vma.start == MMAP_BASE

    def test_consecutive_maps_do_not_overlap(self, space):
        a = space.map(None, PAGE_SIZE, RW)
        b = space.map(None, PAGE_SIZE, RW)
        assert a.end <= b.start or b.end <= a.start

    def test_nvm_flag_tags_vma(self, space):
        assert space.map(None, PAGE_SIZE, RW, MAP_NVM).mem_type is MemType.NVM
        assert space.map(None, PAGE_SIZE, RW).mem_type is MemType.DRAM

    def test_hint_honored_when_free(self, space):
        vma = space.map(8 * GiB, PAGE_SIZE, RW)
        assert vma.start == 8 * GiB

    def test_overlapping_hint_falls_back(self, space):
        space.map(MMAP_BASE, PAGE_SIZE, RW)
        vma = space.map(MMAP_BASE, PAGE_SIZE, RW)
        assert vma.start != MMAP_BASE

    def test_map_fixed_overlap_raises(self, space):
        space.map(MMAP_BASE, PAGE_SIZE, RW)
        with pytest.raises(FaultError):
            space.map(MMAP_BASE, PAGE_SIZE, RW, MAP_FIXED)

    def test_length_rounds_to_pages(self, space):
        assert space.map(None, 100, RW).length == PAGE_SIZE

    def test_bad_length(self, space):
        with pytest.raises(FaultError):
            space.map(None, 0, RW)

    def test_unaligned_hint(self, space):
        with pytest.raises(FaultError):
            space.map(123, PAGE_SIZE, RW)

    def test_fills_hole_between_vmas(self, space):
        a = space.map(None, PAGE_SIZE, RW)
        b = space.map(None, PAGE_SIZE, RW)
        space.unmap(a.start, PAGE_SIZE)
        c = space.map(None, PAGE_SIZE, RW)
        assert c.start == a.start

    def test_writable_from_prot(self, space):
        assert not space.map(None, PAGE_SIZE, PROT_READ).writable
        assert space.map(None, PAGE_SIZE, RW).writable


class TestFind:
    def test_find_hit_and_miss(self, space):
        vma = space.map(None, 2 * PAGE_SIZE, RW)
        assert space.find(vma.start) is vma
        assert space.find(vma.end) is None
        assert space.find(vma.start - 1) is None

    def test_mapped_bytes(self, space):
        space.map(None, 3 * PAGE_SIZE, RW)
        assert space.mapped_bytes == 3 * PAGE_SIZE


class TestUnmap:
    def test_full_unmap(self, space):
        vma = space.map(None, 2 * PAGE_SIZE, RW)
        removed = space.unmap(vma.start, 2 * PAGE_SIZE)
        assert removed == [(vma.start, vma.end, vma)]
        assert len(space) == 0

    def test_unmap_prefix_trims(self, space):
        vma = space.map(None, 4 * PAGE_SIZE, RW)
        space.unmap(vma.start, PAGE_SIZE)
        remaining = list(space)
        assert len(remaining) == 1
        assert remaining[0].start == vma.start + PAGE_SIZE

    def test_unmap_middle_splits(self, space):
        vma = space.map(None, 3 * PAGE_SIZE, RW, MAP_NVM, name="x")
        space.unmap(vma.start + PAGE_SIZE, PAGE_SIZE)
        parts = list(space)
        assert len(parts) == 2
        assert all(p.mem_type is MemType.NVM and p.name == "x" for p in parts)

    def test_unmap_spanning_vmas(self, space):
        a = space.map(MMAP_BASE, PAGE_SIZE, RW)
        b = space.map(MMAP_BASE + PAGE_SIZE, PAGE_SIZE, RW)
        removed = space.unmap(MMAP_BASE, 2 * PAGE_SIZE)
        assert len(removed) == 2

    def test_unmap_nothing(self, space):
        assert space.unmap(MMAP_BASE, PAGE_SIZE) == []

    def test_unmap_validation(self, space):
        with pytest.raises(FaultError):
            space.unmap(MMAP_BASE, 0)
        with pytest.raises(FaultError):
            space.unmap(MMAP_BASE + 1, PAGE_SIZE)


class TestProtect:
    def test_protect_whole(self, space):
        vma = space.map(None, PAGE_SIZE, RW)
        changed = space.protect(vma.start, PAGE_SIZE, PROT_READ)
        assert len(changed) == 1 and not changed[0].writable

    def test_protect_splits(self, space):
        vma = space.map(None, 3 * PAGE_SIZE, RW)
        space.protect(vma.start + PAGE_SIZE, PAGE_SIZE, PROT_READ)
        parts = list(space)
        assert [p.writable for p in parts] == [True, False, True]


class TestSnapshot:
    def test_roundtrip(self, space):
        space.map(None, PAGE_SIZE, RW, MAP_NVM, name="heap")
        space.map(None, 2 * PAGE_SIZE, PROT_READ, name="ro")
        restored = AddressSpace.from_snapshot(space.snapshot())
        assert restored.snapshot() == space.snapshot()
