"""Set-associative cache: LRU, dirty bits, eviction, clwb semantics."""

import pytest

from repro.arch.cache import Cache
from repro.common.config import CacheConfig
from repro.common.stats import Stats


def make_cache(size=2048, assoc=2, line=64):
    return Cache(CacheConfig("T", size, assoc, hit_latency=1, line_size=line), Stats())


def same_set_lines(cache, count):
    """Line numbers that all map to set 0."""
    return [i * cache.num_sets for i in range(count)]


class TestLookupAndFill:
    def test_miss_on_empty(self):
        cache = make_cache()
        assert not cache.lookup(0, is_write=False)

    def test_hit_after_fill(self):
        cache = make_cache()
        cache.fill(0)
        assert cache.lookup(0, is_write=False)

    def test_fill_existing_line_produces_no_victim(self):
        cache = make_cache()
        cache.fill(0)
        assert cache.fill(0) is None

    def test_victim_is_lru(self):
        cache = make_cache(assoc=2)
        a, b, c = same_set_lines(cache, 3)
        cache.fill(a)
        cache.fill(b)
        victim = cache.fill(c)
        assert victim == (a, False)

    def test_lookup_refreshes_lru(self):
        cache = make_cache(assoc=2)
        a, b, c = same_set_lines(cache, 3)
        cache.fill(a)
        cache.fill(b)
        cache.lookup(a, is_write=False)  # a becomes MRU
        victim = cache.fill(c)
        assert victim == (b, False)

    def test_different_sets_do_not_conflict(self):
        cache = make_cache(assoc=1)
        cache.fill(0)
        cache.fill(1)  # different set
        assert cache.lookup(0, False) and cache.lookup(1, False)


class TestDirtyTracking:
    def test_write_hit_sets_dirty(self):
        cache = make_cache(assoc=2)
        a, b, c = same_set_lines(cache, 3)
        cache.fill(a)
        cache.lookup(a, is_write=True)
        cache.fill(b)
        victim = cache.fill(c)
        assert victim == (a, True)

    def test_fill_dirty(self):
        cache = make_cache(assoc=1)
        a, b = same_set_lines(make_cache(assoc=1), 2)
        cache.fill(a, dirty=True)
        assert cache.fill(b) == (a, True)

    def test_clean_clears_dirty_keeps_resident(self):
        cache = make_cache()
        cache.fill(0, dirty=True)
        assert cache.clean(0) is True
        assert cache.contains(0)
        assert cache.clean(0) is False  # already clean

    def test_clean_absent_line(self):
        assert make_cache().clean(0) is False

    def test_set_dirty_on_resident(self):
        cache = make_cache()
        cache.fill(0)
        assert cache.set_dirty(0)
        assert cache.dirty_lines() == [0]

    def test_set_dirty_on_absent(self):
        assert not make_cache().set_dirty(0)

    def test_invalidate_returns_dirty_bit(self):
        cache = make_cache()
        cache.fill(0, dirty=True)
        assert cache.invalidate(0) is True
        assert not cache.contains(0)
        assert cache.invalidate(0) is False


class TestMaintenance:
    def test_drop_all(self):
        cache = make_cache()
        cache.fill(0, dirty=True)
        cache.drop_all()
        assert cache.resident_lines() == 0

    def test_resident_lines(self):
        cache = make_cache()
        cache.fill(0)
        cache.fill(1)
        assert cache.resident_lines() == 2

    def test_eviction_stat(self):
        cache = make_cache(assoc=1)
        a, b = same_set_lines(cache, 2)
        cache.fill(a)
        cache.fill(b)
        assert cache.stats["t.evictions"] == 1
