"""Crash and recovery: the paper's core persistence claims, by value."""

import pytest

from repro.common.units import PAGE_SIZE
from repro.gemos.process import ProcessState
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.mem.hybrid import MemType

RW = PROT_READ | PROT_WRITE


def prepare(system, pages=4, data=b"payload!"):
    """Boot a process, map NVM, write data, checkpoint."""
    p = system.spawn("app")
    k = system.kernel
    addr = k.sys_mmap(p, None, pages * PAGE_SIZE, RW, MAP_NVM, name="heap")
    for i in range(pages):
        system.machine.store(addr + i * PAGE_SIZE, data)
    system.checkpoint()
    return p, addr


class TestBasicRecovery:
    def test_first_boot_recovers_nothing(self, any_system):
        assert any_system.kernel.processes == {}

    def test_process_recovered_with_identity(self, any_system):
        p, _ = prepare(any_system)
        pid, name = p.pid, p.name
        any_system.crash()
        (recovered,) = any_system.boot()
        assert recovered.pid == pid and recovered.name == name
        assert recovered.state is ProcessState.READY

    def test_nvm_data_survives(self, any_system):
        _, addr = prepare(any_system, pages=3)
        any_system.crash()
        (recovered,) = any_system.boot()
        any_system.kernel.switch_to(recovered)
        for i in range(3):
            assert any_system.machine.load(addr + i * PAGE_SIZE, 8) == b"payload!"

    def test_registers_restored_from_consistent_copy(self, any_system):
        p, _ = prepare(any_system)
        p.registers["pc"] = 777
        any_system.checkpoint()
        p.registers["pc"] = 999  # after the last checkpoint: lost
        any_system.crash()
        (recovered,) = any_system.boot()
        assert recovered.registers["pc"] == 777

    def test_vma_layout_restored(self, any_system):
        p, addr = prepare(any_system)
        snapshot = p.address_space.snapshot()
        any_system.crash()
        (recovered,) = any_system.boot()
        assert recovered.address_space.snapshot() == snapshot

    def test_never_checkpointed_process_is_lost(self, any_system):
        system = any_system
        system.manager.disarm()  # no periodic checkpoints
        p = system.spawn("doomed")
        addr = system.kernel.sys_mmap(p, None, PAGE_SIZE, RW, MAP_NVM)
        system.machine.store(addr, b"x")
        system.crash()
        assert system.boot() == []
        assert system.stats["recovery.unrecoverable"] >= 1

    def test_multiple_processes_recovered(self, any_system):
        k = any_system.kernel
        p1 = k.create_process("one")
        p2 = k.create_process("two")
        any_system.checkpoint()
        any_system.crash()
        recovered = any_system.boot()
        assert sorted(p.name for p in recovered) == ["one", "two"]


class TestSchemeSemantics:
    def test_rebuild_loses_post_checkpoint_mappings(self, rebuild_system):
        system = rebuild_system
        system.manager.disarm()
        p, addr = prepare(system, pages=1)
        late = system.kernel.sys_mmap(p, None, PAGE_SIZE, RW, MAP_NVM, name="late")
        system.machine.store(late, b"late")
        # VMA exists at crash only if logged+applied; it was mapped after
        # the checkpoint, so recovery drops it entirely.
        system.crash()
        (recovered,) = system.boot()
        assert recovered.address_space.find(late) is None

    def test_rebuild_reconstructs_page_table(self, rebuild_system):
        p, addr = prepare(rebuild_system, pages=2)
        mappings = {vpn: pte.pfn for vpn, pte in p.page_table.iter_leaves()}
        rebuild_system.crash()
        (recovered,) = rebuild_system.boot()
        rebuilt = {vpn: pte.pfn for vpn, pte in recovered.page_table.iter_leaves()}
        assert rebuilt == mappings
        assert rebuild_system.stats["recovery.rebuilt_mappings"] == 2

    def test_persistent_reattaches_table(self, persistent_system):
        p, addr = prepare(persistent_system, pages=2)
        table_before = p.page_table
        persistent_system.crash()
        (recovered,) = persistent_system.boot()
        assert recovered.page_table is table_before
        assert persistent_system.stats["recovery.ptbr_sets"] == 1

    def test_persistent_keeps_post_checkpoint_nvm_mappings(self, persistent_system):
        """The NVM page table is consistent per-update, so mappings made
        after the last checkpoint survive (their VMA record does too,
        via the redo log... no — the VMA is from the consistent copy,
        so only mappings whose VMA survives are kept)."""
        system = persistent_system
        p, addr = prepare(system, pages=2)
        # Map one more page inside the existing (checkpointed) VMA? The
        # VMA was fully mapped already; instead touch nothing more.
        system.crash()
        (recovered,) = system.boot()
        assert recovered.page_table.valid_leaves == 2

    def test_persistent_prunes_dram_leaves(self, persistent_system):
        system = persistent_system
        p = system.spawn("app")
        k = system.kernel
        dram_addr = k.sys_mmap(p, None, PAGE_SIZE, RW, 0, name="dram")
        nvm_addr = k.sys_mmap(p, None, PAGE_SIZE, RW, MAP_NVM, name="nvm")
        system.machine.store(dram_addr, b"v")
        system.machine.store(nvm_addr, b"p")
        system.checkpoint()
        system.crash()
        (recovered,) = system.boot()
        system.kernel.switch_to(recovered)
        # DRAM page refaults to zero; NVM page holds data.
        assert system.machine.load(dram_addr, 1) == b"\x00"
        assert system.machine.load(nvm_addr, 1) == b"p"
        assert system.stats["recovery.stale_dram_leaves"] == 1


class TestAllocatorReconciliation:
    def test_post_checkpoint_frames_reclaimed(self, rebuild_system):
        system = rebuild_system
        system.manager.disarm()
        p, addr = prepare(system, pages=1)
        # Fault 3 more NVM pages after the checkpoint.
        late = system.kernel.sys_mmap(p, None, 3 * PAGE_SIZE, RW, MAP_NVM)
        for i in range(3):
            system.machine.access(late + i * PAGE_SIZE, 8, True)
        system.crash()
        system.boot()
        assert system.stats["recovery.reclaimed_frames"] >= 3

    def test_freed_but_referenced_frames_repinned(self, rebuild_system):
        # A post-checkpoint munmap no longer frees eagerly (the epoch
        # reclaimer parks committed frames — see test_reclaim.py), so
        # the freed-but-referenced inconsistency can only arise from
        # allocator metadata diverging some other way.  Simulate that
        # divergence directly and assert the reconcile re-pins.
        system = rebuild_system
        system.manager.disarm()
        p, addr = prepare(system, pages=2)
        pfns = [
            p.page_table.lookup(addr // PAGE_SIZE + i).pfn for i in range(2)
        ]
        for pfn in pfns:
            # repro: allow-persist(test simulates corrupted allocator metadata)
            system.kernel.nvm_alloc.free(pfn)
        system.crash()
        (recovered,) = system.boot()
        assert system.stats["recovery.repinned_frames"] == 2
        # The recovered mapping must be usable.
        system.kernel.switch_to(recovered)
        assert system.machine.load(addr, 8) == b"payload!"

    def test_no_double_allocation_after_recovery(self, rebuild_system):
        system = rebuild_system
        p, addr = prepare(system, pages=2)
        system.crash()
        (recovered,) = system.boot()
        system.kernel.switch_to(recovered)
        # New allocations must not alias recovered frames.
        recovered_pfns = {
            pte.pfn for _vpn, pte in recovered.page_table.iter_leaves()
        }
        new_addr = system.kernel.sys_mmap(
            recovered, None, 4 * PAGE_SIZE, RW, MAP_NVM
        )
        for i in range(4):
            system.machine.access(new_addr + i * PAGE_SIZE, 8, True)
        new_pfns = {
            pte.pfn
            for vpn, pte in recovered.page_table.iter_leaves()
            if vpn >= new_addr // PAGE_SIZE
        }
        assert not (recovered_pfns & new_pfns)


class TestRepeatedCrashes:
    def test_two_crash_cycles(self, any_system):
        system = any_system
        p, addr = prepare(system, pages=1, data=b"gen1....")
        system.crash()
        (p2,) = system.boot()
        system.kernel.switch_to(p2)
        system.machine.store(addr, b"gen2....")
        system.checkpoint()
        system.crash()
        (p3,) = system.boot()
        system.kernel.switch_to(p3)
        assert system.machine.load(addr, 8) == b"gen2...."

    def test_checkpoint_works_after_recovery(self, any_system):
        system = any_system
        p, addr = prepare(system)
        system.crash()
        (p2,) = system.boot()
        system.kernel.switch_to(p2)
        new = system.kernel.sys_mmap(p2, None, PAGE_SIZE, RW, MAP_NVM, name="n2")
        system.machine.store(new, b"second")
        system.checkpoint()
        system.crash()
        (p3,) = system.boot()
        system.kernel.switch_to(p3)
        assert system.machine.load(new, 6) == b"second"
