"""Shared fixtures: scaled-down machines and booted systems."""

import pytest

from repro.arch.machine import Machine
from repro.common.config import small_machine_config
from repro.platform import HybridSystem


@pytest.fixture
def config():
    """A structurally identical but small platform config."""
    return small_machine_config()


@pytest.fixture
def machine(config):
    return Machine(config)


def _make_system(scheme: str, interval_ms: float = 1.0) -> HybridSystem:
    system = HybridSystem(
        config=small_machine_config(),
        scheme=scheme,
        checkpoint_interval_ms=interval_ms,
    )
    system.boot()
    return system


@pytest.fixture
def rebuild_system():
    system = _make_system("rebuild")
    yield system


@pytest.fixture
def persistent_system():
    system = _make_system("persistent")
    yield system


@pytest.fixture(params=["rebuild", "persistent"])
def any_system(request):
    """Parametrized over both page-table schemes."""
    yield _make_system(request.param)


@pytest.fixture
def plain_system():
    """A booted system without the persistence manager (SSP/HSCC)."""
    system = HybridSystem(config=small_machine_config(), persistence=False)
    system.boot()
    yield system
