"""Reclamation epochs: deferred frame reclamation (repro.persist.reclaim).

Covers the ROADMAP repro sequence under both schemes, the park/retire
lifecycle, allocator refusal of parked frames, translation resurrection
at recovery, and the rebuild scheme's frame-reuse regression.
"""

import pytest

from repro.common.units import PAGE_SIZE
from repro.gemos.frames import FrameAllocator
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE
from repro.mem.hybrid import MemType
from repro.persist.reclaim import EpochFrameReclaimer

RW = PROT_READ | PROT_WRITE


def _mmap_store(system, proc, nbytes, value, addr=None):
    got = system.kernel.sys_mmap(proc, addr, nbytes, RW, MAP_NVM)
    system.kernel.switch_to(proc)
    for off in range(0, nbytes, PAGE_SIZE):
        system.machine.store(got + off, bytes([value]))
    return got


def _reclaimer(system) -> EpochFrameReclaimer:
    policy = system.kernel.frame_release
    assert isinstance(policy, EpochFrameReclaimer)
    return policy


class TestRoadmapRepro:
    """mmap -> store -> checkpoint -> munmap -> crash -> recover."""

    def test_reads_checkpointed_value(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 0x5A)
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        system.crash()
        system.boot()
        proc2 = system.kernel.processes[proc.pid]
        system.kernel.switch_to(proc2)
        assert system.machine.load(addr, 1) == b"\x5a"

    def test_resurrection_counted(self, persistent_system):
        # Scheme-specific: under rebuild the committed v2p list already
        # restores the translation, so the explicit resurrection count
        # stays 0; the NVM-resident table needs the parked record.
        system = persistent_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 0x5A)
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        system.crash()
        system.boot()
        assert system.stats["recovery.resurrected_mappings"] >= 1


class TestParkLifecycle:
    def test_post_checkpoint_unmap_parks_instead_of_freeing(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 1)
        vpn = addr // PAGE_SIZE
        pfn = proc.page_table.lookup(vpn).pfn
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        reclaimer = _reclaimer(system)
        assert reclaimer.is_parked(pfn)
        assert reclaimer.parked_count() == 1
        # Parked means deferred: the frame is still owned, not freed
        # (page-table *node* frames may drop; the data frame must not).
        assert system.kernel.nvm_alloc.is_allocated(pfn)
        assert system.stats["reclaim.parked"] == 1

    def test_pre_checkpoint_unmap_frees_immediately(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 1)
        pfn = proc.page_table.lookup(addr // PAGE_SIZE).pfn
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        assert _reclaimer(system).parked_count() == 0
        assert not system.kernel.nvm_alloc.is_allocated(pfn)

    def test_next_commit_retires_the_epoch(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 1)
        vpn = addr // PAGE_SIZE
        pfn = proc.page_table.lookup(vpn).pfn
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        reclaimer = _reclaimer(system)
        assert reclaimer.is_parked(pfn)
        epoch_before = reclaimer.state.epoch
        system.checkpoint()
        assert not reclaimer.is_parked(pfn)
        assert reclaimer.parked_count() == 0
        assert not system.kernel.nvm_alloc.is_allocated(pfn)
        assert reclaimer.state.epoch == epoch_before + 1
        assert system.stats["reclaim.retired_frames"] == 1

    def test_exit_drains_parked_frames(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, 2 * PAGE_SIZE, 1)
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        assert _reclaimer(system).parked_count() == 1
        dram_used = system.kernel.dram_alloc.allocated_count
        nvm_user = system.kernel.nvm_alloc.allocated_count
        system.kernel.exit_process(proc)
        # Exit retires the pid's epoch and frees everything it owned.
        assert _reclaimer(system).parked_count() == 0
        assert system.kernel.dram_alloc.allocated_count <= dram_used
        assert system.kernel.nvm_alloc.allocated_count < nvm_user
        assert proc.pid not in system.kernel.processes

    def test_park_list_persists_across_crash(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 1)
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        assert _reclaimer(system).parked_count() == 1
        system.crash()
        system.boot()
        # Recovery resurrected the translation and retired the epoch:
        # the park list drained, the frame is live again.
        reclaimer = _reclaimer(system)
        assert reclaimer.parked_count() == 0
        proc2 = system.kernel.processes[proc.pid]
        system.kernel.switch_to(proc2)
        assert system.machine.load(addr, 1) == b"\x01"


class TestAllocatorGuard:
    def test_alloc_refuses_parked_free_list_entries(self):
        from repro.common.stats import Stats

        stats = Stats()
        allocator = FrameAllocator(MemType.DRAM, 0x100, 0x200, stats)
        first = allocator.alloc()
        second = allocator.alloc()
        allocator.free(first)
        allocator.free(second)
        allocator.set_reclaim_guard(lambda pfn: pfn == second)
        # LIFO would hand back `second`; the guard skips it.
        assert allocator.alloc() == first
        assert stats["alloc.dram.parked_refusals"] == 1
        # `second` stays on the free list for after the epoch retires.
        allocator.set_reclaim_guard(lambda pfn: False)
        assert allocator.alloc() == second

    def test_free_of_parked_frame_raises(self):
        from repro.common.stats import Stats

        allocator = FrameAllocator(MemType.DRAM, 0x100, 0x200, Stats())
        pfn = allocator.alloc()
        allocator.set_reclaim_guard(lambda p: p == pfn)
        with pytest.raises(ValueError, match="parked"):
            allocator.free(pfn)

    def test_guard_survives_reboot(self, any_system):
        system = any_system
        system.crash()
        system.boot()
        assert system.kernel.nvm_alloc._reclaim_guard is not None  # noqa: SLF001


class TestReuseRegression:
    """Allocate immediately after a post-checkpoint munmap to force
    reuse — the rebuild scheme's latent hazard (frames recycled while
    the committed v2p list still named them)."""

    @pytest.mark.parametrize("scheme_fixture", ["rebuild_system", "persistent_system"])
    def test_parked_frame_not_recycled(self, scheme_fixture, request):
        system = request.getfixturevalue(scheme_fixture)
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 0x77)
        vpn = addr // PAGE_SIZE
        committed_pfn = proc.page_table.lookup(vpn).pfn
        system.checkpoint()
        system.kernel.sys_munmap(proc, addr, PAGE_SIZE)
        # Allocation pressure right after the unmap: the fresh page
        # must not receive the parked frame.
        addr2 = _mmap_store(system, proc, PAGE_SIZE, 0x99, addr=addr + 16 * PAGE_SIZE)
        assert proc.page_table.lookup(addr2 // PAGE_SIZE).pfn != committed_pfn
        system.crash()
        system.boot()
        proc2 = system.kernel.processes[proc.pid]
        system.kernel.switch_to(proc2)
        assert system.machine.load(addr, 1) == b"\x77"


class TestRemapInterplay:
    def test_move_after_checkpoint_recovers_committed_translation(
        self, any_system
    ):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, 2 * PAGE_SIZE, 0x33)
        # Barrier blocks in-place growth, forcing a move.
        system.kernel.sys_mmap(proc, addr + 2 * PAGE_SIZE, PAGE_SIZE, RW, 0)
        system.checkpoint()
        new_addr = system.kernel.sys_mremap(
            proc, addr, 2 * PAGE_SIZE, 4 * PAGE_SIZE
        )
        assert new_addr != addr
        reclaimer = _reclaimer(system)
        # Translation-only park records: frames stay live at new_addr.
        assert reclaimer.parked_count() == 2
        assert system.stats["reclaim.parked_translation_only"] == 2
        system.crash()
        system.boot()
        proc2 = system.kernel.processes[proc.pid]
        system.kernel.switch_to(proc2)
        # The committed layout knows only the old range.
        assert system.machine.load(addr, 1) == b"\x33"
        assert system.machine.load(addr + PAGE_SIZE, 1) == b"\x33"

    def test_move_then_unmap_upgrades_ownership(self, any_system):
        system = any_system
        proc = system.spawn("w")
        addr = _mmap_store(system, proc, PAGE_SIZE, 0x44)
        pfn = proc.page_table.lookup(addr // PAGE_SIZE).pfn
        system.kernel.sys_mmap(proc, addr + PAGE_SIZE, PAGE_SIZE, RW, 0)
        system.checkpoint()
        new_addr = system.kernel.sys_mremap(proc, addr, PAGE_SIZE, 2 * PAGE_SIZE)
        reclaimer = _reclaimer(system)
        (entry,) = [e for e in reclaimer.state.parked if e.pfn == pfn]
        assert not entry.owns_frame
        system.kernel.sys_munmap(proc, new_addr, PAGE_SIZE)
        (entry,) = [e for e in reclaimer.state.parked if e.pfn == pfn]
        assert entry.owns_frame
        # Retire now frees the frame exactly once.
        used = system.kernel.nvm_alloc.allocated_count
        system.checkpoint()
        assert system.kernel.nvm_alloc.allocated_count == used - 1


class TestExitOrdering:
    def test_exit_after_checkpoint_leaves_no_recoverable_ghost(
        self, any_system
    ):
        system = any_system
        proc = system.spawn("short-lived")
        _mmap_store(system, proc, PAGE_SIZE, 1)
        system.checkpoint()
        system.kernel.exit_process(proc)
        system.crash()
        recovered = system.boot()
        assert all(p.name != "short-lived" for p in recovered)

    def test_exit_frees_all_nvm_frames(self, any_system):
        system = any_system
        baseline = system.kernel.nvm_alloc.allocated_count
        proc = system.spawn("w")
        _mmap_store(system, proc, 4 * PAGE_SIZE, 2)
        system.checkpoint()
        system.kernel.exit_process(proc)
        assert system.kernel.nvm_alloc.allocated_count == baseline
