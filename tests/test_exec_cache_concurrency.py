"""``ResultCache`` under concurrent writers and leftover temp files.

The planner re-scores blueprint grids through the sweep cache, so two
engines (or a cold CI run racing a warm one) routinely ``put()`` the
same key at the same moment.  The cache's contract: concurrent
identical writes converge on one byte-canonical entry, a reader never
observes a torn (partially-written) entry, and a ``.tmp`` file left by
a killed writer is invisible to ``get()``/``clear()``.
"""

import multiprocessing

import pytest

from repro.exec import ResultCache, Task
from repro.exec.cache import MISS

PROBE = "repro.exec.engine:probe_cell"

#: The result both racing writers store — same cell, same payload.
RESULT = {"rows": [{"size_mb": 64, "cycles": 123456}], "pick": "persistent"}


def _hammer_put(root, key, task_doc, result, rounds, barrier):
    """Writer process: put the same entry over and over."""
    cache = ResultCache(root)
    barrier.wait()
    for _ in range(rounds):
        cache.put(key, task_doc, result)


def _task_and_key():
    task = Task(PROBE, {"a": 3, "b": 4})
    return task, task.key("fp"), task.describe("fp")


class TestConcurrentWriters:
    @pytest.mark.parametrize("writers", [2, 4])
    def test_racing_puts_converge_byte_canonically(self, tmp_path, writers):
        """N processes hammer the same key; every read mid-race is a
        complete entry and the survivor is byte-canonical."""
        task, key, doc = _task_and_key()
        cache = ResultCache(tmp_path)
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(writers)
        rounds = 120
        procs = [
            ctx.Process(
                target=_hammer_put,
                args=(tmp_path, key, doc, RESULT, rounds, barrier),
            )
            for _ in range(writers)
        ]
        for proc in procs:
            proc.start()
        try:
            # Read concurrently with the writers: os.replace is atomic,
            # so every get() is either a miss (nothing published yet)
            # or the complete result — never a torn read.
            seen_hit = False
            while any(proc.is_alive() for proc in procs):
                value = cache.get(key)
                if value is MISS:
                    assert not seen_hit, "entry vanished mid-race"
                else:
                    seen_hit = True
                    assert value == RESULT
        finally:
            for proc in procs:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        # The surviving entry is the canonical encoding, byte for byte.
        assert cache.path_for(key).read_bytes() == cache.encode(
            key, doc, RESULT
        )
        assert cache.get(key) == RESULT
        # No writer left its temp file behind.
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_interleaved_puts_in_one_process_stay_canonical(self, tmp_path):
        """Same-pid re-puts reuse one temp name; the entry never tears."""
        task, key, doc = _task_and_key()
        cache = ResultCache(tmp_path)
        reference = cache.encode(key, doc, RESULT)
        for _ in range(10):
            cache.put(key, doc, RESULT)
            assert cache.path_for(key).read_bytes() == reference


class TestLeftoverTempFiles:
    def test_orphan_tmp_is_invisible_to_get(self, tmp_path):
        """A writer killed between write_bytes and os.replace leaves
        ``.<key>.json.<pid>.tmp`` — which must read as a plain miss."""
        task, key, doc = _task_and_key()
        cache = ResultCache(tmp_path)
        tmp_path.mkdir(exist_ok=True)
        orphan = tmp_path / f".{key}.json.99999.tmp"
        orphan.write_bytes(b'{"schema": "sweep_cache/v1", "key": "' + b"tr")
        assert cache.get(key) is MISS
        # publishing over the orphan works and reads back whole
        assert cache.put(key, doc, RESULT) == RESULT
        assert cache.get(key) == RESULT
        assert orphan.exists()  # untouched: it is not an entry

    def test_clear_skips_orphan_tmp_files(self, tmp_path):
        task, key, doc = _task_and_key()
        cache = ResultCache(tmp_path)
        cache.put(key, doc, RESULT)
        orphan = tmp_path / f".{key}.json.12345.tmp"
        orphan.write_bytes(b"garbage from a killed writer")
        # clear() removes exactly the one real entry, never the orphan,
        # and never raises over it.
        assert cache.clear() == 1
        assert cache.get(key) is MISS
        assert orphan.exists()

    def test_same_pid_retry_overwrites_its_own_stale_tmp(self, tmp_path):
        """A stale tmp bearing *this* process's pid (crashed earlier
        incarnation, recycled pid) is simply truncated by the next
        put() — the entry still lands canonical."""
        import os

        task, key, doc = _task_and_key()
        cache = ResultCache(tmp_path)
        tmp_path.mkdir(exist_ok=True)
        stale = tmp_path / f".{key}.json.{os.getpid()}.tmp"
        stale.write_bytes(b"half-written junk")
        assert cache.put(key, doc, RESULT) == RESULT
        assert cache.path_for(key).read_bytes() == cache.encode(
            key, doc, RESULT
        )
        assert not stale.exists()  # consumed by the successful replace
