"""Stats registry behaviour."""

from repro.common.stats import Stats


class TestStats:
    def test_counters_start_at_zero(self):
        assert Stats()["anything"] == 0

    def test_add_accumulates(self):
        s = Stats()
        s.add("x")
        s.add("x", 2)
        assert s["x"] == 3

    def test_set_overwrites(self):
        s = Stats()
        s.add("x", 5)
        s.set("x", 1)
        assert s["x"] == 1

    def test_get_does_not_create(self):
        s = Stats()
        assert s.get("ghost") == 0
        assert "ghost" not in s

    def test_with_prefix(self):
        s = Stats()
        s.add("llc.hit")
        s.add("llc.miss", 2)
        s.add("l1.hit")
        assert s.with_prefix("llc.") == {"llc.hit": 1, "llc.miss": 2}

    def test_items_sorted(self):
        s = Stats()
        s.add("b")
        s.add("a")
        assert [name for name, _ in s.items()] == ["a", "b"]

    def test_reset(self):
        s = Stats()
        s.add("x")
        s.reset()
        assert s["x"] == 0

    def test_snapshot_is_independent(self):
        s = Stats()
        s.add("x")
        snap = s.snapshot()
        s.add("x")
        assert snap["x"] == 1

    def test_dump_format(self):
        s = Stats()
        s.add("a.b", 7)
        assert s.dump() == "a.b 7"


class TestDumpParsing:
    def test_roundtrip(self):
        s = Stats()
        s.add("llc.miss", 42)
        s.add("cycles.user", 7)
        parsed = Stats.parse_dump(s.dump())
        assert parsed.snapshot() == s.snapshot()

    def test_comments_and_blanks_skipped(self):
        parsed = Stats.parse_dump("# header\n\nx.y 3\n")
        assert parsed["x.y"] == 3

    def test_bad_line_raises(self):
        import pytest

        with pytest.raises(ValueError):
            Stats.parse_dump("novalue\n")
