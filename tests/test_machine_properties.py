"""Property-based invariants on the machine model itself."""

from hypothesis import given, settings, strategies as st

from repro.arch.machine import Machine
from repro.arch.tlb import Tlb, TlbEntry
from repro.common.config import TlbConfig, small_machine_config
from repro.common.stats import Stats
from repro.common.units import PAGE_SIZE

# ----------------------------------------------------------------------
# cycle attribution
# ----------------------------------------------------------------------

mode_ops = st.lists(
    st.one_of(
        st.tuples(st.just("user"), st.integers(1, 1000)),
        st.tuples(st.sampled_from(["fault", "checkpoint", "hscc.copy"]),
                  st.integers(1, 1000)),
    ),
    max_size=40,
)


class TestAttributionProperties:
    @given(ops=mode_ops)
    @settings(max_examples=60, deadline=None)
    def test_clock_equals_sum_of_attributed_cycles(self, ops):
        machine = Machine(small_machine_config())
        for category, cycles in ops:
            if category == "user":
                machine.advance(cycles)
            else:
                with machine.os_region(category):
                    machine.advance(cycles)
        attributed = machine.stats["cycles.user"] + machine.stats[
            "cycles.os.total"
        ]
        assert attributed == machine.clock

    @given(ops=mode_ops)
    @settings(max_examples=40, deadline=None)
    def test_uncharged_regions_never_move_the_clock(self, ops):
        machine = Machine(small_machine_config())
        for category, cycles in ops:
            with machine.os_region(category or "x", charge=False):
                machine.advance(cycles)
        assert machine.clock == 0


# ----------------------------------------------------------------------
# translation determinism and monotonicity
# ----------------------------------------------------------------------

access_lists = st.lists(
    st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=200
)


def flat_machine(pages=64):
    machine = Machine(small_machine_config())
    machine.install_context(1, lambda m, vpn: (vpn, True) if vpn < pages else None, None)
    return machine


class TestAccessProperties:
    @given(ops=access_lists)
    @settings(max_examples=50, deadline=None)
    def test_clock_is_strictly_monotonic(self, ops):
        machine = flat_machine()
        last = machine.clock
        for page, is_write in ops:
            machine.access(page * PAGE_SIZE, 8, is_write)
            assert machine.clock > last
            last = machine.clock

    @given(ops=access_lists)
    @settings(max_examples=40, deadline=None)
    def test_same_trace_same_clock(self, ops):
        def run():
            machine = flat_machine()
            for page, is_write in ops:
                machine.access(page * PAGE_SIZE, 8, is_write)
            return machine.clock

        assert run() == run()

    @given(ops=access_lists)
    @settings(max_examples=40, deadline=None)
    def test_op_counters_match_trace(self, ops):
        machine = flat_machine()
        for page, is_write in ops:
            machine.access(page * PAGE_SIZE, 8, is_write)
        reads = sum(1 for _p, w in ops if not w)
        writes = len(ops) - reads
        assert machine.stats["ops.reads"] == reads
        assert machine.stats["ops.writes"] == writes


# ----------------------------------------------------------------------
# TLB model equivalence
# ----------------------------------------------------------------------

tlb_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]),
              st.integers(0, 30)),
    max_size=120,
)


class TestTlbModelEquivalence:
    @given(ops=tlb_ops)
    @settings(max_examples=60, deadline=None)
    def test_behaves_like_bounded_lru_dict(self, ops):
        capacity = 8
        tlb = Tlb(TlbConfig(entries=capacity), Stats())
        model = {}  # vpn -> pfn, dict order = LRU order

        for op, vpn in ops:
            if op == "insert":
                if vpn in model:
                    del model[vpn]
                elif len(model) >= capacity:
                    oldest = next(iter(model))
                    del model[oldest]
                model[vpn] = vpn + 100
                tlb.insert(TlbEntry(vpn=vpn, pfn=vpn + 100, asid=0))
            elif op == "lookup":
                entry = tlb.lookup(0, vpn)
                if vpn in model:
                    model[vpn] = model.pop(vpn)  # refresh LRU
                    assert entry is not None and entry.pfn == model[vpn]
                else:
                    assert entry is None
            else:
                tlb.invalidate(0, vpn)
                model.pop(vpn, None)

        resident = {e.vpn: e.pfn for e in tlb.entries()}
        assert resident == model
        assert [e.vpn for e in tlb.entries()] == list(model)
