"""Tracing runtime and the SniP stack substitute."""

import pytest
from repro.common.units import PAGE_SIZE

from repro.common.errors import TraceFormatError
from repro.prep.maps import HEAP, STACK
from repro.prep.trace import READ, WRITE
from repro.prep.tracer import TracedProcess


class TestHeapTracing:
    def test_alloc_creates_region(self):
        tp = TracedProcess()
        buf = tp.alloc_heap("table", 8192)
        region = tp.layout.by_name("table")
        assert region is not None and region.kind == HEAP
        assert region.size == 8192

    def test_alloc_rounds_to_pages(self):
        tp = TracedProcess()
        assert tp.alloc_heap("x", 100).size == PAGE_SIZE

    def test_loads_and_stores_recorded_in_order(self):
        tp = TracedProcess()
        buf = tp.alloc_heap("x", PAGE_SIZE)
        buf.load(0)
        buf.store(8, 4)
        assert [(r.op, r.size) for r in tp.trace] == [(READ, 8), (WRITE, 4)]
        assert tp.trace[0].addr == buf.base
        assert tp.trace[1].addr == buf.base + 8

    def test_periods_monotonic(self):
        tp = TracedProcess()
        buf = tp.alloc_heap("x", PAGE_SIZE)
        buf.load(0)
        tp.compute(10)
        buf.load(8)
        assert tp.trace[1].period - tp.trace[0].period == 11

    def test_update_is_read_then_write(self):
        tp = TracedProcess()
        buf = tp.alloc_heap("x", PAGE_SIZE)
        buf.update(0)
        assert [r.op for r in tp.trace] == [READ, WRITE]

    def test_out_of_bounds_access(self):
        tp = TracedProcess()
        buf = tp.alloc_heap("x", PAGE_SIZE)
        with pytest.raises(TraceFormatError):
            buf.load(4095, 8)

    def test_zero_size_region(self):
        with pytest.raises(TraceFormatError):
            TracedProcess().alloc_heap("x", 0)

    def test_regions_do_not_overlap(self):
        tp = TracedProcess()
        a = tp.alloc_heap("a", 1 << 20)
        b = tp.alloc_heap("b", 1 << 20)
        assert a.region.end <= b.region.start

    def test_mix_reporting(self):
        tp = TracedProcess()
        buf = tp.alloc_heap("x", PAGE_SIZE)
        for _ in range(3):
            buf.load(0)
        buf.store(0)
        assert tp.mix() == (75, 25)
        assert tp.read_fraction == 0.75


class TestStackTracking:
    def test_register_thread_creates_stack_region(self):
        tp = TracedProcess()
        tp.stacks.register_thread(0)
        region = tp.layout.by_name("stack_t0")
        assert region is not None and region.kind == STACK

    def test_duplicate_thread_rejected(self):
        tp = TracedProcess()
        tp.stacks.register_thread(0)
        with pytest.raises(TraceFormatError):
            tp.stacks.register_thread(0)

    def test_frames_grow_down(self):
        tp = TracedProcess()
        stack = tp.stacks.register_thread(0)
        top0 = stack.top
        stack.push_frame(slots=4)
        assert stack.top == top0 - 32
        stack.pop_frame()
        assert stack.top == top0

    def test_locals_traced_within_stack_region(self):
        tp = TracedProcess()
        stack = tp.stacks.register_thread(0)
        stack.push_frame(slots=2)
        stack.local_store(0)
        stack.local_load(1)
        region = tp.layout.by_name("stack_t0")
        for record in tp.trace:
            assert region.contains(record.addr)

    def test_pop_empty_rejected(self):
        tp = TracedProcess()
        stack = tp.stacks.register_thread(0)
        with pytest.raises(TraceFormatError):
            stack.pop_frame()

    def test_stack_overflow_detected(self):
        tp = TracedProcess()
        stack = tp.stacks.register_thread(0, stack_bytes=PAGE_SIZE)
        with pytest.raises(TraceFormatError):
            stack.push_frame(slots=1024)

    def test_multi_threaded_stacks(self):
        tp = TracedProcess()
        tp.stacks.register_thread(0)
        tp.stacks.register_thread(1)
        assert len(tp.stacks) == 2
        assert tp.layout.by_name("stack_t1") is not None

    def test_unknown_thread(self):
        tp = TracedProcess()
        with pytest.raises(TraceFormatError):
            tp.stacks.thread(3)
