"""The preparation driver: artifact generation and reload."""

import pytest

from repro.common.errors import KindleError
from repro.prep.codegen import PlacementPolicy
from repro.prep.driver import PreparationDriver
from repro.prep.imagegen import load_image
from repro.prep.maps import AddressLayout
from repro.prep.trace import load_trace
from repro.prep.tracer import TracedProcess


def traced_app(name="demo", ops=64):
    tp = TracedProcess(name)
    buf = tp.alloc_heap("table", 8192)
    stack = tp.stacks.register_thread(0)
    stack.push_frame(slots=2)
    for i in range(ops):
        buf.store((i * 8) % 8192)
        stack.local_load(0)
    stack.pop_frame()
    return tp


class TestPrepareTraced:
    def test_writes_all_four_artifacts(self, tmp_path):
        driver = PreparationDriver(tmp_path / "out")
        artifacts = driver.prepare_traced(traced_app())
        for path in (
            artifacts.trace_path,
            artifacts.maps_path,
            artifacts.image_path,
            artifacts.source_path,
        ):
            assert path.exists() and path.stat().st_size > 0

    def test_artifacts_are_loadable_and_consistent(self, tmp_path):
        driver = PreparationDriver(tmp_path)
        tp = traced_app(ops=32)
        artifacts = driver.prepare_traced(tp)
        trace = load_trace(artifacts.trace_path)
        assert trace == tp.trace
        layout = AddressLayout.parse(artifacts.maps_path.read_text())
        assert len(layout) == len(tp.layout)
        image = load_image(artifacts.image_path)
        assert image.total_ops == artifacts.total_ops == len(trace)

    def test_source_contains_allocations(self, tmp_path):
        driver = PreparationDriver(tmp_path)
        artifacts = driver.prepare_traced(traced_app())
        source = artifacts.source_path.read_text()
        assert "mmap(NULL, 8192UL" in source

    def test_empty_trace_rejected(self, tmp_path):
        driver = PreparationDriver(tmp_path)
        with pytest.raises(KindleError):
            driver.prepare_traced(TracedProcess("empty"))

    def test_prepared_program_replays(self, tmp_path, plain_system):
        driver = PreparationDriver(tmp_path)
        artifacts = driver.prepare_traced(traced_app(ops=48))
        program = artifacts.load_program(PlacementPolicy.HEAP_NVM)
        proc = plain_system.spawn("demo")
        program.install(plain_system.kernel, proc)
        assert program.run(plain_system.kernel, proc) == artifacts.total_ops


class TestPrepareWorkload:
    def test_named_workload(self, tmp_path):
        driver = PreparationDriver(tmp_path)
        artifacts = driver.prepare_workload("ycsb_mem", total_ops=2_000)
        assert artifacts.image_path.exists()
        image = load_image(artifacts.image_path)
        assert image.total_ops >= 2_000

    def test_unknown_workload(self, tmp_path):
        with pytest.raises(KindleError):
            PreparationDriver(tmp_path).prepare_workload("nope")


class TestCli:
    def test_main(self, tmp_path, capsys):
        from repro.prep.__main__ import main

        assert (
            main(["ycsb_mem", "-o", str(tmp_path), "--ops", "1000"]) == 0
        )
        out = capsys.readouterr().out
        assert "prepared ycsb_mem" in out
        assert (tmp_path / "ycsb_mem.img").exists()
        assert (tmp_path / "ycsb_mem.c").exists()
