"""Remaining small-surface coverage across modules."""

import pytest
from repro.common.units import PAGE_SIZE

from repro.common import errors, units


class TestErrorHierarchy:
    def test_all_derive_from_kindle_error(self):
        for name in (
            "ConfigError",
            "FaultError",
            "SegmentationFault",
            "OutOfMemoryError",
            "RecoveryError",
            "TraceFormatError",
            "CrashedError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.KindleError)

    def test_segfault_is_fault(self):
        assert issubclass(errors.SegmentationFault, errors.FaultError)


class TestUnitsExtras:
    def test_us_from_cycles(self):
        assert units.us_from_cycles(3_000) == pytest.approx(1.0)

    def test_constants(self):
        assert units.GiB == 1024 * units.MiB == 1024 * 1024 * units.KiB


class TestReportFormatting:
    def test_non_numeric_cells(self):
        from repro.harness.report import format_table

        text = format_table(["name"], [[None], [True]])
        assert "None" in text and "True" in text

    def test_float_precision(self):
        from repro.harness.report import _fmt

        assert _fmt(1.23456) == "1.23"
        assert _fmt(7) == "7"


class TestVmaLimits:
    def test_address_space_exhaustion(self):
        from repro.common.errors import FaultError
        from repro.gemos.vma import MMAP_BASE, MMAP_LIMIT, PROT_WRITE, AddressSpace

        space = AddressSpace()
        # One VMA occupying nearly the whole region forces the next
        # unhinted map past the limit.
        space.map(MMAP_BASE, MMAP_LIMIT - MMAP_BASE - PAGE_SIZE, PROT_WRITE)
        with pytest.raises(FaultError):
            space.map(None, 2 * PAGE_SIZE, PROT_WRITE)


class TestPhysmemCopySelf:
    def test_copy_page_to_itself(self):
        from repro.common.config import HybridLayoutConfig
        from repro.mem.hybrid import HybridLayout
        from repro.mem.physmem import PhysicalMemory

        mem = PhysicalMemory(
            HybridLayout(HybridLayoutConfig(1 << 20, 1 << 20))
        )
        mem.write(0, b"same")
        mem.copy_page(0, 0)
        assert mem.read(0, 4) == b"same"


class TestEnergyConfigDefaults:
    def test_nvm_write_energy_dominates(self):
        from repro.mem.energy import EnergyConfig

        cfg = EnergyConfig()
        assert cfg.nvm_write_nj > 5 * cfg.nvm_read_nj
        assert cfg.dram_background_mw_per_gb > 10 * cfg.nvm_background_mw_per_gb


class TestHarnessImports:
    def test_public_surface(self):
        import repro

        assert repro.__version__ == "1.0.0"
        from repro import (  # noqa: F401
            DDR4_2400,
            PCM,
            HybridSystem,
            Machine,
            MemType,
        )

    def test_subpackage_alls_resolve(self):
        import importlib

        for module_name in (
            "repro.common",
            "repro.mem",
            "repro.arch",
            "repro.gemos",
            "repro.persist",
            "repro.prep",
            "repro.workloads",
            "repro.ssp",
            "repro.hscc",
            "repro.tiering",
            "repro.pheap",
            "repro.harness",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module_name, name)


class TestNvmTechnologyPresets:
    def test_registry_complete(self):
        from repro.common.config import NVM_TECHNOLOGIES, PCM, RERAM, STT_RAM

        assert NVM_TECHNOLOGIES == {
            "pcm": PCM,
            "stt-ram": STT_RAM,
            "reram": RERAM,
        }

    def test_latency_ordering(self):
        from repro.common.config import PCM, RERAM, STT_RAM

        assert (
            STT_RAM.write_row_miss_ns
            < RERAM.write_row_miss_ns
            < PCM.write_row_miss_ns
        )


class TestTimerLen:
    def test_len_counts_active_only(self):
        from repro.common.timers import TimerWheel

        wheel = TimerWheel()
        keep = wheel.arm(10, lambda: None)
        cancel = wheel.arm(20, lambda: None)
        cancel.cancel()
        assert len(wheel) == 1
