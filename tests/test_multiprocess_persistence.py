"""Persistence with several processes: isolation across crash cycles."""

import pytest

from repro.common.units import PAGE_SIZE
from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def three_processes(any_system):
    """Three persistent processes, each with its own NVM heap + data."""
    system = any_system
    k = system.kernel
    setups = []
    for index in range(3):
        proc = k.create_process(f"app{index}")
        k.switch_to(proc)
        addr = k.sys_mmap(proc, None, 2 * PAGE_SIZE, RW, MAP_NVM, name="heap")
        payload = f"proc{index}data".encode()
        system.machine.store(addr, payload)
        setups.append((proc.pid, addr, payload))
    system.checkpoint()
    return system, setups


class TestMultiProcessRecovery:
    def test_all_processes_recover_with_their_data(self, three_processes):
        system, setups = three_processes
        system.crash()
        recovered = {p.pid: p for p in system.boot()}
        assert len(recovered) == 3
        for pid, addr, payload in setups:
            proc = recovered[pid]
            system.kernel.switch_to(proc)
            assert system.machine.load(addr, len(payload)) == payload

    def test_frames_remain_disjoint_after_recovery(self, three_processes):
        system, setups = three_processes
        system.crash()
        recovered = system.boot()
        seen = set()
        for proc in recovered:
            frames = {pte.pfn for _v, pte in proc.page_table.iter_leaves()}
            assert not (frames & seen), "frame shared across processes"
            seen |= frames

    def test_asid_isolation_in_tlb(self, three_processes):
        """Identical virtual addresses in different processes must not
        alias in the TLB."""
        system, setups = three_processes
        system.crash()
        recovered = {p.pid: p for p in system.boot()}
        (pid_a, addr_a, payload_a) = setups[0]
        (pid_b, addr_b, payload_b) = setups[1]
        # Same VMA layout => same virtual addresses.
        assert addr_a == addr_b
        system.kernel.switch_to(recovered[pid_a])
        data_a = system.machine.load(addr_a, len(payload_a))
        system.kernel.switch_to(recovered[pid_b])
        data_b = system.machine.load(addr_b, len(payload_b))
        assert data_a == payload_a and data_b == payload_b

    def test_one_exited_process_stays_dead(self, any_system):
        system = any_system
        k = system.kernel
        keeper = k.create_process("keeper")
        goner = k.create_process("goner")
        k.switch_to(goner)
        system.checkpoint()
        k.exit_process(goner)
        system.checkpoint()
        system.crash()
        recovered = system.boot()
        assert [p.name for p in recovered] == ["keeper"]

    def test_selective_persistence(self, any_system):
        """Non-persistent processes vanish; persistent ones survive."""
        system = any_system
        k = system.kernel
        k.create_process("durable")
        k.create_process("ephemeral", persistent=False)
        system.checkpoint()
        system.crash()
        recovered = system.boot()
        assert [p.name for p in recovered] == ["durable"]
