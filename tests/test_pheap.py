"""Persistent heap: allocation, media-resident metadata, crash recovery."""

import pytest
from repro.common.units import PAGE_SIZE

from repro.common.errors import KindleError
from repro.pheap import HeapCorruption, PersistentHeap


@pytest.fixture
def booted(persistent_system):
    system = persistent_system
    proc = system.spawn("app")
    return system, proc


@pytest.fixture
def heap(booted):
    system, proc = booted
    return system, proc, PersistentHeap.create(system.kernel, proc, size=64 * 1024)


class TestAllocation:
    def test_alloc_returns_heap_addresses(self, heap):
        system, proc, h = heap
        a = h.alloc(100)
        b = h.alloc(100)
        assert h.base < a < h.base + h.size
        assert a != b

    def test_allocations_do_not_overlap(self, heap):
        _s, _p, h = heap
        spans = []
        for _ in range(10):
            addr = h.alloc(64)
            spans.append((addr, addr + 64))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_free_enables_reuse(self, heap):
        _s, _p, h = heap
        a = h.alloc(100)
        h.free(a)
        assert h.alloc(100) == a  # first fit lands in the same hole

    def test_double_free_rejected(self, heap):
        _s, _p, h = heap
        a = h.alloc(100)
        h.free(a)
        with pytest.raises(KindleError):
            h.free(a)

    def test_bogus_free_rejected(self, heap):
        _s, _p, h = heap
        with pytest.raises(KindleError):
            h.free(h.base + 12345)

    def test_exhaustion(self, heap):
        _s, _p, h = heap
        with pytest.raises(KindleError):
            h.alloc(10 ** 9)

    def test_zero_alloc_rejected(self, heap):
        _s, _p, h = heap
        with pytest.raises(KindleError):
            h.alloc(0)

    def test_free_bytes_accounting(self, heap):
        _s, _p, h = heap
        before = h.free_bytes
        addr = h.alloc(256)
        assert h.free_bytes < before
        h.free(addr)
        # Forward coalescing reabsorbs the split tail completely.
        assert h.free_bytes == before

    def test_check_passes_through_lifecycle(self, heap):
        _s, _p, h = heap
        addrs = [h.alloc(40) for _ in range(8)]
        for addr in addrs[::2]:
            h.free(addr)
        h.check()


class TestRootPointer:
    def test_root_roundtrip(self, heap):
        _s, _p, h = heap
        addr = h.alloc(64)
        h.set_root(addr)
        assert h.get_root() == addr

    def test_unset_root_is_none(self, heap):
        _s, _p, h = heap
        assert h.get_root() is None

    def test_root_outside_heap_rejected(self, heap):
        _s, _p, h = heap
        with pytest.raises(KindleError):
            h.set_root(h.base + h.size + PAGE_SIZE)


class TestDataPath:
    def test_write_read_roundtrip(self, heap):
        _s, _p, h = heap
        addr = h.alloc(32)
        h.write(addr, b"persistent payload!")
        assert h.read(addr, 19) == b"persistent payload!"

    def test_writes_charge_persist_path(self, heap):
        system, _p, h = heap
        addr = h.alloc(64)
        before = system.stats["persist_barriers"]
        h.write(addr, b"x" * 64)
        assert system.stats["persist_barriers"] > before


class TestCrashRecovery:
    def test_heap_survives_crash(self, heap):
        system, proc, h = heap
        addr = h.alloc(64)
        h.write(addr, b"crashme!")
        h.set_root(addr)
        base = h.base
        system.checkpoint()
        system.crash()
        (recovered,) = system.boot()
        system.kernel.switch_to(recovered)
        h2 = PersistentHeap.attach(system.kernel, recovered, base)
        root = h2.get_root()
        assert root == addr
        assert h2.read(root, 8) == b"crashme!"

    def test_allocation_state_survives(self, heap):
        system, proc, h = heap
        kept = h.alloc(100)
        freed = h.alloc(100)
        h.free(freed)
        used_before = h.used_blocks
        system.checkpoint()
        system.crash()
        (recovered,) = system.boot()
        system.kernel.switch_to(recovered)
        h2 = PersistentHeap.attach(system.kernel, recovered, h.base)
        assert h2.used_blocks == used_before
        # The freed hole is allocatable again; the kept block is not
        # handed out.
        again = h2.alloc(100)
        assert again == freed
        assert again != kept

    def test_attach_without_mapping_fails(self, booted):
        system, proc = booted
        with pytest.raises(HeapCorruption):
            PersistentHeap.attach(system.kernel, proc, 0x123456000)

    def test_attach_to_garbage_fails(self, booted):
        system, proc = booted
        from repro.gemos.vma import MAP_NVM, PROT_READ, PROT_WRITE

        base = system.kernel.sys_mmap(
            proc, None, 16 * 1024, PROT_READ | PROT_WRITE, MAP_NVM
        )
        with pytest.raises(HeapCorruption):
            PersistentHeap.attach(system.kernel, proc, base)

    def test_multiple_crash_cycles(self, heap):
        system, proc, h = heap
        base = h.base
        values = []
        for generation in range(3):
            addr = h.alloc(16)
            payload = f"gen{generation}".encode()
            h.write(addr, payload)
            values.append((addr, payload))
            system.checkpoint()
            system.crash()
            (proc,) = system.boot()
            system.kernel.switch_to(proc)
            h = PersistentHeap.attach(system.kernel, proc, base)
            for a, expect in values:
                assert h.read(a, len(expect)) == expect


class TestCoalescing:
    def test_adjacent_free_blocks_merge(self, heap):
        _s, _p, h = heap
        a = h.alloc(64)
        b = h.alloc(64)
        barrier = h.alloc(64)  # keeps the tail block out of the merge
        h.free(b)
        h.free(a)  # a coalesces forward into b's hole
        h.check()
        big = h.alloc(120)  # only fits in the merged hole
        assert big == a

    def test_free_before_used_block_does_not_merge(self, heap):
        _s, _p, h = heap
        a = h.alloc(64)
        b = h.alloc(64)
        h.free(a)
        # b still used: block count unchanged by coalescing.
        payload, used = h._read_header(a - h.base - 8)
        assert not used and payload == 64

    def test_chain_valid_through_heavy_churn(self, heap):
        _s, _p, h = heap
        import random

        rng = random.Random(7)
        live = []
        for _ in range(120):
            if live and rng.random() < 0.5:
                h.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(h.alloc(rng.randrange(16, 200)))
            h.check()


class TestRealloc:
    def test_shrink_keeps_address(self, heap):
        _s, _p, h = heap
        a = h.alloc(128)
        assert h.realloc(a, 64) == a

    def test_grow_in_place_into_free_successor(self, heap):
        _s, _p, h = heap
        a = h.alloc(64)
        b = h.alloc(64)
        tail = h.alloc(64)
        h.free(b)
        h.write(a, b"keepme!!")
        assert h.realloc(a, 120) == a
        assert h.read(a, 8) == b"keepme!!"
        h.check()

    def test_grow_moves_when_blocked(self, heap):
        _s, _p, h = heap
        a = h.alloc(64)
        h.alloc(64)  # used successor blocks in-place growth
        h.write(a, b"movedata")
        moved = h.realloc(a, 512)
        assert moved != a
        assert h.read(moved, 8) == b"movedata"
        h.check()

    def test_realloc_free_block_rejected(self, heap):
        _s, _p, h = heap
        a = h.alloc(64)
        h.free(a)
        with pytest.raises(KindleError):
            h.realloc(a, 128)

    def test_realloc_survives_crash(self, heap):
        system, proc, h = heap
        a = h.alloc(64)
        h.write(a, b"before--")
        h.alloc(64)
        moved = h.realloc(a, 400)
        h.write(moved, b"after---")
        h.set_root(moved)
        system.checkpoint()
        system.crash()
        (proc,) = system.boot()
        system.kernel.switch_to(proc)
        from repro.pheap import PersistentHeap

        h2 = PersistentHeap.attach(system.kernel, proc, h.base)
        assert h2.read(h2.get_root(), 8) == b"after---"
